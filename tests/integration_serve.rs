//! Integration of the serve daemon with the core search: a fixed-seed
//! job submitted through `datamime-served` must be bit-identical to the
//! same search run one-shot (modulo the informational `worker` field),
//! for both the thread and the process backend, while the admin plane
//! reports live evaluation and cache-hit counters.
//!
//! The daemon runs in-process on a background thread (core integration
//! tests cannot see another crate's binaries); the process-backend job
//! uses the real `datamime-worker` via `CARGO_BIN_EXE_datamime-worker`.

use datamime::jobspec::JobSpec;
use datamime::profiler::profile_workload;
use datamime::search::{search_with_runtime, SearchOutcome};
use datamime::servectl::{JobResult, JobState, ServeClient};
use datamime_runtime::{replay, TermSignal};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn tmp_root() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("datamime-serve-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The exact search the one-shot CLI would run for this spec line.
fn one_shot(spec_line: &str, journal: &Path) -> SearchOutcome {
    let spec = JobSpec::parse(spec_line).unwrap();
    let target = spec.target().unwrap();
    let cfg = spec.search_config().unwrap();
    let generator = spec.generator().unwrap();
    let mut opts = spec.runtime_options();
    opts.journal = Some(journal.to_path_buf());
    let profile = profile_workload(&target, &cfg.machine, &cfg.profiling);
    search_with_runtime(generator.as_ref(), &profile, &cfg, &opts).unwrap()
}

/// Daemon result and journal vs the uninterrupted one-shot run: same
/// bits, same observations (`worker` ids excluded by `semantic_eq`).
fn assert_matches_one_shot(root: &Path, result: &JobResult, reference: &SearchOutcome, what: &str) {
    assert_eq!(
        result.best_error.to_bits(),
        reference.best_error.to_bits(),
        "{what}: best error"
    );
    let got: Vec<u64> = result.best_unit.iter().map(|u| u.to_bits()).collect();
    let want: Vec<u64> = reference
        .best_unit_params
        .iter()
        .map(|u| u.to_bits())
        .collect();
    assert_eq!(got, want, "{what}: best unit point");
    let daemon_journal = replay(&root.join(&result.journal)).unwrap();
    assert!(daemon_journal.complete, "{what}: journal completion");
    assert_eq!(
        daemon_journal.evals.len(),
        reference.history.len(),
        "{what}: journal length"
    );
}

fn stat(stats: &[(String, u64)], name: &str) -> u64 {
    stats.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
}

#[test]
fn daemon_jobs_are_bit_identical_to_one_shot_runs_on_both_backends() {
    let root = tmp_root();
    let sentinel = root.join("term.sentinel");
    let client = ServeClient::new(&root);

    let daemon = {
        let root = root.clone();
        let term = TermSignal::at(sentinel.clone());
        std::thread::spawn(move || datamime_serve::run(root, term))
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    while client.list().is_err() {
        assert!(Instant::now() < deadline, "daemon never became reachable");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Thread-backend tenant: grid-quantized with enough iterations that
    // the optimizer re-suggests points and the memo cache gets hits.
    let thread_spec = "workload=mem-fb iters=48 seed=7 curves=false grid=4";
    // Process-backend tenant: same fixed-seed contract through real
    // datamime-worker processes.
    let proc_spec = format!(
        "workload=mem-fb iters=10 seed=9 curves=false grid=4 backend=proc worker_bin={}",
        env!("CARGO_BIN_EXE_datamime-worker")
    );
    let thread_job = client.submit_line(thread_spec).unwrap();
    let proc_job = client.submit_line(&proc_spec).unwrap();

    // The admin plane must report live counters while jobs are running.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let stats = client.stats().unwrap();
        if stat(&stats, "evals") > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no live eval counter appeared: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    for job in [&thread_job, &proc_job] {
        let status = client.wait(job, Duration::from_secs(600)).unwrap();
        assert_eq!(status.state, JobState::Done, "{job}");
    }

    let stats = client.stats().unwrap();
    assert!(stat(&stats, "evals") > 0, "evals counter: {stats:?}");
    assert!(
        stat(&stats, "cache_hits") > 0,
        "cache-hit counter: {stats:?}"
    );
    assert_eq!(stat(&stats, "jobs_submitted"), 2, "submissions: {stats:?}");
    assert_eq!(stat(&stats, "jobs_completed"), 2, "completions: {stats:?}");

    let thread_result = client.result(&thread_job).unwrap();
    let thread_ref = one_shot(thread_spec, &root.join("thread.reference.jsonl"));
    assert_matches_one_shot(&root, &thread_result, &thread_ref, "thread backend");
    // The daemon's status view agrees with the result once done.
    let status = client.status(&thread_job).unwrap();
    assert_eq!(
        status.best_error.to_bits(),
        thread_ref.best_error.to_bits(),
        "status best error"
    );

    let proc_result = client.result(&proc_job).unwrap();
    let proc_ref = one_shot(&proc_spec, &root.join("proc.reference.jsonl"));
    assert_matches_one_shot(&root, &proc_result, &proc_ref, "process backend");

    assert!(client
        .admin("version")
        .unwrap()
        .starts_with("datamime-served "));
    assert_eq!(client.admin("shutdown").unwrap(), "OK draining\n");
    daemon.join().unwrap().unwrap();

    let _ = std::fs::remove_dir_all(&root);
}

fn health_stat(health: &str, name: &str) -> u64 {
    health
        .lines()
        .find_map(|l| l.strip_prefix(&format!("STAT {name} ")))
        .unwrap_or_else(|| panic!("health lacks {name}: {health}"))
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("health {name} is not a number: {health}"))
}

/// A `max_evals=` quota stop through the daemon: the job terminates
/// gracefully in the distinct `quota_exceeded` state, its best-so-far is
/// served and bit-identical to the one-shot quota stop, the `health`
/// command reports the segmented WAL, and the retention policy then
/// garbage-collects the oldest terminal job.
#[test]
fn quota_stops_health_reporting_and_retention() {
    let root = tmp_root2();
    let sentinel = root.join("term.sentinel");
    let client = ServeClient::new(&root);

    let daemon = {
        let root = root.clone();
        let term = TermSignal::at(sentinel.clone());
        let options = datamime_serve::ServeOptions {
            keep_terminal: Some(1),
            // Rotate (and checkpoint) on every append so even this short
            // run exercises the segmented-WAL machinery end to end.
            segment_bytes: Some(1),
            disk_faults: None,
        };
        std::thread::spawn(move || datamime_serve::run_with(root, term, options))
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    while client.list().is_err() {
        assert!(Instant::now() < deadline, "daemon never became reachable");
        std::thread::sleep(Duration::from_millis(20));
    }

    // 24 iterations, capped at 8 observations: the quota, not the
    // iteration budget, ends this search.
    let quota_spec = "workload=mem-fb iters=24 seed=5 curves=false grid=4 max_evals=8";
    let quota_job = client.submit_line(quota_spec).unwrap();
    let status = client.wait(&quota_job, Duration::from_secs(600)).unwrap();
    assert_eq!(status.state, JobState::QuotaExceeded, "{quota_job}");

    // The best-so-far is served, and it is the same best-so-far the
    // one-shot CLI reaches under the same quota.
    let result = client.result(&quota_job).unwrap();
    let reference = one_shot(quota_spec, &root.join("quota.reference.jsonl"));
    assert!(reference.quota.is_some(), "reference must also quota-stop");
    assert_eq!(
        result.best_error.to_bits(),
        reference.best_error.to_bits(),
        "quota best error"
    );
    let got: Vec<u64> = result.best_unit.iter().map(|u| u.to_bits()).collect();
    let want: Vec<u64> = reference
        .best_unit_params
        .iter()
        .map(|u| u.to_bits())
        .collect();
    assert_eq!(got, want, "quota best unit point");

    let stats = client.stats().unwrap();
    assert_eq!(
        stat(&stats, "jobs_quota_exceeded"),
        1,
        "quota counter: {stats:?}"
    );

    // The health dashboard reflects the WAL shape and a healthy daemon.
    let health = client.admin("health").unwrap();
    assert!(health.ends_with("END\n"), "health terminates: {health}");
    assert!(health_stat(&health, "wal_segments") >= 1, "{health}");
    assert!(health_stat(&health, "wal_checkpoint_seq") >= 1, "{health}");
    assert_eq!(health_stat(&health, "read_only"), 0, "{health}");
    assert!(!health.contains("READONLY"), "not read-only: {health}");

    // A second terminal job pushes the first past the retention budget.
    let second = client
        .submit_line("workload=mem-fb iters=6 seed=3 curves=false grid=4")
        .unwrap();
    let status = client.wait(&second, Duration::from_secs(600)).unwrap();
    assert_eq!(status.state, JobState::Done, "{second}");
    let deadline = Instant::now() + Duration::from_secs(60);
    while client
        .list()
        .unwrap()
        .iter()
        .any(|(id, _)| id == &quota_job)
    {
        assert!(
            Instant::now() < deadline,
            "retention never collected {quota_job}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(
        !root.join("jobs").join(&quota_job).exists(),
        "GC removes the collected job's directory"
    );
    let health = client.admin("health").unwrap();
    assert_eq!(health_stat(&health, "jobs_gcd_total"), 1, "{health}");
    assert_eq!(health_stat(&health, "wal_pending_gc"), 0, "{health}");

    // Job ids never recycle, even though the GC'd job was the newest
    // number's predecessor.
    let third = client
        .submit_line("workload=mem-fb iters=6 seed=4 curves=false grid=4")
        .unwrap();
    assert_ne!(third, quota_job, "GC must not recycle job ids");
    let status = client.wait(&third, Duration::from_secs(600)).unwrap();
    assert_eq!(status.state, JobState::Done, "{third}");

    assert_eq!(client.admin("shutdown").unwrap(), "OK draining\n");
    daemon.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

fn tmp_root2() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("datamime-serve-it2-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
