//! Integration tests spanning the workload zoo and the three evaluation
//! platforms.

use datamime::metrics::DistMetric;
use datamime::profiler::{profile_workload, ProfilingConfig};
use datamime::workload::{AppConfig, Workload};
use datamime_apps::{KvConfig, MasstreeConfig, SearchConfig, SiloConfig};
use datamime_sim::MachineConfig;

/// Scaled-down versions of the targets so the suite stays fast.
fn scaled_targets() -> Vec<Workload> {
    let mut out = Vec::new();
    let mut w = Workload::mem_fb();
    w.app = AppConfig::Kv(KvConfig {
        n_keys: 10_000,
        ..KvConfig::facebook_like()
    });
    out.push(w);
    let mut w = Workload::silo_bidding();
    w.app = AppConfig::Silo(SiloConfig {
        n_bid_items: 400_000,
        ..SiloConfig::bidding_target()
    });
    out.push(w);
    let mut w = Workload::xapian_wiki();
    w.app = AppConfig::Search(SearchConfig {
        n_docs: 5_000,
        n_terms: 4_000,
        ..datamime_apps::SearchConfig::wikipedia_target()
    });
    out.push(w);
    out
}

#[test]
fn every_target_profiles_on_every_machine() {
    let cfg = ProfilingConfig::fast().without_curves();
    for machine in [
        MachineConfig::broadwell(),
        MachineConfig::zen2(),
        MachineConfig::silvermont(),
    ] {
        for w in scaled_targets() {
            let p = profile_workload(&w, &machine, &cfg);
            let ipc = p.mean(DistMetric::Ipc);
            assert!(
                ipc > 0.05 && ipc <= machine.issue_width,
                "{} on {}: ipc {ipc}",
                w.name,
                machine.name
            );
        }
    }
}

#[test]
fn silvermont_is_slowest_broadly() {
    // The narrow in-order-ish core should not beat the big cores on these
    // server workloads.
    let cfg = ProfilingConfig::fast().without_curves();
    for w in scaled_targets() {
        let bdw = profile_workload(&w, &MachineConfig::broadwell(), &cfg).mean(DistMetric::Ipc);
        let slm = profile_workload(&w, &MachineConfig::silvermont(), &cfg).mean(DistMetric::Ipc);
        assert!(
            slm < bdw * 1.1,
            "{}: silvermont {slm} vs broadwell {bdw}",
            w.name
        );
    }
}

#[test]
fn workload_identity_is_preserved_across_machines() {
    // A workload's relative characteristics (e.g. memcached icache-heavy,
    // silo memory-heavy) hold on every machine.
    let cfg = ProfilingConfig::fast().without_curves();
    for machine in [MachineConfig::broadwell(), MachineConfig::zen2()] {
        let kv = profile_workload(&scaled_targets()[0], &machine, &cfg);
        let silo = profile_workload(&scaled_targets()[1], &machine, &cfg);
        assert!(
            kv.mean(DistMetric::ICacheMpki) > silo.mean(DistMetric::ICacheMpki),
            "memcached must be the icache-heavy one on {}",
            machine.name
        );
        assert!(
            silo.mean(DistMetric::LlcMpki) > kv.mean(DistMetric::LlcMpki),
            "silo must be the memory-heavy one on {}",
            machine.name
        );
    }
}

#[test]
fn masstree_case_study_contrast_holds() {
    // Table IV: masstree has lower ICache MPKI than memcached but higher
    // LLC MPKI (bigger resident set, cache-crafted code).
    let cfg = ProfilingConfig::fast().without_curves();
    let machine = MachineConfig::broadwell();
    let mut masstree = Workload::masstree_ycsb();
    masstree.app = AppConfig::Masstree(MasstreeConfig {
        n_keys: 600_000,
        ..MasstreeConfig::ycsb_target()
    });
    let mt = profile_workload(&masstree, &machine, &cfg);
    let kv = profile_workload(&scaled_targets()[0], &machine, &cfg);
    assert!(mt.mean(DistMetric::ICacheMpki) < kv.mean(DistMetric::ICacheMpki));
    assert!(mt.mean(DistMetric::LlcMpki) > kv.mean(DistMetric::LlcMpki));
}

#[test]
fn networked_memcached_adds_frontend_pressure() {
    // Sec. V-F: the networked configuration exercises the kernel TCP path.
    let cfg = ProfilingConfig::fast().without_curves();
    let machine = MachineConfig::broadwell();
    let local = profile_workload(&scaled_targets()[0], &machine, &cfg);
    let mut net = scaled_targets()[0].clone();
    if let AppConfig::Kv(c) = &mut net.app {
        c.networked = true;
    }
    let netp = profile_workload(&net, &machine, &cfg);
    assert!(
        netp.mean(DistMetric::ICacheMpki) > local.mean(DistMetric::ICacheMpki),
        "net {} vs local {}",
        netp.mean(DistMetric::ICacheMpki),
        local.mean(DistMetric::ICacheMpki)
    );
}
