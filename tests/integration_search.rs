//! Integration tests of the Datamime search against real workloads.

use datamime::error_model::MetricWeights;
use datamime::generator::{DatasetGenerator, KvGenerator};
use datamime::metrics::DistMetric;
use datamime::profiler::profile_workload;
use datamime::search::{search, OptimizerKind, SearchConfig};
use datamime::workload::{AppConfig, Workload};

fn small_target() -> Workload {
    let mut w = Workload::mem_fb();
    if let AppConfig::Kv(c) = &mut w.app {
        c.n_keys = 15_000;
        // Keep the target inside the generator's reach (the generator
        // models single-key requests) so discrimination is measurable.
        c.multiget_fraction = 0.0;
    }
    w
}

#[test]
fn search_beats_the_median_random_point() {
    let mut cfg = SearchConfig::fast(16);
    cfg.profiling = cfg.profiling.without_curves();
    let target = profile_workload(&small_target(), &cfg.machine, &cfg.profiling);
    let outcome = search(&KvGenerator::new(), &target, &cfg);

    // The best point must improve substantially over the typical evaluated
    // point (i.e. the search actually discriminates).
    let mut errors: Vec<f64> = outcome.history.iter().map(|r| r.error).collect();
    errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = errors[errors.len() / 2];
    assert!(
        outcome.best_error < median * 0.8,
        "best {} vs median {median}",
        outcome.best_error
    );
}

#[test]
fn running_min_is_monotone_and_ends_at_best() {
    let mut cfg = SearchConfig::fast(10);
    cfg.profiling = cfg.profiling.without_curves();
    let target = profile_workload(&small_target(), &cfg.machine, &cfg.profiling);
    let outcome = search(&KvGenerator::new(), &target, &cfg);
    let mins = outcome.running_min();
    for w in mins.windows(2) {
        assert!(w[1] <= w[0]);
    }
    assert_eq!(*mins.last().unwrap(), outcome.best_error);
}

#[test]
fn weighting_ipc_tightens_the_ipc_match() {
    // Sec. V-C: re-running the search with higher IPC weight gives a
    // closer IPC at the possible expense of other metrics.
    let mut base = SearchConfig::fast(14);
    base.profiling = base.profiling.without_curves();
    let target = profile_workload(&small_target(), &base.machine, &base.profiling);
    let t_ipc = target.mean(DistMetric::Ipc);

    let mut weighted = base.clone();
    weighted.weights = MetricWeights::equal().with_dist_weight(DistMetric::Ipc, 8.0);

    let plain = search(&KvGenerator::new(), &target, &base);
    let ipc_focused = search(&KvGenerator::new(), &target, &weighted);
    let err = |o: &datamime::search::SearchOutcome| {
        (o.best_profile.mean(DistMetric::Ipc) - t_ipc).abs() / t_ipc
    };
    // The IPC-weighted search must achieve a competitive-or-better IPC.
    assert!(
        err(&ipc_focused) <= err(&plain) + 0.05,
        "weighted {} vs plain {}",
        err(&ipc_focused),
        err(&plain)
    );
}

#[test]
fn bayesian_matches_or_beats_random_at_equal_budget() {
    let mut cfg = SearchConfig::fast(14);
    cfg.profiling = cfg.profiling.without_curves();
    let target = profile_workload(&small_target(), &cfg.machine, &cfg.profiling);

    let bo = search(&KvGenerator::new(), &target, &cfg);
    let mut rnd_cfg = cfg.clone();
    rnd_cfg.optimizer = OptimizerKind::Random;
    let rnd = search(&KvGenerator::new(), &target, &rnd_cfg);
    assert!(
        bo.best_error <= rnd.best_error * 1.25,
        "BO {} should not lose badly to random {}",
        bo.best_error,
        rnd.best_error
    );
}

#[test]
fn best_workload_parameters_are_in_range() {
    let mut cfg = SearchConfig::fast(8);
    cfg.profiling = cfg.profiling.without_curves();
    let target = profile_workload(&small_target(), &cfg.machine, &cfg.profiling);
    let generator = KvGenerator::new();
    let outcome = search(&generator, &target, &cfg);
    for ((name, value), spec) in generator
        .describe(&outcome.best_unit_params)
        .into_iter()
        .zip(generator.param_specs())
    {
        assert!(
            value >= spec.lo - 1e-9 && value <= spec.hi + 1e-9,
            "{name} = {value} outside [{}, {}]",
            spec.lo,
            spec.hi
        );
    }
}
