//! Integration of the full Datamime search with the `datamime-dist`
//! process backend: bit-identical results against the in-process thread
//! backend across worker counts, under worker-kill fault plans, under
//! backpressure, and across journal resume in both backend directions.
//!
//! The real `datamime-worker` binary is built by cargo alongside this
//! test and located via `CARGO_BIN_EXE_datamime-worker`.

use datamime::generator::{KvGenerator, QuantizedGenerator};
use datamime::profiler::profile_workload;
use datamime::search::{
    search_with_runtime, BackendChoice, ProcOptions, RuntimeOptions, SearchConfig, SearchOutcome,
};
use datamime::workload::Workload;
use datamime_runtime::{FaultPlan, InjectedFault};
use std::fs;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("datamime-dist-it-{}-{name}", std::process::id()));
    let _ = fs::remove_file(&path);
    path
}

fn fast_config(iterations: usize) -> SearchConfig {
    let mut cfg = SearchConfig::fast(iterations);
    cfg.profiling = cfg.profiling.without_curves();
    cfg
}

fn proc_backend(workers: usize) -> BackendChoice {
    BackendChoice::Process(ProcOptions {
        workers,
        worker_bin: Some(PathBuf::from(env!("CARGO_BIN_EXE_datamime-worker"))),
    })
}

fn generator() -> QuantizedGenerator<KvGenerator> {
    QuantizedGenerator::new(KvGenerator::new(), 6)
}

/// Everything the journal/winner semantics promise: same points, same
/// error bits, same winner, same accounting — regardless of backend.
fn assert_identical(a: &SearchOutcome, b: &SearchOutcome, what: &str) {
    assert_eq!(a.best_unit_params, b.best_unit_params, "{what}: winner");
    assert_eq!(
        a.best_error.to_bits(),
        b.best_error.to_bits(),
        "{what}: best error"
    );
    assert_eq!(a.history.len(), b.history.len(), "{what}: history length");
    for (i, (x, y)) in a.history.iter().zip(&b.history).enumerate() {
        assert_eq!(x.unit_params, y.unit_params, "{what}: point {i}");
        assert_eq!(
            x.error.to_bits(),
            y.error.to_bits(),
            "{what}: error bits at {i}"
        );
    }
    assert_eq!(
        a.best_profile.to_tsv(),
        b.best_profile.to_tsv(),
        "{what}: best profile"
    );
}

#[test]
fn process_backend_is_bit_identical_to_threads_for_any_worker_count() {
    let cfg = fast_config(10);
    let target = profile_workload(&Workload::mem_fb(), &cfg.machine, &cfg.profiling);
    let base = RuntimeOptions {
        batch_k: 4,
        workers: 4,
        ..RuntimeOptions::default()
    };
    let thread = search_with_runtime(&generator(), &target, &cfg, &base).unwrap();
    for workers in [1usize, 2, 4] {
        let opts = RuntimeOptions {
            backend: proc_backend(workers),
            ..base.clone()
        };
        let proc = search_with_runtime(&generator(), &target, &cfg, &opts).unwrap();
        assert_identical(&thread, &proc, &format!("{workers} worker(s)"));
        assert_eq!(thread.stats, proc.stats, "{workers} worker(s): stats");
    }
}

#[test]
fn killing_a_worker_mid_batch_changes_nothing() {
    // Evaluation 2's first dispatch aborts its worker process; the broker
    // respawns it and re-dispatches transparently. In-process the same
    // plan is a no-op, so both runs must land on identical bits.
    let cfg = fast_config(8);
    let target = profile_workload(&Workload::mem_fb(), &cfg.machine, &cfg.profiling);
    let plan = FaultPlan::new().fail_first(2, InjectedFault::KillWorker, 1);
    let base = RuntimeOptions {
        batch_k: 4,
        workers: 2,
        fault_plan: Some(plan),
        ..RuntimeOptions::default()
    };
    let thread = search_with_runtime(&generator(), &target, &cfg, &base).unwrap();
    let opts = RuntimeOptions {
        backend: proc_backend(2),
        ..base.clone()
    };
    let proc = search_with_runtime(&generator(), &target, &cfg, &opts).unwrap();
    assert_identical(&thread, &proc, "worker killed mid-batch");
    assert_eq!(thread.stats, proc.stats, "stats under a kill plan");
}

#[test]
fn journal_resume_works_across_backend_kinds() {
    let cfg = fast_config(8);
    let target = profile_workload(&Workload::mem_fb(), &cfg.machine, &cfg.profiling);
    let reference = search_with_runtime(
        &generator(),
        &target,
        &cfg,
        &RuntimeOptions {
            batch_k: 2,
            workers: 2,
            ..RuntimeOptions::default()
        },
    )
    .unwrap();

    // Truncates a finished journal to its first `keep` observations,
    // simulating a mid-run crash.
    let truncate = |path: &PathBuf, keep: usize| {
        let text = fs::read_to_string(path).unwrap();
        let kept: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("\"header\"") || l.contains("\"eval\""))
            .take(1 + keep)
            .collect();
        fs::write(path, kept.join("\n") + "\n").unwrap();
    };

    // Thread-journaled prefix, resumed under the process backend.
    let t2p = tmp("thread-to-proc.jsonl");
    search_with_runtime(
        &generator(),
        &target,
        &cfg,
        &RuntimeOptions {
            batch_k: 2,
            workers: 2,
            journal: Some(t2p.clone()),
            ..RuntimeOptions::default()
        },
    )
    .unwrap();
    truncate(&t2p, 4);
    let resumed = search_with_runtime(
        &generator(),
        &target,
        &cfg,
        &RuntimeOptions {
            batch_k: 2,
            journal: Some(t2p.clone()),
            resume: Some(t2p.clone()),
            backend: proc_backend(2),
            ..RuntimeOptions::default()
        },
    )
    .unwrap();
    assert_identical(&reference, &resumed, "thread journal resumed on proc");
    assert_eq!(resumed.stats.replayed, 4, "thread→proc replayed prefix");

    // Process-journaled prefix, resumed under the thread backend.
    let p2t = tmp("proc-to-thread.jsonl");
    search_with_runtime(
        &generator(),
        &target,
        &cfg,
        &RuntimeOptions {
            batch_k: 2,
            journal: Some(p2t.clone()),
            backend: proc_backend(2),
            ..RuntimeOptions::default()
        },
    )
    .unwrap();
    truncate(&p2t, 4);
    let resumed = search_with_runtime(
        &generator(),
        &target,
        &cfg,
        &RuntimeOptions {
            batch_k: 2,
            workers: 2,
            journal: Some(p2t.clone()),
            resume: Some(p2t.clone()),
            ..RuntimeOptions::default()
        },
    )
    .unwrap();
    assert_identical(&reference, &resumed, "proc journal resumed on threads");
    assert_eq!(resumed.stats.replayed, 4, "proc→thread replayed prefix");

    let _ = fs::remove_file(&t2p);
    let _ = fs::remove_file(&p2t);
}

#[test]
fn more_outstanding_points_than_workers_queue_without_reordering() {
    // batch_k 6 against 2 worker processes: the broker must queue the
    // excess and commit observations in batch order, bit-identical to
    // the thread backend at the same batch_k.
    let cfg = fast_config(12);
    let target = profile_workload(&Workload::mem_fb(), &cfg.machine, &cfg.profiling);
    let base = RuntimeOptions {
        batch_k: 6,
        workers: 6,
        ..RuntimeOptions::default()
    };
    let thread = search_with_runtime(&generator(), &target, &cfg, &base).unwrap();
    let opts = RuntimeOptions {
        batch_k: 6,
        backend: proc_backend(2),
        ..RuntimeOptions::default()
    };
    let proc = search_with_runtime(&generator(), &target, &cfg, &opts).unwrap();
    assert_identical(&thread, &proc, "backpressure at batch 6 on 2 workers");
}
