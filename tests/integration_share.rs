//! End-to-end test of the paper's sharing workflow: the service operator
//! profiles the production workload and exports the profile; a third party
//! imports it and runs the dataset search without ever touching the
//! production system or its data.

use datamime::generator::KvGenerator;
use datamime::metrics::DistMetric;
use datamime::profile::Profile;
use datamime::profiler::profile_workload;
use datamime::search::{search, search_parallel, SearchConfig};
use datamime::workload::{AppConfig, Workload};

fn small_target() -> Workload {
    let mut w = Workload::mem_fb();
    if let AppConfig::Kv(c) = &mut w.app {
        c.n_keys = 12_000;
    }
    w
}

#[test]
fn shared_profile_drives_the_search() {
    let cfg = SearchConfig::fast(10);

    // Operator side: profile and export.
    let exported = {
        let p = profile_workload(&small_target(), &cfg.machine, &cfg.profiling);
        p.to_tsv()
    };

    // Third-party side: parse and search. No Workload object crosses the
    // boundary — only the TSV text.
    let imported = Profile::from_tsv(&exported).expect("valid exported profile");
    let outcome = search(&KvGenerator::new(), &imported, &cfg);
    assert!(outcome.best_error.is_finite());

    // The synthesized benchmark should land near the shared profile's IPC.
    let t_ipc = imported.mean(DistMetric::Ipc);
    let b_ipc = outcome.best_profile.mean(DistMetric::Ipc);
    assert!(
        (t_ipc - b_ipc).abs() / t_ipc < 0.3,
        "shared-profile clone ipc {b_ipc} vs target {t_ipc}"
    );
}

#[test]
fn exported_profile_roundtrips_through_text() {
    let cfg = SearchConfig::fast(1);
    let p = profile_workload(&small_target(), &cfg.machine, &cfg.profiling);
    let q = Profile::from_tsv(&p.to_tsv()).unwrap();
    for m in DistMetric::ALL {
        assert_eq!(p.dist(m).samples(), q.dist(m).samples(), "{m}");
    }
    assert_eq!(p.curve(), q.curve());
}

#[test]
fn parallel_search_from_shared_profile() {
    let mut cfg = SearchConfig::fast(8);
    cfg.profiling = cfg.profiling.without_curves();
    let tsv = profile_workload(&small_target(), &cfg.machine, &cfg.profiling).to_tsv();
    let imported = Profile::from_tsv(&tsv).unwrap();
    let outcome = search_parallel(&KvGenerator::new(), &imported, &cfg, 4);
    assert_eq!(outcome.history.len(), 8);
    assert!(outcome.best_error.is_finite());
}
