//! Integration of the full Datamime search with the `datamime-runtime`
//! executor: batch-one equivalence with the legacy loop, and crash-safe
//! journal resume on a real generator + simulated profiler.

use datamime::generator::KvGenerator;
use datamime::profiler::profile_workload;
use datamime::search::{search, search_with_runtime, RuntimeOptions, SearchConfig};
use datamime::workload::Workload;
use std::fs;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "datamime-integration-{}-{name}",
        std::process::id()
    ));
    let _ = fs::remove_file(&path);
    path
}

fn fast_config(iterations: usize) -> SearchConfig {
    let mut cfg = SearchConfig::fast(iterations);
    cfg.profiling = cfg.profiling.without_curves();
    cfg
}

#[test]
fn runtime_batch_one_is_bit_for_bit_the_legacy_search() {
    let cfg = fast_config(8);
    let target = profile_workload(&Workload::mem_fb(), &cfg.machine, &cfg.profiling);
    let legacy = search(&KvGenerator::new(), &target, &cfg);
    let runtime = search_with_runtime(
        &KvGenerator::new(),
        &target,
        &cfg,
        &RuntimeOptions::sequential(),
    )
    .unwrap();
    assert_eq!(legacy.best_unit_params, runtime.best_unit_params);
    assert_eq!(legacy.best_error.to_bits(), runtime.best_error.to_bits());
    assert_eq!(legacy.history.len(), runtime.history.len());
    for (a, b) in legacy.history.iter().zip(&runtime.history) {
        assert_eq!(a.unit_params, b.unit_params);
        assert_eq!(a.error.to_bits(), b.error.to_bits());
    }
}

#[test]
fn journaled_search_resumes_to_the_same_best() {
    let cfg = fast_config(10);
    let target = profile_workload(&Workload::mem_fb(), &cfg.machine, &cfg.profiling);

    // Reference: one uninterrupted run.
    let reference = search_with_runtime(
        &KvGenerator::new(),
        &target,
        &cfg,
        &RuntimeOptions::sequential(),
    )
    .unwrap();

    // Journaled run, then simulate a crash by dropping everything after
    // the header and the first 6 eval events.
    let path = tmp("clone.jsonl");
    let journaled = RuntimeOptions {
        journal: Some(path.clone()),
        ..RuntimeOptions::default()
    };
    search_with_runtime(&KvGenerator::new(), &target, &cfg, &journaled).unwrap();
    let text = fs::read_to_string(&path).unwrap();
    let kept: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"header\"") || l.contains("\"eval\""))
        .take(1 + 6)
        .collect();
    fs::write(&path, kept.join("\n") + "\n").unwrap();

    // Resume in place (journal defaults to the resume path in the CLI;
    // here we pass both explicitly) and land on the reference outcome.
    let resumed_opts = RuntimeOptions {
        journal: Some(path.clone()),
        resume: Some(path.clone()),
        ..RuntimeOptions::default()
    };
    let resumed = search_with_runtime(&KvGenerator::new(), &target, &cfg, &resumed_opts).unwrap();
    assert_eq!(resumed.history.len(), 10);
    assert_eq!(resumed.best_unit_params, reference.best_unit_params);
    assert_eq!(
        resumed.best_error.to_bits(),
        reference.best_error.to_bits(),
        "resumed search must reach the reference best error"
    );

    // The journal now holds the complete run.
    let full = datamime_runtime::replay(&path).unwrap();
    assert!(full.complete);
    assert_eq!(full.evals.len(), 10);
    let _ = fs::remove_file(&path);
}
