//! Cross-crate integration tests of the full profiling pipeline:
//! workload -> load generator -> simulator -> sampler -> profile -> error.

use datamime::error_model::{profile_error, MetricWeights};
use datamime::metrics::{CurveMetric, DistMetric};
use datamime::profiler::{profile_workload, ProfilingConfig};
use datamime::workload::{AppConfig, Workload};
use datamime_apps::KvConfig;
use datamime_sim::MachineConfig;

fn small_kv(name: &str, cfg: KvConfig) -> Workload {
    let mut w = Workload::mem_fb();
    w.name = name.to_owned();
    w.app = AppConfig::Kv(cfg);
    w
}

fn shrink(mut cfg: KvConfig, n_keys: usize) -> KvConfig {
    cfg.n_keys = n_keys;
    cfg
}

#[test]
fn profile_self_error_is_zero() {
    let w = small_kv("t", shrink(KvConfig::facebook_like(), 10_000));
    let cfg = ProfilingConfig::fast();
    let p = profile_workload(&w, &MachineConfig::broadwell(), &cfg);
    let e = profile_error(&p, &p, &MetricWeights::equal());
    assert_eq!(e.total, 0.0);
}

#[test]
fn different_datasets_produce_nonzero_error() {
    let cfg = ProfilingConfig::fast();
    let machine = MachineConfig::broadwell();
    let a = profile_workload(
        &small_kv("fb", shrink(KvConfig::facebook_like(), 10_000)),
        &machine,
        &cfg,
    );
    let b = profile_workload(
        &small_kv("ycsb", shrink(KvConfig::ycsb_like(), 10_000)),
        &machine,
        &cfg,
    );
    let e = profile_error(&a, &b, &MetricWeights::equal());
    assert!(
        e.total > 0.1,
        "distinct datasets must differ: {}",
        e.summary()
    );
}

#[test]
fn noise_floor_is_below_dataset_differences() {
    // Re-profiling the same workload with a different load-generator seed
    // (measurement noise) must produce far less error than changing the
    // dataset — otherwise the search signal would drown.
    let machine = MachineConfig::broadwell();
    let cfg_a = ProfilingConfig::fast();
    let mut cfg_b = ProfilingConfig::fast();
    cfg_b.seed ^= 0xFFFF;
    let base = small_kv("t", shrink(KvConfig::facebook_like(), 10_000));
    let pa = profile_workload(&base, &machine, &cfg_a);
    let pb = profile_workload(&base, &machine, &cfg_b);
    let noise = profile_error(&pa, &pb, &MetricWeights::equal()).total;

    let other = profile_workload(
        &small_kv("y", shrink(KvConfig::ycsb_like(), 10_000)),
        &machine,
        &cfg_a,
    );
    let signal = profile_error(&pa, &other, &MetricWeights::equal()).total;
    assert!(
        noise * 2.0 < signal,
        "noise {noise} must be well below signal {signal}"
    );
}

#[test]
fn curves_present_on_catted_machines_only() {
    let w = small_kv("t", shrink(KvConfig::facebook_like(), 5_000));
    let cfg = ProfilingConfig::fast();
    let bdw = profile_workload(&w, &MachineConfig::broadwell(), &cfg);
    assert_eq!(bdw.curve().len(), cfg.curve_ways.len());
    assert!(!bdw.curve_values(CurveMetric::IpcCurve).is_empty());
    let slm = profile_workload(&w, &MachineConfig::silvermont(), &cfg);
    assert!(slm.curve().is_empty());
}

#[test]
fn utilization_and_bandwidth_are_physical() {
    let w = small_kv("t", shrink(KvConfig::facebook_like(), 10_000));
    let p = profile_workload(&w, &MachineConfig::broadwell(), &ProfilingConfig::fast());
    let util = p.mean(DistMetric::CpuUtilization);
    assert!((0.0..=1.0).contains(&util), "util {util}");
    let bw = p.mean(DistMetric::MemoryBandwidth);
    assert!(
        (0.0..=20.0).contains(&bw),
        "bandwidth {bw} GB/s vs DDR4 limits"
    );
}

#[test]
fn perfprox_clone_runs_through_the_same_pipeline() {
    use datamime_apps::App;
    use datamime_perfproxy::PerfProxClone;
    use datamime_stats::Rng;

    let target = profile_workload(
        &small_kv("t", shrink(KvConfig::facebook_like(), 10_000)),
        &MachineConfig::broadwell(),
        &ProfilingConfig::fast().without_curves(),
    );
    let mut proxy = PerfProxClone::from_profile(&target, 7);
    let mut machine = datamime_sim::Machine::new(MachineConfig::broadwell());
    let mut rng = Rng::with_seed(1);
    for _ in 0..50 {
        proxy.serve(&mut machine, &mut rng);
    }
    assert!(machine.counters().instructions > 400_000);
}
