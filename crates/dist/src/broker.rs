//! The broker: the engine-side half of the distributed evaluation plane.
//!
//! [`Broker::start`] binds a Unix domain socket, spawns `workers` worker
//! processes, and validates each one's `Hello` (protocol version, context
//! fingerprint, worker-binary identity) before admitting it to the pool.
//! [`Broker`] implements [`datamime_runtime::Backend`], so
//! `Executor::run_backend` drives it exactly like the in-process thread
//! pool — and because verdicts are returned in job order and every
//! retry/penalty decision is a pure function of `(seed, index, attempt)`,
//! a proc-backend run is bit-identical to a thread-backend run for any
//! worker count.
//!
//! Failure model (the delta against the in-process supervisor, see
//! DESIGN.md §8):
//!
//! - **deadlines** are enforced by SIGKILL-ing the worker process —
//!   strictly stronger than the watchdog's cooperative [`CancelToken`]
//!   cancellation, because a wedged simulator that never polls the token
//!   still dies. The killed attempt is classified `timeout` with the
//!   supervisor's exact detail string and consumes a retry, exactly as
//!   in-process;
//! - **spontaneous worker death** (crash, OOM-kill, `KillWorker` fault)
//!   is *transparent*: the in-flight point is re-dispatched to another
//!   worker without consuming a retry, because in-process evaluation has
//!   no equivalent failure and charging one would diverge the runs. The
//!   re-dispatch budget bounds the loop; exhausting it yields a final
//!   [`FailureKind::WorkerLost`] fault;
//! - **respawn** of dead workers is bounded by a per-slot restart budget;
//!   when every slot has exhausted its budget the batch fails with a
//!   [`Backend`](datamime_runtime::ExecError::Backend) error.
//!
//! [`CancelToken`]: datamime_runtime::CancelToken

use crate::protocol::{
    read_frame, worker_identity, write_frame, Frame, ProtocolError, PROTOCOL_VERSION,
};
use datamime_runtime::supervisor::{
    retry_backoff, Evaluated, FailPolicy, FailedAttempt, FailureKind, FaultInfo,
};
use datamime_runtime::telemetry::StageTimes;
use datamime_runtime::Backend;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Configuration of a [`Broker`]. The supervision fields mirror
/// `SupervisorConfig` so both backends penalize, retry, and back off
/// identically for the same run seed.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Path of the worker binary to spawn.
    pub worker_bin: PathBuf,
    /// Arguments passed to every worker (the broker appends `--socket`
    /// and `--worker-id` itself).
    pub worker_args: Vec<String>,
    /// Number of worker processes.
    pub workers: usize,
    /// Evaluation-context fingerprint every worker must echo in `Hello`.
    pub ctx_fingerprint: u64,
    /// Run seed — the retry backoff schedule is a pure function of
    /// `(seed, index, attempt)`, shared with the in-process supervisor.
    pub seed: u64,
    /// Wall-clock budget per evaluation attempt; exceeding it SIGKILLs
    /// the worker (`None` = unlimited).
    pub deadline: Option<Duration>,
    /// Retries after the first failed attempt.
    pub max_retries: u32,
    /// First-retry backoff; doubles per retry.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff.
    pub backoff_cap: Duration,
    /// What to do once retries are exhausted.
    pub fail_policy: FailPolicy,
    /// The finite objective observed for a penalized failure.
    pub penalty: f64,
    /// Respawns allowed per worker slot before the slot is abandoned.
    pub restart_budget: u32,
    /// Transparent re-dispatches allowed per point after spontaneous
    /// worker deaths, before the point fails with
    /// [`FailureKind::WorkerLost`].
    pub redispatch_budget: u32,
    /// Optional metrics registry; the broker bumps `worker_restarts`
    /// there whenever a slot is respawned.
    pub metrics: Option<Arc<datamime_runtime::MetricsRegistry>>,
}

impl BrokerConfig {
    /// A config with the supervision defaults (penalize, no deadline, no
    /// retries) and modest restart/re-dispatch budgets.
    pub fn new(worker_bin: PathBuf, workers: usize) -> Self {
        BrokerConfig {
            worker_bin,
            worker_args: Vec::new(),
            workers,
            ctx_fingerprint: 0,
            seed: 0,
            deadline: None,
            max_retries: 0,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(10),
            fail_policy: FailPolicy::Penalize,
            penalty: datamime_bayesopt_penalty(),
            restart_budget: 3,
            redispatch_budget: 3,
            metrics: None,
        }
    }
}

/// The supervisor's penalty objective, without making this crate depend
/// on `datamime-bayesopt` (the layering matrix keeps `dist` on top of
/// `runtime` only). Checked against the real constant in core's tests.
fn datamime_bayesopt_penalty() -> f64 {
    1.0e9
}

/// Messages flowing from the acceptor/reader threads to the event loop.
enum Msg {
    /// A worker finished its handshake; `conn` is the write half.
    Ready { id: u64, conn: UnixStream },
    /// A worker failed protocol/context/identity negotiation.
    Rejected { reason: String },
    /// An `EvalOk`/`EvalErr` frame from worker `id`.
    Result { id: u64, frame: Frame },
    /// Worker `id`'s connection closed.
    Closed { id: u64 },
}

/// One worker slot. `id` names the current process *incarnation* — it
/// changes on every respawn, so messages from a killed predecessor are
/// recognizably stale and ignored.
struct Slot {
    id: u64,
    child: Option<Child>,
    conn: Option<UnixStream>,
    /// Batch position of the job in flight, if any.
    busy: Option<usize>,
    /// Deadline of the in-flight attempt.
    due: Option<Instant>,
    restarts: u32,
    /// Restart budget exhausted; the slot spawns no more workers.
    dead: bool,
}

/// Per-point dispatch state within one batch.
struct Job {
    index: usize,
    unit: Vec<f64>,
    /// Supervision attempt number (0-based), advanced by real failures.
    attempt: u32,
    /// Total dispatches, including transparent re-dispatches.
    dispatch: u32,
    /// Spontaneous worker deaths charged to this point.
    lost: u32,
    /// Earliest instant the next attempt may start (retry backoff).
    ready_at: Option<Instant>,
    /// Slot currently evaluating the point.
    running_on: Option<usize>,
    verdict: Option<Evaluated>,
}

/// The broker-side worker pool; see the module docs.
pub struct Broker {
    cfg: BrokerConfig,
    dir: PathBuf,
    socket_path: PathBuf,
    events: mpsc::Receiver<Msg>,
    slots: Vec<Slot>,
    next_id: u64,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

static SOCKET_DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

impl Broker {
    /// Binds the broker socket and spawns `cfg.workers` worker processes.
    /// Handshakes complete asynchronously; a version- or context-skewed
    /// worker surfaces as a clear [`evaluate_batch`](Backend) error, never
    /// a hang.
    ///
    /// # Errors
    ///
    /// Fails if the socket directory or listener cannot be created, or a
    /// worker process cannot be spawned at all.
    pub fn start(cfg: BrokerConfig) -> Result<Self, String> {
        if cfg.workers == 0 {
            return Err("broker needs at least one worker".to_string());
        }
        let dir = std::env::temp_dir().join(format!(
            "datamime-dist-{}-{}",
            std::process::id(),
            SOCKET_DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        let socket_path = dir.join("broker.sock");
        let listener = UnixListener::bind(&socket_path)
            .map_err(|e| format!("cannot bind {socket_path:?}: {e}"))?;

        let (tx, rx) = mpsc::channel();
        let shutdown = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let tx = tx.clone();
            let shutdown = Arc::clone(&shutdown);
            let expect_ctx = cfg.ctx_fingerprint;
            std::thread::Builder::new()
                .name("datamime-broker-accept".to_string())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(conn) = conn else { continue };
                        let tx = tx.clone();
                        let _ = std::thread::Builder::new()
                            .name("datamime-broker-reader".to_string())
                            .spawn(move || handshake_and_read(conn, expect_ctx, &tx));
                    }
                })
                .map_err(|e| format!("cannot spawn acceptor: {e}"))?
        };

        let mut broker = Broker {
            cfg,
            dir,
            socket_path,
            events: rx,
            slots: Vec::new(),
            next_id: 1,
            shutdown,
            acceptor: Some(acceptor),
        };
        for _ in 0..broker.cfg.workers {
            let slot = Slot {
                id: 0,
                child: None,
                conn: None,
                busy: None,
                due: None,
                restarts: 0,
                dead: false,
            };
            broker.slots.push(slot);
        }
        for i in 0..broker.slots.len() {
            broker.spawn_worker(i)?;
        }
        Ok(broker)
    }

    /// The directory holding the broker socket (useful in tests).
    pub fn socket_dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Spawns a fresh worker process into slot `i` under a new
    /// incarnation id.
    fn spawn_worker(&mut self, i: usize) -> Result<(), String> {
        let id = self.next_id;
        self.next_id += 1;
        // Point the worker's termination sentinel into the broker's own
        // socket dir. Besides giving broker-managed workers a drain path,
        // this disables the worker's `/bin/sh` trampoline (see
        // `datamime_runtime::termsig`): the PID the broker holds must be
        // the real worker, or deadline SIGKILLs would hit the wrapper and
        // orphan the evaluation process.
        let sentinel = self.dir.join(format!("term-{id}.sentinel"));
        let child = Command::new(&self.cfg.worker_bin)
            .args(&self.cfg.worker_args)
            .arg("--socket")
            .arg(&self.socket_path)
            .arg("--worker-id")
            .arg(id.to_string())
            .env(datamime_runtime::TERM_SENTINEL_ENV, &sentinel)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .map_err(|e| format!("cannot spawn worker {:?}: {e}", self.cfg.worker_bin))?;
        let slot = &mut self.slots[i];
        slot.id = id;
        slot.child = Some(child);
        slot.conn = None;
        slot.busy = None;
        slot.due = None;
        Ok(())
    }

    /// Kills and reaps slot `i`'s worker process, then respawns it if the
    /// restart budget allows. Retires the incarnation id either way, so
    /// late messages from the old process are ignored.
    fn retire_and_respawn(&mut self, i: usize) -> Result<(), String> {
        if let Some(mut child) = self.slots[i].child.take() {
            // audit:allow(swallowed-result): the worker may already have exited — kill failing means there is nothing left to kill
            let _ = child.kill();
            let _ = child.wait();
        }
        self.slots[i].id = 0;
        self.slots[i].conn = None;
        self.slots[i].busy = None;
        self.slots[i].due = None;
        if self.slots[i].restarts >= self.cfg.restart_budget {
            self.slots[i].dead = true;
            if self.slots.iter().all(|s| s.dead) {
                return Err(format!(
                    "every worker slot exhausted its restart budget of {}",
                    self.cfg.restart_budget
                ));
            }
            return Ok(());
        }
        self.slots[i].restarts += 1;
        if let Some(m) = &self.cfg.metrics {
            m.incr("worker_restarts");
        }
        self.spawn_worker(i)
    }

    /// Sends queued, ready jobs to idle connected workers, in job order.
    fn dispatch_ready(&mut self, jobs: &mut [Job], now: Instant) {
        for (j, job) in jobs.iter_mut().enumerate() {
            if job.verdict.is_some() || job.running_on.is_some() {
                continue;
            }
            if job.ready_at.is_some_and(|t| t > now) {
                continue;
            }
            let Some(i) = self
                .slots
                .iter()
                .position(|s| !s.dead && s.conn.is_some() && s.busy.is_none())
            else {
                return; // no idle worker; try again on the next event
            };
            let frame = Frame::Eval {
                index: job.index as u64,
                attempt: job.attempt,
                dispatch: job.dispatch,
                unit_bits: job.unit.iter().map(|x| x.to_bits()).collect(),
            };
            let slot = &mut self.slots[i];
            let sent = match slot.conn.as_mut() {
                Some(c) => write_frame(c, &frame).is_ok(),
                None => false,
            };
            if !sent {
                // Broken pipe: the reader thread will report Closed for
                // this incarnation; stop handing it work meanwhile.
                slot.conn = None;
                continue;
            }
            slot.busy = Some(j);
            slot.due = self.cfg.deadline.map(|d| now + d);
            job.running_on = Some(i);
            job.dispatch += 1;
            job.ready_at = None;
        }
    }

    /// Charges a real failed attempt (timeout, panic, non-finite) to
    /// `jobs[j]`, scheduling a retry or producing the final verdict —
    /// the same state machine as `Supervisor::evaluate`, driven remotely.
    #[allow(clippy::too_many_arguments)]
    fn failed_attempt(
        &mut self,
        jobs: &mut [Job],
        j: usize,
        kind: FailureKind,
        detail: String,
        worker: Option<u64>,
        on_attempt: &mut dyn FnMut(FailedAttempt),
        done: &mut usize,
    ) {
        let job = &mut jobs[j];
        on_attempt(FailedAttempt {
            index: job.index,
            attempt: job.attempt,
            kind,
            detail: detail.clone(),
            worker,
        });
        if job.attempt < self.cfg.max_retries {
            job.attempt += 1;
            job.ready_at = Some(
                // Wall-clock only gates *when* the retry starts; the
                // backoff length itself is the seeded pure function
                // shared with the supervisor, and taint analysis sees
                // the timestamp never reaches a journaled surface.
                Instant::now()
                    + retry_backoff(
                        self.cfg.backoff_base,
                        self.cfg.backoff_cap,
                        self.cfg.seed,
                        job.index,
                        job.attempt,
                    ),
            );
            return;
        }
        let attempts = self.cfg.max_retries + 1;
        if self.cfg.fail_policy == FailPolicy::Abort {
            let index = job.index;
            // audit:allow(panic-safety): Abort is the legacy fail-fast policy — this message matches Supervisor::evaluate byte for byte
            panic!("evaluation {index} failed ({kind} after {attempts} attempt(s)): {detail}");
        }
        let mut verdict = Evaluated::penalized(
            self.cfg.penalty,
            FaultInfo {
                kind,
                detail,
                retries: self.cfg.max_retries,
            },
        );
        verdict.worker = worker;
        job.verdict = Some(verdict);
        *done += 1;
    }

    /// SIGKILLs workers whose in-flight attempt is past its deadline and
    /// charges the timeout, matching the supervisor's classification.
    fn enforce_deadlines(
        &mut self,
        jobs: &mut [Job],
        now: Instant,
        on_attempt: &mut dyn FnMut(FailedAttempt),
        done: &mut usize,
    ) -> Result<(), String> {
        let budget = match self.cfg.deadline {
            Some(d) => d,
            None => return Ok(()),
        };
        for i in 0..self.slots.len() {
            let overdue = self.slots[i].due.is_some_and(|d| d <= now);
            if !overdue {
                continue;
            }
            let worker = Some(self.slots[i].id);
            let j = self.slots[i].busy;
            self.retire_and_respawn(i)?;
            if let Some(j) = j {
                jobs[j].running_on = None;
                self.failed_attempt(
                    jobs,
                    j,
                    FailureKind::Timeout,
                    format!("evaluation exceeded its {budget:?} deadline"),
                    worker,
                    on_attempt,
                    done,
                );
            }
        }
        Ok(())
    }

    /// The instant of the nearest pending timer (attempt deadline or
    /// retry `ready_at`), for sizing the event-loop wait.
    fn next_timer(&self, jobs: &[Job]) -> Option<Instant> {
        let deadlines = self.slots.iter().filter_map(|s| s.due);
        let retries = jobs
            .iter()
            .filter(|job| job.verdict.is_none() && job.running_on.is_none())
            .filter_map(|job| job.ready_at);
        deadlines.chain(retries).min()
    }

    fn slot_by_id(&self, id: u64) -> Option<usize> {
        self.slots.iter().position(|s| s.id == id && id != 0)
    }
}

impl Backend for Broker {
    fn evaluate_batch(
        &mut self,
        batch: &[(usize, Vec<f64>)],
        on_attempt: &mut dyn FnMut(FailedAttempt),
    ) -> Result<Vec<Evaluated>, String> {
        let mut jobs: Vec<Job> = batch
            .iter()
            .map(|(index, unit)| Job {
                index: *index,
                unit: unit.clone(),
                attempt: 0,
                dispatch: 0,
                lost: 0,
                ready_at: None,
                running_on: None,
                verdict: None,
            })
            .collect();
        let mut done = 0usize;

        while done < jobs.len() {
            // The event loop's clock schedules dispatch and enforces
            // deadlines; observed values never depend on it.
            let now = Instant::now();
            self.enforce_deadlines(&mut jobs, now, on_attempt, &mut done)?;
            self.dispatch_ready(&mut jobs, now);
            if done >= jobs.len() {
                break;
            }

            // Workers that died before ever connecting (bad binary, early
            // abort) produce no Closed event; poll their exit instead.
            for i in 0..self.slots.len() {
                if self.slots[i].conn.is_none() && !self.slots[i].dead {
                    let exited = match self.slots[i].child.as_mut() {
                        Some(c) => c.try_wait().map(|s| s.is_some()).unwrap_or(true),
                        None => false,
                    };
                    if exited {
                        self.retire_and_respawn(i)?;
                    }
                }
            }

            let wait = self
                .next_timer(&jobs)
                .map(|t| t.saturating_duration_since(now))
                .unwrap_or(Duration::from_millis(200))
                .clamp(Duration::from_millis(1), Duration::from_millis(200));
            let msg = match self.events.recv_timeout(wait) {
                Ok(msg) => msg,
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err("broker acceptor thread died".to_string())
                }
            };
            match msg {
                Msg::Ready { id, conn } => {
                    if let Some(i) = self.slot_by_id(id) {
                        self.slots[i].conn = Some(conn);
                    }
                }
                Msg::Rejected { reason } => return Err(reason),
                Msg::Result { id, frame } => {
                    let Some(i) = self.slot_by_id(id) else {
                        continue; // stale incarnation (killed after sending)
                    };
                    let Some(j) = self.slots[i].busy.take() else {
                        continue;
                    };
                    self.slots[i].due = None;
                    jobs[j].running_on = None;
                    match frame {
                        Frame::EvalOk {
                            index,
                            error_bits,
                            stage_ms,
                        } => {
                            if index as usize != jobs[j].index {
                                return Err(format!(
                                    "worker {id} answered for evaluation {index}, \
                                     expected {}",
                                    jobs[j].index
                                ));
                            }
                            let error = f64::from_bits(error_bits);
                            if error.is_finite() {
                                jobs[j].verdict = Some(Evaluated {
                                    error,
                                    stages: rebuild_stages(&stage_ms),
                                    fault: None,
                                    worker: Some(id),
                                });
                                done += 1;
                            } else {
                                // Defense in depth: workers classify
                                // non-finite objectives themselves.
                                self.failed_attempt(
                                    &mut jobs,
                                    j,
                                    FailureKind::NonFinite,
                                    format!("objective evaluated to {error}"),
                                    Some(id),
                                    on_attempt,
                                    &mut done,
                                );
                            }
                        }
                        Frame::EvalErr {
                            index: _,
                            kind,
                            detail,
                        } => {
                            let kind = FailureKind::from_tag(&kind).unwrap_or(FailureKind::Panic);
                            self.failed_attempt(
                                &mut jobs,
                                j,
                                kind,
                                detail,
                                Some(id),
                                on_attempt,
                                &mut done,
                            );
                        }
                        _ => return Err(format!("worker {id} sent an unexpected frame")),
                    }
                }
                Msg::Closed { id } => {
                    let Some(i) = self.slot_by_id(id) else {
                        continue; // already retired (deadline kill)
                    };
                    let j = self.slots[i].busy;
                    self.retire_and_respawn(i)?;
                    if let Some(j) = j {
                        jobs[j].running_on = None;
                        jobs[j].lost += 1;
                        if jobs[j].lost > self.cfg.redispatch_budget {
                            let lost = jobs[j].lost;
                            self.failed_attempt(
                                &mut jobs,
                                j,
                                FailureKind::WorkerLost,
                                format!("worker process died {lost} time(s) evaluating this point"),
                                Some(id),
                                on_attempt,
                                &mut done,
                            );
                        }
                        // else: transparent re-dispatch — no attempt is
                        // consumed, because the in-process backend has no
                        // equivalent failure and determinism demands both
                        // backends observe the same values.
                    }
                }
            }
        }

        Ok(jobs
            .into_iter()
            .map(|job| {
                job.verdict
                    // audit:allow(panic-safety): the loop above only exits once every job holds a verdict
                    .expect("evaluate_batch loop left a job unresolved")
            })
            .collect())
    }
}

impl Drop for Broker {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for slot in &mut self.slots {
            if let Some(conn) = slot.conn.as_mut() {
                // audit:allow(swallowed-result): courtesy frame in Drop — the kill below is the enforcement
                let _ = write_frame(conn, &Frame::Shutdown);
            }
            if let Some(mut child) = slot.child.take() {
                // audit:allow(swallowed-result): the worker may already have exited — kill failing means there is nothing left to kill
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        // Unblock the acceptor's `incoming()` so it observes the flag.
        let _ = UnixStream::connect(&self.socket_path);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Maps wire stage names back onto the `&'static str` names the runtime
/// uses; stages the runtime does not know are dropped (they could only
/// come from a newer worker, which the identity check already rejects).
fn rebuild_stages(stage_ms: &[(String, u64)]) -> StageTimes {
    const KNOWN: [&str; 4] = ["instantiate", "profile", "error", "evaluate"];
    let mut stages = StageTimes::new();
    for (name, ms_bits) in stage_ms {
        if let Some(known) = KNOWN.iter().find(|k| *k == name) {
            let ms = f64::from_bits(*ms_bits);
            if ms.is_finite() && ms >= 0.0 {
                stages.record(known, Duration::from_secs_f64(ms / 1e3));
            }
        }
    }
    stages
}

/// Per-connection thread: validates the worker's `Hello`, then pumps its
/// frames into the event channel until the socket closes.
fn handshake_and_read(mut conn: UnixStream, expect_ctx: u64, tx: &mpsc::Sender<Msg>) {
    let reject = |reason: String| {
        let _ = tx.send(Msg::Rejected { reason });
    };
    // Without the handshake deadline a silent client would pin this
    // thread forever; if the socket cannot take a timeout, reject it.
    if let Err(e) = conn.set_read_timeout(Some(Duration::from_secs(10))) {
        return reject(format!("cannot arm the handshake timeout: {e}"));
    }
    let hello = match read_frame(&mut conn) {
        Ok(f) => f,
        Err(ProtocolError::VersionMismatch { got, want }) => {
            return reject(format!(
                "worker handshake failed: it speaks protocol v{got}, this broker speaks \
                 v{want} — rebuild or repoint the worker binary"
            ));
        }
        Err(ProtocolError::Closed) => return, // e.g. the Drop unblock probe
        Err(e) => return reject(format!("worker handshake failed: {e}")),
    };
    let Frame::Hello {
        protocol_version,
        ctx_fingerprint,
        identity,
        worker_id,
    } = hello
    else {
        return reject("worker opened with a non-Hello frame".to_string());
    };
    if protocol_version != PROTOCOL_VERSION {
        return reject(format!(
            "worker {worker_id} negotiated protocol v{protocol_version}, this broker \
             speaks v{PROTOCOL_VERSION} — rebuild or repoint the worker binary"
        ));
    }
    if identity != worker_identity() {
        return reject(format!(
            "worker {worker_id} was built from different evaluation code (identity \
             {identity:#018x}, expected {:#018x}) — a stale datamime-worker on PATH \
             cannot serve this run",
            worker_identity()
        ));
    }
    if ctx_fingerprint != expect_ctx {
        return reject(format!(
            "worker {worker_id} derived context fingerprint {ctx_fingerprint:#018x}, \
             the broker expects {expect_ctx:#018x} — its command line does not \
             reproduce this run's evaluation context"
        ));
    }
    if write_frame(
        &mut conn,
        &Frame::HelloAck {
            protocol_version: PROTOCOL_VERSION,
        },
    )
    .is_err()
    {
        return;
    }
    // The worker connection must outlive the handshake deadline: a
    // leftover 10s timeout would sever an idle worker mid-run.
    if let Err(e) = conn.set_read_timeout(None) {
        return reject(format!("cannot disarm the handshake timeout: {e}"));
    }
    let writer = match conn.try_clone() {
        Ok(w) => w,
        Err(e) => return reject(format!("cannot clone worker {worker_id} socket: {e}")),
    };
    if tx
        .send(Msg::Ready {
            id: worker_id,
            conn: writer,
        })
        .is_err()
    {
        return;
    }
    loop {
        match read_frame(&mut conn) {
            Ok(frame @ (Frame::EvalOk { .. } | Frame::EvalErr { .. })) => {
                if tx
                    .send(Msg::Result {
                        id: worker_id,
                        frame,
                    })
                    .is_err()
                {
                    return;
                }
            }
            Ok(Frame::HeartbeatAck { .. }) => {}
            Ok(_) | Err(_) => {
                let _ = tx.send(Msg::Closed { id: worker_id });
                return;
            }
        }
    }
}
