//! The worker: the process-side half of the distributed evaluation
//! plane.
//!
//! A worker binary parses its command line, rebuilds the evaluation
//! context (generator, machine config, profiling config), derives the
//! same context fingerprint the broker computed, and calls [`serve`]
//! with a closure that evaluates one point. [`serve`] owns the whole
//! protocol conversation: `Hello`/`HelloAck` negotiation, the
//! `Eval` → `EvalOk`/`EvalErr` loop with panic containment, heartbeat
//! echoes, and clean shutdown.
//!
//! Everything scheduling-related (deadlines, retries, re-dispatch) lives
//! broker-side; the worker is a pure request server, which is what makes
//! the determinism argument in DESIGN.md §8 short.

use crate::protocol::{
    read_frame, worker_identity, write_frame, Frame, ProtocolError, PROTOCOL_VERSION,
};
use datamime_runtime::supervisor::FailureKind;
use datamime_runtime::telemetry::StageTimes;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// How a worker process introduces itself to the broker.
///
/// `protocol_version` and `identity` default to this build's real values;
/// tests override them to exercise the broker's negotiation rejects.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Broker socket path (`--socket`).
    pub socket: PathBuf,
    /// Broker-assigned incarnation id (`--worker-id`).
    pub worker_id: u64,
    /// Fingerprint of the evaluation context this worker rebuilt.
    pub ctx_fingerprint: u64,
    /// Protocol version to claim in `Hello`.
    pub protocol_version: u16,
    /// Worker-binary identity to claim in `Hello`.
    pub identity: u64,
}

impl WorkerConfig {
    /// A config claiming this build's true protocol version and identity.
    pub fn new(socket: PathBuf, worker_id: u64, ctx_fingerprint: u64) -> Self {
        WorkerConfig {
            socket,
            worker_id,
            ctx_fingerprint,
            protocol_version: PROTOCOL_VERSION,
            identity: worker_identity(),
        }
    }
}

/// One evaluation request, as decoded from an `Eval` frame.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRequest {
    /// Global evaluation index.
    pub index: u64,
    /// Supervision attempt number (0-based).
    pub attempt: u32,
    /// Dispatch count for this point, including transparent
    /// re-dispatches after worker deaths — fault plans key `KillWorker`
    /// on it.
    pub dispatch: u32,
    /// The unit-cube point, reconstructed bit-exactly from the wire.
    pub unit: Vec<f64>,
}

/// Connects to the broker, negotiates, and serves evaluation requests
/// until `Shutdown` or the broker hangs up.
///
/// `eval` computes the objective for one request, recording stage
/// timings as it goes. Panics inside `eval` are contained and reported
/// as `EvalErr` frames; a non-finite return is classified worker-side
/// exactly like the in-process supervisor would (`nonfinite`, detail
/// `objective evaluated to {value}`).
///
/// # Errors
///
/// Returns a message when the socket cannot be reached or the broker
/// rejects the handshake (version/identity/context skew).
pub fn serve<F>(cfg: &WorkerConfig, mut eval: F) -> Result<(), String>
where
    F: FnMut(&EvalRequest, &mut StageTimes) -> f64,
{
    let mut conn = UnixStream::connect(&cfg.socket)
        .map_err(|e| format!("cannot reach broker socket {:?}: {e}", cfg.socket))?;
    write_frame(
        &mut conn,
        &Frame::Hello {
            protocol_version: cfg.protocol_version,
            ctx_fingerprint: cfg.ctx_fingerprint,
            identity: cfg.identity,
            worker_id: cfg.worker_id,
        },
    )
    .map_err(|e| format!("handshake write failed: {e}"))?;
    match read_frame(&mut conn) {
        Ok(Frame::HelloAck { .. }) => {}
        Ok(_) => return Err("broker answered Hello with an unexpected frame".to_string()),
        Err(ProtocolError::Closed) => {
            return Err(
                "broker rejected the handshake (protocol, identity, or context mismatch) \
                 and closed the connection"
                    .to_string(),
            )
        }
        Err(e) => return Err(format!("handshake read failed: {e}")),
    }

    loop {
        let frame = match read_frame(&mut conn) {
            Ok(f) => f,
            Err(ProtocolError::Closed) => return Ok(()),
            Err(e) => return Err(format!("broker connection failed: {e}")),
        };
        let reply = match frame {
            Frame::Shutdown => return Ok(()),
            Frame::Heartbeat { seq } => Frame::HeartbeatAck { seq },
            Frame::Eval {
                index,
                attempt,
                dispatch,
                unit_bits,
            } => {
                let req = EvalRequest {
                    index,
                    attempt,
                    dispatch,
                    unit: unit_bits.iter().copied().map(f64::from_bits).collect(),
                };
                answer(&req, &mut eval)
            }
            _ => return Err("broker sent a frame only workers send".to_string()),
        };
        if let Err(e) = write_frame(&mut conn, &reply) {
            return Err(format!("broker connection failed: {e}"));
        }
    }
}

/// Runs one evaluation under panic containment and classifies the
/// outcome into the frame the broker expects.
fn answer<F>(req: &EvalRequest, eval: &mut F) -> Frame
where
    F: FnMut(&EvalRequest, &mut StageTimes) -> f64,
{
    let mut stages = StageTimes::new();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| eval(req, &mut stages)));
    match result {
        Ok(value) if value.is_finite() => Frame::EvalOk {
            index: req.index,
            error_bits: value.to_bits(),
            stage_ms: stages
                .to_millis()
                .into_iter()
                .map(|(name, ms)| (name, ms.to_bits()))
                .collect(),
        },
        Ok(value) => Frame::EvalErr {
            index: req.index,
            kind: FailureKind::NonFinite.tag().to_string(),
            detail: format!("objective evaluated to {value}"),
        },
        Err(payload) => Frame::EvalErr {
            index: req.index,
            kind: FailureKind::Panic.tag().to_string(),
            detail: panic_message(payload.as_ref()),
        },
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
