//! Versioned, length-prefixed, CRC-checked binary frame protocol spoken
//! between the broker and its workers over Unix domain sockets.
//!
//! Wire layout of one frame (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic        0xD157_F4A3
//! 4       2     version      PROTOCOL_VERSION of the sender
//! 6       1     kind         frame discriminant (see `Frame`)
//! 7       1     reserved     must be zero
//! 8       4     payload_len  bytes of payload that follow
//! 12      n     payload      kind-specific encoding
//! 12+n    4     crc32        IEEE CRC-32 of the payload bytes
//! ```
//!
//! Floats cross the wire as raw IEEE-754 bit patterns (`f64::to_bits`),
//! never as decimal text, so an evaluation result decodes to exactly the
//! f64 the worker computed — a prerequisite for the bit-identical
//! determinism guarantee of the distributed backend (DESIGN.md §8).
//!
//! Version negotiation happens twice: the frame header carries the
//! sender's protocol version and [`read_frame`] rejects a mismatch
//! outright, and the `Hello` payload repeats it alongside the context
//! fingerprint and worker-binary identity so the broker can reject a
//! skewed worker with a clear error even if the header happened to agree.

use datamime_runtime::fingerprint;
use std::io::{Read, Write};

/// Protocol version spoken by this build. Bump on any change to the
/// frame header or payload encodings.
pub const PROTOCOL_VERSION: u16 = 1;

/// Manually-bumped revision of the evaluation semantics carried over the
/// wire (stage naming, unit encoding, error classification). Folded into
/// [`worker_identity`] so a worker binary built from different evaluation
/// code can never satisfy a broker expecting this build's semantics.
pub const WIRE_REVISION: u32 = 2;

/// Frame magic ("DIST", mangled). A connection that opens with anything
/// else is not speaking this protocol.
pub const FRAME_MAGIC: u32 = 0xD157_F4A3;

/// Upper bound on the payload of a single frame. Evaluation points are a
/// handful of f64s and stage tables are a few entries, so anything near
/// this limit indicates a corrupt or hostile peer rather than real data.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Fingerprint identifying the worker binary's evaluation semantics:
/// protocol version, wire revision, and the crate version baked in at
/// compile time. Both ends compute it from their own build; the broker
/// rejects a `Hello` whose identity differs from its own.
pub fn worker_identity() -> u64 {
    let mut pkg = 0xcbf2_9ce4_8422_2325u64;
    for b in env!("CARGO_PKG_VERSION").bytes() {
        pkg ^= u64::from(b);
        pkg = pkg.wrapping_mul(0x100_0000_01b3);
    }
    fingerprint(&[u64::from(PROTOCOL_VERSION), u64::from(WIRE_REVISION), pkg])
}

/// One message on the broker–worker wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → broker, first frame after connecting: identifies the
    /// worker and what it was built to evaluate.
    Hello {
        /// Protocol version the worker speaks.
        protocol_version: u16,
        /// Evaluation-context fingerprint the worker derived from its
        /// command line (must match the broker's).
        ctx_fingerprint: u64,
        /// [`worker_identity`] of the worker binary.
        identity: u64,
        /// Slot id the broker assigned via `--worker-id`.
        worker_id: u64,
    },
    /// Broker → worker: handshake accepted; evaluation requests follow.
    HelloAck {
        /// Protocol version the broker speaks.
        protocol_version: u16,
    },
    /// Broker → worker: evaluate one candidate point.
    Eval {
        /// Global evaluation index (journal/observation order).
        index: u64,
        /// Supervision attempt number (0-based), for fault plans.
        attempt: u32,
        /// Dispatch number (0-based): how many times this point has been
        /// handed to a worker, including transparent re-dispatches after
        /// a worker died. Lets a fault plan kill only the first dispatch.
        dispatch: u32,
        /// Candidate point in `[0,1]^d`, as raw f64 bits.
        unit_bits: Vec<u64>,
    },
    /// Worker → broker: evaluation finished with a finite objective.
    EvalOk {
        /// Echoed evaluation index.
        index: u64,
        /// Objective value as raw f64 bits.
        error_bits: u64,
        /// Per-stage wall-clock milliseconds, as raw f64 bits.
        stage_ms: Vec<(String, u64)>,
    },
    /// Worker → broker: evaluation failed (panic caught in the worker,
    /// or a non-finite objective).
    EvalErr {
        /// Echoed evaluation index.
        index: u64,
        /// [`datamime_runtime::FailureKind`] tag, e.g. `"panic"`.
        kind: String,
        /// Human-readable failure detail.
        detail: String,
    },
    /// Broker → worker liveness probe.
    Heartbeat {
        /// Sequence number echoed by the ack.
        seq: u64,
    },
    /// Worker → broker reply to [`Frame::Heartbeat`].
    HeartbeatAck {
        /// Echoed sequence number.
        seq: u64,
    },
    /// Broker → worker: exit cleanly. No reply.
    Shutdown,
    /// Client → serve daemon: submit one search job. `spec` is the
    /// serialized job spec (`datamime::jobspec` line format). Answered by
    /// [`Frame::JobAck`] or [`Frame::ServeErr`].
    SubmitJob {
        /// Serialized job spec.
        spec: String,
    },
    /// Serve daemon → client: the job was accepted (or the cancel took
    /// effect) under this id.
    JobAck {
        /// Daemon-assigned job id (e.g. `j0001`).
        job: String,
    },
    /// Client → serve daemon: report one job's live status.
    JobStatusReq {
        /// Job id to query.
        job: String,
    },
    /// Serve daemon → client: one job's live status.
    JobStatusResp {
        /// Echoed job id.
        job: String,
        /// Lifecycle state tag (`submitted`, `running`, `done`,
        /// `cancelled`, `failed`).
        state: String,
        /// Observations made so far (replays and cache hits included).
        evals: u64,
        /// Total iterations the job will run.
        iterations: u64,
        /// Best error so far as raw f64 bits (`f64::INFINITY` bits until
        /// the first observation).
        best_error_bits: u64,
    },
    /// Client → serve daemon: fetch a finished job's result.
    JobResultReq {
        /// Job id to fetch.
        job: String,
    },
    /// Serve daemon → client: a finished job's result.
    JobResultResp {
        /// Echoed job id.
        job: String,
        /// Best error as raw f64 bits.
        best_error_bits: u64,
        /// Best unit-cube point as raw f64 bits.
        best_unit_bits: Vec<u64>,
        /// Path of the job's journal on the daemon's filesystem.
        journal: String,
    },
    /// Client → serve daemon: cancel one job. Answered by
    /// [`Frame::JobAck`].
    CancelJob {
        /// Job id to cancel.
        job: String,
    },
    /// Client → serve daemon: list all known jobs.
    ListJobsReq,
    /// Serve daemon → client: every known job as `(id, state)`.
    JobList {
        /// `(job id, state tag)` pairs in id order.
        jobs: Vec<(String, String)>,
    },
    /// Serve daemon → client: the request failed.
    ServeErr {
        /// Human-readable reason.
        detail: String,
    },
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::HelloAck { .. } => 2,
            Frame::Eval { .. } => 3,
            Frame::EvalOk { .. } => 4,
            Frame::EvalErr { .. } => 5,
            Frame::Heartbeat { .. } => 6,
            Frame::HeartbeatAck { .. } => 7,
            Frame::Shutdown => 8,
            Frame::SubmitJob { .. } => 9,
            Frame::JobAck { .. } => 10,
            Frame::JobStatusReq { .. } => 11,
            Frame::JobStatusResp { .. } => 12,
            Frame::JobResultReq { .. } => 13,
            Frame::JobResultResp { .. } => 14,
            Frame::CancelJob { .. } => 15,
            Frame::ListJobsReq => 16,
            Frame::JobList { .. } => 17,
            Frame::ServeErr { .. } => 18,
        }
    }
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum ProtocolError {
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// An I/O error (including mid-frame EOF) from the underlying socket.
    Io(std::io::Error),
    /// The first four bytes were not [`FRAME_MAGIC`].
    BadMagic(u32),
    /// The frame header advertised a protocol version other than ours.
    VersionMismatch {
        /// Version the peer sent.
        got: u16,
        /// Version this build speaks.
        want: u16,
    },
    /// The payload length exceeded [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The payload checksum did not match its contents.
    CrcMismatch {
        /// Checksum carried by the frame.
        got: u32,
        /// Checksum computed over the received payload.
        want: u32,
    },
    /// The frame kind byte was not a known discriminant.
    UnknownKind(u8),
    /// The payload was structurally invalid for its kind.
    Malformed(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Closed => write!(f, "peer closed the connection"),
            ProtocolError::Io(e) => write!(f, "socket error: {e}"),
            ProtocolError::BadMagic(m) => {
                write!(
                    f,
                    "bad frame magic {m:#010x} (expected {FRAME_MAGIC:#010x})"
                )
            }
            ProtocolError::VersionMismatch { got, want } => write!(
                f,
                "protocol version mismatch: peer speaks v{got}, this build speaks v{want}"
            ),
            ProtocolError::Oversized(n) => {
                write!(
                    f,
                    "frame payload of {n} bytes exceeds the {MAX_PAYLOAD}-byte limit"
                )
            }
            ProtocolError::CrcMismatch { got, want } => {
                write!(
                    f,
                    "payload CRC mismatch: frame says {got:#010x}, contents hash to {want:#010x}"
                )
            }
            ProtocolError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            ProtocolError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtocolError::Malformed("frame truncated mid-payload")
        } else {
            ProtocolError::Io(e)
        }
    }
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of `data` (the polynomial used by zlib/PNG/Ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---- payload primitives ----------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked reader over a payload slice.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ProtocolError::Malformed("payload shorter than declared"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn str(&mut self) -> Result<String, ProtocolError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| ProtocolError::Malformed("string field is not UTF-8"))
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed("trailing bytes after payload"))
        }
    }
}

// ---- encode ----------------------------------------------------------

fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut p = Vec::new();
    match frame {
        Frame::Hello {
            protocol_version,
            ctx_fingerprint,
            identity,
            worker_id,
        } => {
            put_u16(&mut p, *protocol_version);
            put_u64(&mut p, *ctx_fingerprint);
            put_u64(&mut p, *identity);
            put_u64(&mut p, *worker_id);
        }
        Frame::HelloAck { protocol_version } => put_u16(&mut p, *protocol_version),
        Frame::Eval {
            index,
            attempt,
            dispatch,
            unit_bits,
        } => {
            put_u64(&mut p, *index);
            put_u32(&mut p, *attempt);
            put_u32(&mut p, *dispatch);
            put_u32(&mut p, unit_bits.len() as u32);
            for &b in unit_bits {
                put_u64(&mut p, b);
            }
        }
        Frame::EvalOk {
            index,
            error_bits,
            stage_ms,
        } => {
            put_u64(&mut p, *index);
            put_u64(&mut p, *error_bits);
            put_u32(&mut p, stage_ms.len() as u32);
            for (name, ms_bits) in stage_ms {
                put_str(&mut p, name);
                put_u64(&mut p, *ms_bits);
            }
        }
        Frame::EvalErr {
            index,
            kind,
            detail,
        } => {
            put_u64(&mut p, *index);
            put_str(&mut p, kind);
            put_str(&mut p, detail);
        }
        Frame::Heartbeat { seq } | Frame::HeartbeatAck { seq } => put_u64(&mut p, *seq),
        Frame::Shutdown | Frame::ListJobsReq => {}
        Frame::SubmitJob { spec } => put_str(&mut p, spec),
        Frame::JobAck { job }
        | Frame::JobStatusReq { job }
        | Frame::JobResultReq { job }
        | Frame::CancelJob { job } => put_str(&mut p, job),
        Frame::JobStatusResp {
            job,
            state,
            evals,
            iterations,
            best_error_bits,
        } => {
            put_str(&mut p, job);
            put_str(&mut p, state);
            put_u64(&mut p, *evals);
            put_u64(&mut p, *iterations);
            put_u64(&mut p, *best_error_bits);
        }
        Frame::JobResultResp {
            job,
            best_error_bits,
            best_unit_bits,
            journal,
        } => {
            put_str(&mut p, job);
            put_u64(&mut p, *best_error_bits);
            put_u32(&mut p, best_unit_bits.len() as u32);
            for &b in best_unit_bits {
                put_u64(&mut p, b);
            }
            put_str(&mut p, journal);
        }
        Frame::JobList { jobs } => {
            put_u32(&mut p, jobs.len() as u32);
            for (job, state) in jobs {
                put_str(&mut p, job);
                put_str(&mut p, state);
            }
        }
        Frame::ServeErr { detail } => put_str(&mut p, detail),
    }
    p
}

/// Serializes `frame` to its complete wire representation.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = encode_payload(frame);
    let mut out = Vec::with_capacity(16 + payload.len());
    put_u32(&mut out, FRAME_MAGIC);
    put_u16(&mut out, PROTOCOL_VERSION);
    out.push(frame.kind());
    out.push(0); // reserved
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    put_u32(&mut out, crc32(&payload));
    out
}

/// Writes one frame to `w` and flushes it.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), ProtocolError> {
    let bytes = encode_frame(frame);
    w.write_all(&bytes).map_err(ProtocolError::Io)?;
    w.flush().map_err(ProtocolError::Io)?;
    Ok(())
}

// ---- decode ----------------------------------------------------------

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame, ProtocolError> {
    let mut c = Cur::new(payload);
    let frame = match kind {
        1 => Frame::Hello {
            protocol_version: c.u16()?,
            ctx_fingerprint: c.u64()?,
            identity: c.u64()?,
            worker_id: c.u64()?,
        },
        2 => Frame::HelloAck {
            protocol_version: c.u16()?,
        },
        3 => {
            let index = c.u64()?;
            let attempt = c.u32()?;
            let dispatch = c.u32()?;
            let n = c.u32()? as usize;
            if n > MAX_PAYLOAD as usize / 8 {
                return Err(ProtocolError::Malformed("unit dimension too large"));
            }
            let mut unit_bits = Vec::with_capacity(n);
            for _ in 0..n {
                unit_bits.push(c.u64()?);
            }
            Frame::Eval {
                index,
                attempt,
                dispatch,
                unit_bits,
            }
        }
        4 => {
            let index = c.u64()?;
            let error_bits = c.u64()?;
            let n = c.u32()? as usize;
            if n > 1024 {
                return Err(ProtocolError::Malformed("stage table too large"));
            }
            let mut stage_ms = Vec::with_capacity(n);
            for _ in 0..n {
                let name = c.str()?;
                let ms_bits = c.u64()?;
                stage_ms.push((name, ms_bits));
            }
            Frame::EvalOk {
                index,
                error_bits,
                stage_ms,
            }
        }
        5 => Frame::EvalErr {
            index: c.u64()?,
            kind: c.str()?,
            detail: c.str()?,
        },
        6 => Frame::Heartbeat { seq: c.u64()? },
        7 => Frame::HeartbeatAck { seq: c.u64()? },
        8 => Frame::Shutdown,
        9 => Frame::SubmitJob { spec: c.str()? },
        10 => Frame::JobAck { job: c.str()? },
        11 => Frame::JobStatusReq { job: c.str()? },
        12 => Frame::JobStatusResp {
            job: c.str()?,
            state: c.str()?,
            evals: c.u64()?,
            iterations: c.u64()?,
            best_error_bits: c.u64()?,
        },
        13 => Frame::JobResultReq { job: c.str()? },
        14 => {
            let job = c.str()?;
            let best_error_bits = c.u64()?;
            let n = c.u32()? as usize;
            if n > MAX_PAYLOAD as usize / 8 {
                return Err(ProtocolError::Malformed("unit dimension too large"));
            }
            let mut best_unit_bits = Vec::with_capacity(n);
            for _ in 0..n {
                best_unit_bits.push(c.u64()?);
            }
            Frame::JobResultResp {
                job,
                best_error_bits,
                best_unit_bits,
                journal: c.str()?,
            }
        }
        15 => Frame::CancelJob { job: c.str()? },
        16 => Frame::ListJobsReq,
        17 => {
            let n = c.u32()? as usize;
            if n > 4096 {
                return Err(ProtocolError::Malformed("job list too large"));
            }
            let mut jobs = Vec::with_capacity(n);
            for _ in 0..n {
                let job = c.str()?;
                let state = c.str()?;
                jobs.push((job, state));
            }
            Frame::JobList { jobs }
        }
        18 => Frame::ServeErr { detail: c.str()? },
        other => return Err(ProtocolError::UnknownKind(other)),
    };
    c.finish()?;
    Ok(frame)
}

/// Reads one complete frame from `r`, validating magic, version, size,
/// and checksum. Returns [`ProtocolError::Closed`] on a clean EOF at a
/// frame boundary.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, ProtocolError> {
    let mut header = [0u8; 12];
    // Distinguish a clean close (0 bytes) from a mid-header truncation.
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(ProtocolError::Closed),
            Ok(0) => return Err(ProtocolError::Malformed("frame truncated mid-header")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    if magic != FRAME_MAGIC {
        return Err(ProtocolError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::VersionMismatch {
            got: version,
            want: PROTOCOL_VERSION,
        });
    }
    let kind = header[6];
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)?;
    let got = u32::from_le_bytes(crc_bytes);
    let want = crc32(&payload);
    if got != want {
        return Err(ProtocolError::CrcMismatch { got, want });
    }
    decode_payload(kind, &payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                protocol_version: PROTOCOL_VERSION,
                ctx_fingerprint: 0xDEAD_BEEF_CAFE_F00D,
                identity: worker_identity(),
                worker_id: 3,
            },
            Frame::HelloAck {
                protocol_version: PROTOCOL_VERSION,
            },
            Frame::Eval {
                index: 42,
                attempt: 1,
                dispatch: 2,
                unit_bits: vec![0.25f64.to_bits(), 0.5f64.to_bits(), (-0.0f64).to_bits()],
            },
            Frame::EvalOk {
                index: 42,
                error_bits: 1.5e-3f64.to_bits(),
                stage_ms: vec![
                    ("instantiate".to_string(), 0.125f64.to_bits()),
                    ("profile".to_string(), 7.75f64.to_bits()),
                ],
            },
            Frame::EvalErr {
                index: 7,
                kind: "panic".to_string(),
                detail: "injected panic at evaluation 7".to_string(),
            },
            Frame::Heartbeat { seq: 99 },
            Frame::HeartbeatAck { seq: 99 },
            Frame::Shutdown,
            Frame::SubmitJob {
                spec: "workload=mem_fb iters=8 seed=7 backend=thread".to_string(),
            },
            Frame::JobAck {
                job: "job-0001".to_string(),
            },
            Frame::JobStatusReq {
                job: "job-0001".to_string(),
            },
            Frame::JobStatusResp {
                job: "job-0001".to_string(),
                state: "running".to_string(),
                evals: 17,
                iterations: 8,
                best_error_bits: 0.042f64.to_bits(),
            },
            Frame::JobResultReq {
                job: "job-0001".to_string(),
            },
            Frame::JobResultResp {
                job: "job-0001".to_string(),
                best_error_bits: 0.042f64.to_bits(),
                best_unit_bits: vec![0.125f64.to_bits(), 0.875f64.to_bits()],
                journal: "jobs/job-0001/journal.jsonl".to_string(),
            },
            Frame::CancelJob {
                job: "job-0002".to_string(),
            },
            Frame::ListJobsReq,
            Frame::JobList {
                jobs: vec![
                    ("job-0001".to_string(), "done".to_string()),
                    ("job-0002".to_string(), "cancelled".to_string()),
                ],
            },
            Frame::ServeErr {
                detail: "no such job: job-0099".to_string(),
            },
        ]
    }

    #[test]
    fn every_frame_kind_round_trips() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            let mut r = &bytes[..];
            let back = read_frame(&mut r).unwrap();
            assert_eq!(frame, back);
            assert!(r.is_empty(), "decoder consumed the whole frame");
        }
    }

    #[test]
    fn corrupting_any_payload_byte_is_caught_by_crc() {
        let frame = Frame::Eval {
            index: 5,
            attempt: 0,
            dispatch: 0,
            unit_bits: vec![0.75f64.to_bits()],
        };
        let clean = encode_frame(&frame);
        for i in 12..clean.len() - 4 {
            let mut bad = clean.clone();
            bad[i] ^= 0x40;
            let err = read_frame(&mut &bad[..]).unwrap_err();
            assert!(
                matches!(err, ProtocolError::CrcMismatch { .. }),
                "byte {i}: expected CrcMismatch, got {err}"
            );
        }
    }

    #[test]
    fn bad_magic_and_header_version_are_rejected() {
        let mut bytes = encode_frame(&Frame::Shutdown);
        bytes[0] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut &bytes[..]).unwrap_err(),
            ProtocolError::BadMagic(_)
        ));

        let mut bytes = encode_frame(&Frame::Shutdown);
        bytes[4] = bytes[4].wrapping_add(1);
        match read_frame(&mut &bytes[..]).unwrap_err() {
            ProtocolError::VersionMismatch { got, want } => {
                assert_eq!(want, PROTOCOL_VERSION);
                assert_ne!(got, want);
            }
            other => panic!("expected VersionMismatch, got {other}"),
        }
    }

    #[test]
    fn truncated_and_oversized_frames_are_rejected() {
        let bytes = encode_frame(&Frame::Heartbeat { seq: 1 });
        for cut in 1..bytes.len() {
            let err = read_frame(&mut &bytes[..cut]).unwrap_err();
            assert!(
                !matches!(err, ProtocolError::Closed),
                "cut at {cut} must not look like a clean close"
            );
        }
        assert!(matches!(
            read_frame(&mut &[][..]).unwrap_err(),
            ProtocolError::Closed
        ));

        let mut bytes = encode_frame(&Frame::Shutdown);
        let huge = (MAX_PAYLOAD + 1).to_le_bytes();
        bytes[8..12].copy_from_slice(&huge);
        assert!(matches!(
            read_frame(&mut &bytes[..]).unwrap_err(),
            ProtocolError::Oversized(_)
        ));
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        // Hand-build a Shutdown frame with one stray payload byte and a
        // valid CRC over it: structurally sound, semantically malformed.
        let payload = [0xABu8];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        bytes.push(8);
        bytes.push(0);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        assert!(matches!(
            read_frame(&mut &bytes[..]).unwrap_err(),
            ProtocolError::Malformed(_)
        ));
    }

    #[test]
    fn crc32_matches_the_ieee_reference_vector() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn worker_identity_is_stable_within_a_build() {
        assert_eq!(worker_identity(), worker_identity());
        assert_ne!(worker_identity(), 0);
    }
}
