//! Test worker for the datamime-dist integration tests.
//!
//! Serves a cheap, deterministic quadratic objective so the broker
//! machinery (negotiation, dispatch, deadlines, crash respawn) can be
//! exercised without dragging the simulator in. The `--bad-*` flags make
//! it misrepresent itself in `Hello` to trigger the broker's negotiation
//! rejects, and `--fault` accepts a `FaultPlan` spec (including `kill`
//! faults, honored by aborting the whole process).

#![forbid(unsafe_code)]
use datamime_dist::{serve, WorkerConfig};
use datamime_runtime::supervisor::CancelToken;
use datamime_runtime::FaultPlan;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn main() {
    if let Err(e) = run() {
        eprintln!("dist-worker-stub: {e}");
        std::process::exit(2);
    }
}

fn run() -> Result<(), String> {
    let mut socket: Option<PathBuf> = None;
    let mut worker_id: u64 = 0;
    let mut ctx: u64 = 0;
    let mut bad_version = false;
    let mut bad_identity = false;
    let mut plan = FaultPlan::new();
    let mut stall_connect_ms: u64 = 0;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--worker-id" => {
                worker_id = value("--worker-id")?
                    .parse()
                    .map_err(|e| format!("bad --worker-id: {e}"))?;
            }
            "--ctx" => {
                ctx = value("--ctx")?
                    .parse()
                    .map_err(|e| format!("bad --ctx: {e}"))?;
            }
            "--fault" => plan = FaultPlan::from_spec(&value("--fault")?)?,
            "--stall-connect-ms" => {
                stall_connect_ms = value("--stall-connect-ms")?
                    .parse()
                    .map_err(|e| format!("bad --stall-connect-ms: {e}"))?;
            }
            "--bad-version" => bad_version = true,
            "--bad-identity" => bad_identity = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let socket = socket.ok_or("--socket is required")?;

    if stall_connect_ms > 0 {
        std::thread::sleep(Duration::from_millis(stall_connect_ms));
    }

    let mut cfg = WorkerConfig::new(socket, worker_id, ctx);
    if bad_version {
        cfg.protocol_version = cfg.protocol_version.wrapping_add(1);
    }
    if bad_identity {
        cfg.identity ^= 0xDEAD_BEEF;
    }

    let token = CancelToken::new();
    serve(&cfg, |req, stages| {
        let index = req.index as usize;
        if plan.kills(index, req.dispatch) {
            // Simulates a worker crash: SIGABRT, no unwinding, no reply.
            std::process::abort();
        }
        if let Some(injected) = plan.apply(index, req.attempt, &token) {
            return injected;
        }
        let start = Instant::now();
        let value = objective(&req.unit);
        stages.record("evaluate", start.elapsed());
        value
    })
}

/// A deterministic quadratic bowl: pure function of the unit point, so
/// every worker (and the in-process backend) computes identical bits.
fn objective(unit: &[f64]) -> f64 {
    unit.iter()
        .enumerate()
        .map(|(i, x)| {
            let target = 0.25 * (i as f64 + 1.0);
            (x - target) * (x - target)
        })
        .sum()
}
