//! Out-of-process distributed evaluation plane for the Datamime search
//! runtime.
//!
//! The crate has three layers:
//!
//! - [`protocol`] — the versioned, length-prefixed, CRC-checked binary
//!   frame codec spoken over Unix domain sockets between the broker and
//!   its workers;
//! - [`broker`] — the broker side: spawns `datamime-worker` processes,
//!   negotiates the protocol, dispatches evaluation points, enforces
//!   deadlines by SIGKILL, respawns crashed workers under a bounded
//!   restart budget, and commits observations in deterministic batch
//!   order. Implements [`datamime_runtime::Backend`] so the executor can
//!   drive it exactly like the in-process thread pool;
//! - [`worker`] — the worker side: a small serve loop a worker binary
//!   runs after connecting back to the broker's socket.
//!
//! Determinism: an evaluation is a pure function of `(unit, context)`;
//! floats cross the wire as raw IEEE-754 bits; the broker returns
//! verdicts in job order and all fault/memo bookkeeping stays on the
//! engine thread — so results are bit-identical to the in-process
//! backend for any worker count. See DESIGN.md §8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
pub mod protocol;
pub mod worker;

pub use broker::{Broker, BrokerConfig};
pub use protocol::{
    read_frame, worker_identity, write_frame, Frame, ProtocolError, PROTOCOL_VERSION,
};
pub use worker::{serve, EvalRequest, WorkerConfig};
