//! Broker/worker integration tests, driven through the `dist-worker-stub`
//! test binary (built by cargo alongside this test and located via
//! `CARGO_BIN_EXE_dist-worker-stub`).

use datamime_dist::{
    read_frame, write_frame, Broker, BrokerConfig, Frame, WorkerConfig, PROTOCOL_VERSION,
};
use datamime_runtime::supervisor::{FailPolicy, FailureKind};
use datamime_runtime::{Backend, FaultPlan, InjectedFault};
use std::path::PathBuf;
use std::time::Duration;

fn stub_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_dist-worker-stub"))
}

/// The stub's objective, duplicated so tests can assert exact bits.
fn objective(unit: &[f64]) -> f64 {
    unit.iter()
        .enumerate()
        .map(|(i, x)| {
            let target = 0.25 * (i as f64 + 1.0);
            (x - target) * (x - target)
        })
        .sum()
}

fn base_cfg(workers: usize) -> BrokerConfig {
    let mut cfg = BrokerConfig::new(stub_bin(), workers);
    cfg.seed = 42;
    cfg
}

fn batch(n: usize) -> Vec<(usize, Vec<f64>)> {
    (0..n)
        .map(|i| (i, vec![0.1 + 0.07 * i as f64, 0.9 - 0.05 * i as f64]))
        .collect()
}

#[test]
fn happy_path_returns_exact_bits_in_job_order() {
    let mut broker = Broker::start(base_cfg(2)).expect("broker start");
    let jobs = batch(5);
    let out = broker
        .evaluate_batch(&jobs, &mut |a| panic!("unexpected failed attempt: {a:?}"))
        .expect("batch");
    assert_eq!(out.len(), jobs.len());
    for (verdict, (_, unit)) in out.iter().zip(&jobs) {
        assert_eq!(verdict.error.to_bits(), objective(unit).to_bits());
        assert!(verdict.fault.is_none());
        assert!(verdict.worker.is_some(), "proc verdicts carry a worker id");
    }
}

#[test]
fn version_skewed_worker_is_rejected_with_a_clear_error_not_a_hang() {
    let mut cfg = base_cfg(1);
    cfg.worker_args = vec!["--bad-version".to_string()];
    cfg.restart_budget = 0;
    let mut broker = Broker::start(cfg).expect("broker start");
    let err = broker
        .evaluate_batch(&batch(1), &mut |_| {})
        .expect_err("skewed worker must fail the batch");
    assert!(
        err.contains("protocol") && err.contains("rebuild or repoint"),
        "unhelpful version-skew error: {err}"
    );
}

#[test]
fn identity_skewed_worker_is_rejected() {
    let mut cfg = base_cfg(1);
    cfg.worker_args = vec!["--bad-identity".to_string()];
    cfg.restart_budget = 0;
    let mut broker = Broker::start(cfg).expect("broker start");
    let err = broker
        .evaluate_batch(&batch(1), &mut |_| {})
        .expect_err("identity-skewed worker must fail the batch");
    assert!(err.contains("identity"), "unhelpful identity error: {err}");
}

#[test]
fn context_skewed_worker_is_rejected() {
    let mut cfg = base_cfg(1);
    cfg.ctx_fingerprint = 7;
    cfg.worker_args = vec!["--ctx".to_string(), "8".to_string()];
    cfg.restart_budget = 0;
    let mut broker = Broker::start(cfg).expect("broker start");
    let err = broker
        .evaluate_batch(&batch(1), &mut |_| {})
        .expect_err("context-skewed worker must fail the batch");
    assert!(
        err.contains("context fingerprint"),
        "unhelpful context error: {err}"
    );
}

#[test]
fn killed_worker_is_respawned_and_the_point_redispatched_transparently() {
    // Index 1 aborts the worker on its first dispatch only; the respawned
    // worker answers the re-dispatch. No supervision attempt is consumed.
    let mut cfg = base_cfg(2);
    cfg.worker_args = vec!["--fault".to_string(), "1:kill@1".to_string()];
    let mut attempts = 0usize;
    let jobs = batch(4);
    let mut broker = Broker::start(cfg).expect("broker start");
    let out = broker
        .evaluate_batch(&jobs, &mut |_| attempts += 1)
        .expect("batch survives the crash");
    assert_eq!(attempts, 0, "worker death must not consume retries");
    for (verdict, (_, unit)) in out.iter().zip(&jobs) {
        assert_eq!(verdict.error.to_bits(), objective(unit).to_bits());
        assert!(verdict.fault.is_none());
    }
}

#[test]
fn unbounded_kills_exhaust_the_redispatch_budget_into_worker_lost() {
    let mut cfg = base_cfg(1);
    cfg.worker_args = vec!["--fault".to_string(), "0:kill".to_string()];
    cfg.redispatch_budget = 2;
    cfg.restart_budget = 10;
    let mut broker = Broker::start(cfg).expect("broker start");
    let out = broker
        .evaluate_batch(&batch(1), &mut |_| {})
        .expect("penalized, not errored");
    let fault = out[0].fault.as_ref().expect("final verdict is a fault");
    assert_eq!(fault.kind, FailureKind::WorkerLost);
    assert_eq!(out[0].error, 1.0e9);
}

#[test]
fn injected_panic_retries_then_penalizes_like_the_supervisor() {
    let mut cfg = base_cfg(1);
    cfg.worker_args = vec!["--fault".to_string(), "0:panic".to_string()];
    cfg.max_retries = 1;
    cfg.backoff_base = Duration::from_millis(1);
    cfg.fail_policy = FailPolicy::Penalize;
    let mut seen = Vec::new();
    let mut broker = Broker::start(cfg).expect("broker start");
    let out = broker
        .evaluate_batch(&batch(1), &mut |a| seen.push((a.attempt, a.kind)))
        .expect("penalized, not errored");
    assert_eq!(seen, vec![(0, FailureKind::Panic), (1, FailureKind::Panic)]);
    let fault = out[0].fault.as_ref().expect("fault recorded");
    assert_eq!(fault.kind, FailureKind::Panic);
    assert!(fault.detail.contains("injected panic"));
    assert_eq!(fault.retries, 1);
}

#[test]
fn deadline_overrun_is_sigkilled_and_classified_timeout() {
    // First attempt stalls 30s; the broker SIGKILLs it at the 250ms
    // deadline and charges a Timeout attempt. The retry (attempt 1) is
    // past the fault window and succeeds.
    let mut cfg = base_cfg(1);
    cfg.worker_args = vec!["--fault".to_string(), "0:stall30000@1".to_string()];
    cfg.deadline = Some(Duration::from_millis(250));
    cfg.max_retries = 1;
    cfg.backoff_base = Duration::from_millis(1);
    let mut seen = Vec::new();
    let jobs = batch(1);
    let mut broker = Broker::start(cfg).expect("broker start");
    let out = broker
        .evaluate_batch(&jobs, &mut |a| seen.push((a.kind, a.detail.clone())))
        .expect("retry succeeds");
    assert_eq!(seen.len(), 1);
    assert_eq!(seen[0].0, FailureKind::Timeout);
    assert!(
        seen[0].1.contains("exceeded its") && seen[0].1.contains("deadline"),
        "supervisor-shaped detail expected, got: {}",
        seen[0].1
    );
    assert_eq!(out[0].error.to_bits(), objective(&jobs[0].1).to_bits());
    assert!(out[0].fault.is_none());
}

#[test]
fn backpressure_queues_without_reordering_commits_across_worker_counts() {
    // More outstanding points than workers: the broker must queue the
    // excess and still return verdicts in job order with identical bits
    // for every worker count.
    let jobs = batch(8);
    let reference: Vec<u64> = jobs.iter().map(|(_, u)| objective(u).to_bits()).collect();
    for workers in [1usize, 2, 4] {
        let mut broker = Broker::start(base_cfg(workers)).expect("broker start");
        let out = broker
            .evaluate_batch(&jobs, &mut |a| panic!("unexpected attempt: {a:?}"))
            .expect("batch");
        let got: Vec<u64> = out.iter().map(|v| v.error.to_bits()).collect();
        assert_eq!(got, reference, "worker count {workers} reordered commits");
    }
}

#[test]
fn fault_plan_spec_round_trips_across_the_process_boundary() {
    let plan = FaultPlan::new()
        .fail_first(1, InjectedFault::KillWorker, 1)
        .fail(3, InjectedFault::Nan);
    let respawned = FaultPlan::from_spec(&plan.to_spec()).expect("spec parses");
    assert_eq!(plan, respawned);
}

#[test]
fn worker_serve_answers_heartbeats_and_honors_shutdown() {
    // Drive serve() directly against a hand-rolled broker endpoint.
    let dir = std::env::temp_dir().join(format!("datamime-dist-hb-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("hb.sock");
    let _ = std::fs::remove_file(&sock);
    let listener = std::os::unix::net::UnixListener::bind(&sock).unwrap();

    let cfg = WorkerConfig::new(sock.clone(), 9, 0);
    let worker = std::thread::spawn(move || datamime_dist::serve(&cfg, |_, _| 0.5));

    let (mut conn, _) = listener.accept().unwrap();
    match read_frame(&mut conn).unwrap() {
        Frame::Hello {
            protocol_version,
            worker_id,
            ..
        } => {
            assert_eq!(protocol_version, PROTOCOL_VERSION);
            assert_eq!(worker_id, 9);
        }
        other => panic!("expected Hello, got {other:?}"),
    }
    write_frame(
        &mut conn,
        &Frame::HelloAck {
            protocol_version: PROTOCOL_VERSION,
        },
    )
    .unwrap();
    write_frame(&mut conn, &Frame::Heartbeat { seq: 7 }).unwrap();
    match read_frame(&mut conn).unwrap() {
        Frame::HeartbeatAck { seq } => assert_eq!(seq, 7),
        other => panic!("expected HeartbeatAck, got {other:?}"),
    }
    write_frame(&mut conn, &Frame::Shutdown).unwrap();
    worker.join().unwrap().expect("serve exits cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}
