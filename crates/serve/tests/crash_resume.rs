//! Crash-resume integration for `datamime-served`: submit two fixed-seed
//! jobs, SIGKILL the daemon while both are mid-run, restart it on the
//! same state root, and assert both jobs complete with results and
//! journals semantically identical to uninterrupted one-shot runs.
//!
//! `DATAMIME_TERM_SENTINEL` is set explicitly when spawning the daemon,
//! which disables the `/bin/sh` termination trampoline — the SIGKILL
//! therefore hits the real daemon process, exactly the crash the
//! manifest WAL and journals exist to survive.

use datamime::jobspec::JobSpec;
use datamime::profiler::profile_workload;
use datamime::search::{search_with_runtime, SearchOutcome};
use datamime::servectl::{JobState, ServeClient};
use datamime_runtime::{replay, TERM_SENTINEL_ENV};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Two tenants, same workload, different seeds — cheap enough to finish
/// in test time, long enough that the SIGKILL lands mid-run.
const SPECS: [&str; 2] = [
    "workload=mem-fb iters=24 seed=7 curves=false grid=4",
    "workload=mem-fb iters=24 seed=11 curves=false grid=4",
];

fn tmp_root() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("datamime-serve-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_daemon(root: &Path, sentinel: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_datamime-served"))
        .arg("--root")
        .arg(root)
        .env(TERM_SENTINEL_ENV, sentinel)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn datamime-served")
}

fn await_ready(client: &ServeClient) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while client.list().is_err() {
        assert!(Instant::now() < deadline, "daemon never became reachable");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The uninterrupted reference: the exact search the one-shot CLI would
/// run for this spec line, journaled to `journal`.
fn one_shot(spec_line: &str, journal: &Path) -> SearchOutcome {
    let spec = JobSpec::parse(spec_line).unwrap();
    let target = spec.target().unwrap();
    let cfg = spec.search_config().unwrap();
    let generator = spec.generator().unwrap();
    let mut opts = spec.runtime_options();
    opts.journal = Some(journal.to_path_buf());
    let profile = profile_workload(&target, &cfg.machine, &cfg.profiling);
    search_with_runtime(generator.as_ref(), &profile, &cfg, &opts).unwrap()
}

#[test]
fn sigkilled_daemon_resumes_all_jobs_to_identical_results() {
    let root = tmp_root();
    let sentinel = root.join("term.sentinel");
    let client = ServeClient::new(&root);

    let mut daemon = start_daemon(&root, &sentinel);
    await_ready(&client);
    let jobs: Vec<String> = SPECS
        .iter()
        .map(|s| client.submit_line(s).unwrap())
        .collect();

    // Let both jobs make real progress, then SIGKILL the daemon mid-run.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let statuses: Vec<_> = jobs.iter().map(|j| client.status(j).unwrap()).collect();
        assert!(
            statuses.iter().all(|s| !s.state.is_terminal()),
            "a job finished before the crash point — raise iters: {statuses:?}"
        );
        if statuses.iter().all(|s| s.evals >= 4) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "jobs made no progress before the crash point: {statuses:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    daemon.kill().unwrap();
    daemon.wait().unwrap();

    // Restart on the same root: the manifest replays and both in-flight
    // jobs resume from their journals.
    let mut daemon = start_daemon(&root, &sentinel);
    await_ready(&client);
    for job in &jobs {
        let status = client.wait(job, Duration::from_secs(600)).unwrap();
        assert_eq!(status.state, JobState::Done, "{job} after restart");
    }
    let resumed: Vec<_> = jobs.iter().map(|j| client.result(j).unwrap()).collect();

    let stats = client.stats().unwrap();
    let resumed_count = stats
        .iter()
        .find(|(name, _)| name == "jobs_resumed")
        .map_or(0, |(_, v)| *v);
    assert_eq!(resumed_count, 2, "both in-flight jobs resumed: {stats:?}");

    for ((spec, job), result) in SPECS.iter().zip(&jobs).zip(&resumed) {
        let ref_journal = root.join(format!("{job}.reference.jsonl"));
        let reference = one_shot(spec, &ref_journal);
        assert_eq!(
            result.best_error.to_bits(),
            reference.best_error.to_bits(),
            "{job}: best error after crash-resume"
        );
        let got: Vec<u64> = result.best_unit.iter().map(|u| u.to_bits()).collect();
        let want: Vec<u64> = reference
            .best_unit_params
            .iter()
            .map(|u| u.to_bits())
            .collect();
        assert_eq!(got, want, "{job}: best unit point after crash-resume");

        let daemon_journal = replay(&root.join(&result.journal)).unwrap();
        let ref_replay = replay(&ref_journal).unwrap();
        assert!(daemon_journal.complete, "{job}: journal records completion");
        assert_eq!(
            daemon_journal.evals.len(),
            ref_replay.evals.len(),
            "{job}: journal length"
        );
        for (a, b) in daemon_journal.evals.iter().zip(&ref_replay.evals) {
            assert!(
                a.semantic_eq(b),
                "{job}: journal diverges at {}: {a:?} vs {b:?}",
                a.index
            );
        }
    }

    // Graceful shutdown of the restarted daemon: drain and exit 0.
    assert_eq!(client.admin("shutdown").unwrap(), "OK draining\n");
    let status = daemon.wait().unwrap();
    assert!(status.success(), "drained daemon exits 0, got {status:?}");

    let _ = std::fs::remove_dir_all(&root);
}
