//! The crash-matrix torture harness (`--features faultinject`).
//!
//! Each case arms `datamime-served` with a deterministic disk-fault plan
//! whose `crash` faults abort the process (no unwinding — bit-for-bit a
//! SIGKILL) at one exact durability boundary: the Nth manifest WAL
//! append, the Nth checkpoint write, a GC directory removal. The daemon
//! is then restarted *without* faults on the same state root and must
//! satisfy the durability contract:
//!
//! - every job whose submission was acknowledged is still known;
//! - every known job runs (or resumes) to `done` with a best error and
//!   best unit point bit-identical to an uninterrupted one-shot run of
//!   the same spec;
//! - a half-done GC is finished, never half-remembered.
//!
//! The matrix runs the thread backend across every boundary and repeats
//! representative points on the process backend. Separate cases cover
//! quota stops resuming bit-identically through a mid-run crash, and
//! injected ENOSPC flipping the daemon into draining read-only mode.

#![cfg(feature = "faultinject")]

use datamime::jobspec::JobSpec;
use datamime::profiler::profile_workload;
use datamime::search::{search_with_runtime, SearchOutcome};
use datamime::servectl::{JobState, ServeClient};
use datamime_runtime::{QuotaCause, TERM_SENTINEL_ENV};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Cheap fixed-seed specs: small enough that a full matrix stays in test
/// time, long enough that mid-run crash points land mid-run.
const SPECS: [&str; 2] = [
    "workload=mem-fb iters=10 seed=7 curves=false grid=3",
    "workload=mem-fb iters=10 seed=11 curves=false grid=3",
];

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("datamime-crashmx-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns the daemon with the termination trampoline disabled (so an
/// injected abort is the process dying, not a shell) and an optional
/// disk-fault spec.
fn start_daemon(root: &Path, args: &[&str], fault: Option<&str>) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_datamime-served"));
    cmd.arg("--root")
        .arg(root)
        .env(TERM_SENTINEL_ENV, root.join("term.sentinel"))
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for a in args {
        cmd.arg(a);
    }
    match fault {
        Some(spec) => cmd.arg("--disk-fault").arg(spec),
        None => cmd.env_remove("DATAMIME_DISK_FAULT"),
    };
    cmd.spawn().expect("spawn datamime-served")
}

fn await_ready(client: &ServeClient, daemon: &mut Child) -> bool {
    let deadline = Instant::now() + Duration::from_secs(30);
    while client.list().is_err() {
        if daemon.try_wait().expect("poll daemon").is_some() {
            return false; // died (at an injected boundary) before binding
        }
        assert!(Instant::now() < deadline, "daemon never became reachable");
        std::thread::sleep(Duration::from_millis(20));
    }
    true
}

/// Waits for the daemon to hit its injected crash boundary and die.
fn await_death(daemon: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        if daemon.try_wait().expect("poll daemon").is_some() {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never reached its injected crash boundary"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The uninterrupted reference outcome for a spec line.
fn one_shot(spec_line: &str) -> SearchOutcome {
    let spec = JobSpec::parse(spec_line).unwrap();
    let target = spec.target().unwrap();
    let cfg = spec.search_config().unwrap();
    let generator = spec.generator().unwrap();
    let opts = spec.runtime_options();
    let profile = profile_workload(&target, &cfg.machine, &cfg.profiling);
    search_with_runtime(generator.as_ref(), &profile, &cfg, &opts).unwrap()
}

fn assert_bit_identical(job: &str, client: &ServeClient, reference: &SearchOutcome) {
    let result = client.result(job).expect("result after recovery");
    assert_eq!(
        result.best_error.to_bits(),
        reference.best_error.to_bits(),
        "{job}: best error after crash recovery"
    );
    let got: Vec<u64> = result.best_unit.iter().map(|u| u.to_bits()).collect();
    let want: Vec<u64> = reference
        .best_unit_params
        .iter()
        .map(|u| u.to_bits())
        .collect();
    assert_eq!(got, want, "{job}: best unit point after crash recovery");
}

/// One matrix cell: crash the daemon at `fault`, restart clean, and
/// check the durability contract for every acknowledged job. `specs`
/// parameterizes the backend. Extra daemon args apply to both runs.
fn run_cell(tag: &str, fault: &str, specs: &[String], args: &[&str]) {
    let root = tmp_root(tag);
    let client = ServeClient::new(&root);

    let mut daemon = start_daemon(&root, args, Some(fault));
    let mut acked: Vec<(String, String)> = Vec::new();
    if await_ready(&client, &mut daemon) {
        for spec in specs {
            match client.submit_line(spec) {
                Ok(job) => acked.push((job, spec.clone())),
                Err(_) => break, // daemon hit its boundary mid-submit
            }
        }
        await_death(&mut daemon);
    }
    daemon.wait().expect("reap crashed daemon");

    // Recovery run: no faults, same root.
    let mut daemon = start_daemon(&root, args, None);
    assert!(
        await_ready(&client, &mut daemon),
        "{tag}: recovery daemon must come up after a crash at `{fault}`"
    );
    let listed = client.list().expect("list after recovery");
    for (job, _) in &acked {
        assert!(
            listed.iter().any(|(id, _)| id == job),
            "{tag}: acknowledged {job} lost after crash at `{fault}`: {listed:?}"
        );
    }
    for (job, spec) in &acked {
        let status = client.wait(job, Duration::from_secs(600)).expect("wait");
        assert_eq!(
            status.state,
            JobState::Done,
            "{tag}: {job} after crash at `{fault}`"
        );
        assert_bit_identical(job, &client, &one_shot(spec));
    }

    assert_eq!(client.admin("shutdown").unwrap(), "OK draining\n");
    let status = daemon.wait().unwrap();
    assert!(status.success(), "recovery daemon exits 0, got {status:?}");
    let _ = std::fs::remove_dir_all(&root);
}

/// Thread backend, the full matrix: every manifest append boundary the
/// two-job script can reach (2 submits + 2 starts + 2 dones), every
/// checkpoint boundary (tiny segments checkpoint on every rotation), and
/// the GC directory removal.
#[test]
fn crash_matrix_thread_backend() {
    let specs: Vec<String> = SPECS.iter().map(|s| s.to_string()).collect();
    for nth in 0..6 {
        run_cell(
            &format!("manifest-{nth}"),
            &format!("manifest:{nth}:crash"),
            &specs,
            &[],
        );
    }
    // --segment-bytes 1 rotates (and attempts a checkpoint) before every
    // append past the first, so checkpoint ops 0 and 2 bracket the run.
    for nth in [0, 2] {
        run_cell(
            &format!("checkpoint-{nth}"),
            &format!("checkpoint:{nth}:crash"),
            &specs,
            &["--segment-bytes", "1"],
        );
    }
    // The GC boundaries (intent append, directory removal) are covered
    // by `gc_retention_is_enforced_and_reported_after_recovery`: a GC'd
    // job is *supposed* to vanish, so the keep-everything contract this
    // cell asserts does not apply there.
}

/// Process backend: representative boundaries (a mid-lifecycle manifest
/// append and a checkpoint write). Worker crashes are already covered by
/// the runtime's own supervision tests; here the daemon process is the
/// one that dies.
#[test]
fn crash_matrix_proc_backend() {
    let worker = ensure_worker_built();
    let specs: Vec<String> = SPECS
        .iter()
        .map(|s| format!("{s} backend=proc workers=2 worker_bin={}", worker.display()))
        .collect();
    run_cell("proc-manifest-3", "manifest:3:crash", &specs, &[]);
    run_cell(
        "proc-checkpoint-1",
        "checkpoint:1:crash",
        &specs,
        &["--segment-bytes", "1"],
    );
}

/// Resolves (building if necessary) the `datamime-worker` binary the
/// process backend execs. It lives in the same target directory as the
/// daemon binary under test.
fn ensure_worker_built() -> PathBuf {
    let worker = Path::new(env!("CARGO_BIN_EXE_datamime-served"))
        .parent()
        .expect("binary dir")
        .join("datamime-worker");
    if !worker.exists() {
        let status = Command::new(env!("CARGO"))
            .args(["build", "-q", "-p", "datamime", "--bin", "datamime-worker"])
            .status()
            .expect("run cargo build for datamime-worker");
        assert!(status.success(), "building datamime-worker failed");
    }
    assert!(
        worker.exists(),
        "datamime-worker not found at {worker:?} after building"
    );
    worker
}

/// A fixed-seed `max_evals=` job crash-resumes to the same quota stop:
/// same terminal state, same cause, and a best-so-far bit-identical to
/// the uninterrupted run. The crash point is a mid-run journal append,
/// so the quota accounting itself is interrupted and must re-derive the
/// observation count from the replayed journal.
#[test]
fn quota_stop_survives_crash_resume_bit_identically() {
    let spec = "workload=mem-fb iters=24 seed=7 curves=false grid=3 max_evals=12";
    let reference = one_shot(spec);
    assert_eq!(
        reference.quota,
        Some(QuotaCause::MaxEvals),
        "reference run must stop on quota, not finish — lower max_evals"
    );

    let root = tmp_root("quota-crash");
    let client = ServeClient::new(&root);
    let mut daemon = start_daemon(&root, &[], Some("journal:6:crash"));
    assert!(await_ready(&client, &mut daemon));
    let job = client.submit_line(spec).expect("submit quota job");
    await_death(&mut daemon);
    daemon.wait().expect("reap crashed daemon");

    let mut daemon = start_daemon(&root, &[], None);
    assert!(await_ready(&client, &mut daemon));
    let status = client.wait(&job, Duration::from_secs(600)).expect("wait");
    assert_eq!(status.state, JobState::QuotaExceeded, "{job} after resume");
    assert_bit_identical(&job, &client, &reference);

    assert_eq!(client.admin("shutdown").unwrap(), "OK draining\n");
    assert!(daemon.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&root);
}

/// Injected ENOSPC on the `done` append: the daemon must not panic and
/// must not serve a result whose terminal event was never fsynced.
/// Instead it drains into read-only mode — the job fails loudly, new
/// submissions are refused, status/health stay up, and shutdown is
/// still graceful.
#[test]
fn enospc_drains_the_daemon_read_only() {
    let root = tmp_root("enospc");
    let client = ServeClient::new(&root);
    // Single job: manifest append 0 = submit, 1 = start, 2 = done.
    let mut daemon = start_daemon(&root, &[], Some("manifest:2:enospc"));
    assert!(await_ready(&client, &mut daemon));
    let job = client.submit_line(SPECS[0]).expect("submit");

    let status = client.wait(&job, Duration::from_secs(600)).expect("wait");
    assert_eq!(
        status.state,
        JobState::Failed,
        "{job}: an unacknowledged `done` must fail the job, not serve it"
    );
    let err = client.result(&job).expect_err("no result may be served");
    assert!(
        err.contains("failed"),
        "result refusal names the state: {err}"
    );

    // The daemon survives in read-only mode and says so everywhere.
    let health = client.admin("health").expect("health while read-only");
    assert!(
        health.contains("STAT read_only 1\n") && health.contains("READONLY "),
        "health reports the read-only state: {health}"
    );
    let refused = client
        .submit_line(SPECS[1])
        .expect_err("submissions are refused while read-only");
    assert!(refused.contains("read-only"), "refusal says why: {refused}");
    assert!(client.status(&job).is_ok(), "status stays up");

    assert_eq!(client.admin("shutdown").unwrap(), "OK draining\n");
    let status = daemon.wait().unwrap();
    assert!(status.success(), "read-only daemon drains and exits 0");
    let _ = std::fs::remove_dir_all(&root);
}

/// Retention bookkeeping survives the full crash cycle: after recovery
/// from a crash at either GC boundary, re-listing shows at most `keep`
/// terminal jobs and `health` counts the collected ones.
#[test]
fn gc_retention_is_enforced_and_reported_after_recovery() {
    // Both phase boundaries of the two-phase delete: the directory
    // removal (intent already durable — recovery must finish it) and the
    // intent append itself (nothing durable — recovery re-decides GC).
    gc_retention_cell("gcdir-crash", "gcdir:0:crash");
    gc_retention_cell("gcintent-crash", "manifest:6:crash");
}

fn gc_retention_cell(tag: &str, fault: &str) {
    let specs: Vec<String> = SPECS.iter().map(|s| s.to_string()).collect();
    let root = tmp_root(tag);
    let client = ServeClient::new(&root);
    let args = ["--keep-terminal", "1"];

    let mut daemon = start_daemon(&root, &args, Some(fault));
    assert!(await_ready(&client, &mut daemon));
    for spec in &specs {
        client.submit_line(spec).expect("submit");
    }
    // The daemon aborts at the injected GC boundary after the second job
    // turns terminal.
    await_death(&mut daemon);
    daemon.wait().expect("reap crashed daemon");

    let mut daemon = start_daemon(&root, &args, None);
    assert!(await_ready(&client, &mut daemon));
    // Recovery finishes the pending intent; whichever job survives the
    // retention policy still completes.
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        let listed = client.list().expect("list");
        let terminal = listed
            .iter()
            .filter(|(_, s)| JobState::parse(s).is_some_and(JobState::is_terminal))
            .count();
        if terminal == listed.len() && !listed.is_empty() {
            assert!(
                listed.len() <= 1,
                "retention keeps at most one terminal job: {listed:?}"
            );
            break;
        }
        assert!(Instant::now() < deadline, "jobs never settled: {listed:?}");
        std::thread::sleep(Duration::from_millis(50));
    }
    let health = client.admin("health").expect("health");
    let gcd: u64 = health
        .lines()
        .find_map(|l| l.strip_prefix("STAT jobs_gcd_total "))
        .expect("health reports jobs_gcd_total")
        .trim()
        .parse()
        .expect("gcd count parses");
    assert!(gcd >= 1, "at least one job was collected: {health}");
    assert!(
        health.contains("STAT wal_pending_gc 0\n"),
        "no GC intent left pending after recovery: {health}"
    );

    assert_eq!(client.admin("shutdown").unwrap(), "OK draining\n");
    assert!(daemon.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&root);
}
