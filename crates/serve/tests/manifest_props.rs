//! Property tests for the segmented manifest WAL: random operation
//! sequences replay to exactly the state a simple in-memory model
//! predicts, across segment sizes (forcing rotations and checkpoints),
//! reopen cycles, and randomly torn segment tails.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use datamime::servectl::JobState;
use datamime_serve::{segment_file_name, JobEntry, Manifest, ManifestOptions};
use proptest::prelude::*;

/// A unique scratch directory per test case (proptest runs many cases
/// per process, so the counter disambiguates them).
fn scratch(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "datamime-manifest-props-{}-{tag}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// In-test mirror of the manifest's folded state. Deliberately written
/// against the documented semantics, not the implementation.
#[derive(Debug, Clone, Default, PartialEq)]
struct Model {
    jobs: BTreeMap<String, ModelJob>,
    pending_gc: Vec<String>,
    gcd: u64,
    max_job: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct ModelJob {
    spec: String,
    state: JobState,
    best_error: Option<f64>,
    best_unit: Vec<f64>,
    detail: Option<String>,
}

fn model_of(table: &BTreeMap<String, JobEntry>, pending: Vec<String>, gcd: u64, max: u64) -> Model {
    Model {
        jobs: table
            .iter()
            .map(|(id, e)| {
                (
                    id.clone(),
                    ModelJob {
                        spec: e.spec.clone(),
                        state: e.state,
                        best_error: e.best_error,
                        best_unit: e.best_unit.clone(),
                        detail: e.detail.clone(),
                    },
                )
            })
            .collect(),
        pending_gc: pending,
        gcd,
        max_job: max,
    }
}

fn observed(manifest: &Manifest, table: &BTreeMap<String, JobEntry>) -> Model {
    model_of(
        table,
        manifest.take_pending_gc(),
        manifest.wal_stats().gcd_jobs,
        manifest.next_job_number() - 1,
    )
}

/// Applies one (code, pick) choice to both the real manifest and the
/// model. Choices are mapped onto *valid* operations deterministically,
/// so the two sides always see the same op sequence.
fn apply_step(m: &mut Manifest, model: &mut Model, step: usize, code: u8, pick: u8) {
    let pick_job = |model: &Model| -> Option<String> {
        let ids: Vec<&String> = model.jobs.keys().collect();
        if ids.is_empty() {
            None
        } else {
            Some(ids[pick as usize % ids.len()].clone())
        }
    };
    let submit = |m: &mut Manifest, model: &mut Model| {
        let id = format!("job-{:04}", model.max_job + 1);
        let spec = format!("workload=mem-fb iters=8 seed={step}");
        m.submit(&id, &spec).expect("submit");
        model.max_job += 1;
        model.jobs.insert(
            id,
            ModelJob {
                spec,
                state: JobState::Submitted,
                best_error: None,
                best_unit: Vec::new(),
                detail: None,
            },
        );
    };
    match code % 8 {
        0 => submit(m, model),
        1 => match pick_job(model) {
            Some(job) => {
                m.start(&job).expect("start");
                model.jobs.get_mut(&job).unwrap().state = JobState::Running;
            }
            None => submit(m, model),
        },
        2 => match pick_job(model) {
            Some(job) => {
                let err = step as f64 * 0.25;
                let unit = vec![step as f64 * 0.125, 0.5];
                m.done(&job, err, &unit).expect("done");
                let e = model.jobs.get_mut(&job).unwrap();
                e.state = JobState::Done;
                e.best_error = Some(err);
                e.best_unit = unit;
            }
            None => submit(m, model),
        },
        3 => match pick_job(model) {
            Some(job) => {
                let err = step as f64 * 0.5;
                let unit = vec![0.75, step as f64 * 0.0625];
                let cause = if step.is_multiple_of(2) {
                    "max_evals"
                } else {
                    "wall_clock_s"
                };
                m.quota(&job, err, &unit, cause).expect("quota");
                let e = model.jobs.get_mut(&job).unwrap();
                e.state = JobState::QuotaExceeded;
                e.best_error = Some(err);
                e.best_unit = unit;
                e.detail = Some(cause.to_string());
            }
            None => submit(m, model),
        },
        4 => match pick_job(model) {
            Some(job) => {
                m.cancel(&job).expect("cancel");
                model.jobs.get_mut(&job).unwrap().state = JobState::Cancelled;
            }
            None => submit(m, model),
        },
        5 => match pick_job(model) {
            Some(job) => {
                let detail = format!("injected failure at step {step}");
                m.fail(&job, &detail).expect("fail");
                let e = model.jobs.get_mut(&job).unwrap();
                e.state = JobState::Failed;
                e.detail = Some(detail);
            }
            None => submit(m, model),
        },
        6 => match pick_job(model) {
            Some(job) => {
                m.gc_intent(&job).expect("gc intent");
                model.jobs.remove(&job);
                if !model.pending_gc.contains(&job) {
                    model.pending_gc.push(job);
                }
            }
            None => submit(m, model),
        },
        _ => {
            if model.pending_gc.is_empty() {
                submit(m, model);
            } else {
                let job = model.pending_gc[pick as usize % model.pending_gc.len()].clone();
                m.gc_done(&job).expect("gc done");
                model.pending_gc.retain(|j| j != &job);
                model.gcd += 1;
            }
        }
    }
}

fn open(root: &Path, segment_bytes: u64) -> (Manifest, BTreeMap<String, JobEntry>) {
    Manifest::open_with(
        root,
        ManifestOptions {
            segment_bytes: Some(segment_bytes),
            faults: None,
        },
    )
    .expect("open manifest")
}

/// Strategy: up to 40 raw (code, pick) choices plus a segment size that
/// ranges from pathological (rotate+checkpoint on every append) to
/// never-rotating.
fn ops_and_segment() -> impl Strategy<Value = (Vec<(u8, u8)>, u64)> {
    (
        prop::collection::vec((0u8..=255, 0u8..=255), 1..40),
        prop_oneof![Just(1u64), Just(64), Just(200), Just(1 << 20)],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Live folded state always equals the model, and reopening (replay
    /// of checkpoint + segments) reproduces it bit-for-bit.
    #[test]
    fn replay_matches_model_across_reopen((ops, segment_bytes) in ops_and_segment(), case in any::<u64>()) {
        let root = scratch("reopen", case);
        let mut model = Model::default();
        {
            let (mut m, table) = open(&root, segment_bytes);
            prop_assert!(table.is_empty());
            for (step, &(code, pick)) in ops.iter().enumerate() {
                apply_step(&mut m, &mut model, step, code, pick);
            }
        }
        let (m, table) = open(&root, segment_bytes);
        prop_assert_eq!(observed(&m, &table), model);
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Reopening twice in a row is idempotent even when the first open
    /// rewrote state (segment deletion, tail repair).
    #[test]
    fn double_reopen_is_idempotent((ops, segment_bytes) in ops_and_segment(), case in any::<u64>()) {
        let root = scratch("double", case);
        let mut model = Model::default();
        {
            let (mut m, _) = open(&root, segment_bytes);
            for (step, &(code, pick)) in ops.iter().enumerate() {
                apply_step(&mut m, &mut model, step, code, pick);
            }
        }
        let first = {
            let (m, table) = open(&root, segment_bytes);
            observed(&m, &table)
        };
        let (m, table) = open(&root, segment_bytes);
        prop_assert_eq!(observed(&m, &table), first);
        prop_assert_eq!(first, model);
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Tearing the tail of the *active* segment (what a crash mid-append
    /// can leave) loses only a suffix of acknowledged events: the
    /// replayed state equals the model after some prefix of the ops.
    #[test]
    fn torn_active_tail_replays_to_a_prefix(
        (ops, segment_bytes) in ops_and_segment(),
        cut in 1usize..200,
        case in any::<u64>(),
    ) {
        let root = scratch("torn", case);
        let mut model = Model::default();
        let mut snapshots = vec![model.clone()];
        {
            let (mut m, _) = open(&root, segment_bytes);
            for (step, &(code, pick)) in ops.iter().enumerate() {
                apply_step(&mut m, &mut model, step, code, pick);
                snapshots.push(model.clone());
            }
        }
        // Tear the highest-numbered segment: drop `cut` bytes from its
        // tail (clamped to the file size).
        // Segments need not start at 1 — checkpoints delete covered ones.
        let last_seg = (1..=10_000u64)
            .filter(|&s| root.join(segment_file_name(s)).exists())
            .max()
            .expect("at least one segment");
        let path = root.join(segment_file_name(last_seg));
        let len = std::fs::metadata(&path).expect("segment metadata").len();
        let keep = len.saturating_sub(cut as u64);
        let f = std::fs::OpenOptions::new().write(true).open(&path).expect("open segment");
        f.set_len(keep).expect("truncate segment");
        drop(f);

        let (m, table) = open(&root, segment_bytes);
        let got = observed(&m, &table);
        prop_assert!(
            snapshots.contains(&got),
            "torn-tail replay must match some op prefix; got {got:?}"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// An event kind this version has never heard of must fail the open
/// loudly — even when it sits in an old (non-active) segment. Silently
/// dropping transitions written by a newer daemon is how split-brain
/// job tables happen.
#[test]
fn unknown_event_kind_in_any_segment_is_loud() {
    use std::io::Write as _;

    let root = scratch("unknown-kind", 0);
    {
        let (mut m, _) = open(&root, 1); // rotate on every append
        m.submit("job-0001", "workload=mem-fb iters=8")
            .expect("submit");
        m.start("job-0001").expect("start");
        m.submit("job-0002", "workload=mem-fb iters=8")
            .expect("submit");
    }
    // Splice a future event kind into the *oldest* surviving segment.
    let oldest = (1..)
        .find(|&s| root.join(segment_file_name(s)).exists())
        .expect("a segment survives");
    let path = root.join(segment_file_name(oldest));
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("open oldest segment");
    writeln!(f, r#"{{"event":"promote","job":"job-0002"}}"#).expect("splice");
    drop(f);

    let err = Manifest::open(&root).expect_err("unknown event kind must refuse to open");
    assert!(
        err.contains("unknown manifest event"),
        "error should name the problem: {err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}
