//! `datamime-served`: the long-running Datamime search daemon.
//!
//! ```text
//! datamime-served --root /var/lib/datamime   # job.sock + admin.sock under the root
//! datamime-served --root /var/lib/datamime --keep-terminal 8 --segment-bytes 65536
//! datamime ctl submit workload=mem-fb iters=40 max_evals=32 --root /var/lib/datamime
//! echo health | nc -U /var/lib/datamime/admin.sock
//! ```
//!
//! SIGTERM/SIGINT drain gracefully: running jobs stop at their next
//! batch boundary with journals flushed, and the manifest keeps them
//! `running` so the next start resumes them. SIGKILL is also safe — that
//! is the crash-resume path the integration tests exercise.
//!
//! `--disk-fault <spec>` (or the `DATAMIME_DISK_FAULT` environment
//! variable) arms the deterministic disk-fault injector; see
//! [`datamime_runtime::diskfault`] for the `target:nth:kind;...` spec
//! grammar. Intended for the crash-matrix tests, not production.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use datamime_runtime::{DiskFaultPlan, DISK_FAULT_ENV};
use datamime_serve::ServeOptions;

const USAGE: &str = "usage: datamime-served --root <state-dir> \
[--keep-terminal <n>] [--segment-bytes <n>] [--disk-fault <spec>]";

fn parse_args(args: &[String]) -> Result<Option<(PathBuf, ServeOptions)>, String> {
    let mut root: Option<PathBuf> = None;
    let mut options = ServeOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--root" => root = Some(PathBuf::from(value("--root")?)),
            "--keep-terminal" => {
                let raw = value("--keep-terminal")?;
                let n: usize = raw
                    .parse()
                    .map_err(|_| format!("invalid --keep-terminal value: {raw}"))?;
                options.keep_terminal = Some(n);
            }
            "--segment-bytes" => {
                let raw = value("--segment-bytes")?;
                let n: u64 = raw
                    .parse()
                    .map_err(|_| format!("invalid --segment-bytes value: {raw}"))?;
                if n == 0 {
                    return Err("--segment-bytes must be at least 1".to_string());
                }
                options.segment_bytes = Some(n);
            }
            "--disk-fault" => {
                let raw = value("--disk-fault")?;
                options.disk_faults = Some(DiskFaultPlan::from_spec(raw)?);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let root = root.ok_or_else(|| "--root is required".to_string())?;
    if options.disk_faults.is_none() {
        if let Ok(spec) = std::env::var(DISK_FAULT_ENV) {
            if !spec.is_empty() {
                options.disk_faults = Some(DiskFaultPlan::from_spec(&spec)?);
            }
        }
    }
    Ok(Some((root, options)))
}

fn main() -> ExitCode {
    // Must run before anything else: on the first invocation this execs
    // into the termination trampoline (same PID) so SIGTERM/SIGINT can
    // be observed without unsafe signal handlers.
    let term = datamime_runtime::termsig::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (root, options) = match parse_args(&args) {
        Ok(Some(parsed)) => parsed,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("datamime-served: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match datamime_serve::run_with(root, term, options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("datamime-served: {e}");
            ExitCode::FAILURE
        }
    }
}
