//! `datamime-served`: the long-running Datamime search daemon.
//!
//! ```text
//! datamime-served --root /var/lib/datamime   # job.sock + admin.sock under the root
//! datamime ctl submit workload=mem-fb iters=40 --root /var/lib/datamime
//! echo stats | nc -U /var/lib/datamime/admin.sock
//! ```
//!
//! SIGTERM/SIGINT drain gracefully: running jobs stop at their next
//! batch boundary with journals flushed, and the manifest keeps them
//! `running` so the next start resumes them. SIGKILL is also safe — that
//! is the crash-resume path the integration tests exercise.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: datamime-served --root <state-dir>";

fn main() -> ExitCode {
    // Must run before anything else: on the first invocation this execs
    // into the termination trampoline (same PID) so SIGTERM/SIGINT can
    // be observed without unsafe signal handlers.
    let term = datamime_runtime::termsig::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match args.as_slice() {
        [flag, root] if flag == "--root" => PathBuf::from(root),
        [h, ..] if h == "--help" || h == "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match datamime_serve::run(root, term) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("datamime-served: {e}");
            ExitCode::FAILURE
        }
    }
}
