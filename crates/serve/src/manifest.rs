//! The daemon's crash-safe job manifest.
//!
//! An append-only JSONL write-ahead log recording every job lifecycle
//! transition — `submit` (with the full spec line), `start`, `done`,
//! `cancel`, `fail` — fsynced after each append, so the set of jobs and
//! their states survives `SIGKILL` at any instant. On startup the daemon
//! [`replays`](Manifest::open) the log and resumes every job whose last
//! event is non-terminal from its evaluation journal (the journal itself
//! is the runtime's crash-safe `journal` module; the manifest only has to
//! remember *which* jobs exist and what was asked of them).
//!
//! A torn final line (the crash window of an append) is *repaired* on
//! open: the newline-less tail is truncated away before the append
//! handle is handed out, so the first post-restart append starts on a
//! fresh line instead of gluing onto the fragment and corrupting an
//! acknowledged event.

use datamime::servectl::JobState;
use datamime_runtime::json::{push_f64, push_f64_array, push_str_escaped, Json};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// The manifest file name under the daemon state root.
pub const MANIFEST_FILE: &str = "manifest.log";

/// A job's folded state after replaying the manifest.
#[derive(Debug, Clone)]
pub struct JobEntry {
    /// The submitted spec, verbatim `key=value` line.
    pub spec: String,
    /// Lifecycle state implied by the last event.
    pub state: JobState,
    /// Best error recorded by a `done` event.
    pub best_error: Option<f64>,
    /// Best unit point recorded by a `done` event.
    pub best_unit: Vec<f64>,
    /// Failure detail recorded by a `fail` event.
    pub detail: Option<String>,
}

/// The append side of the manifest. Every mutator appends one line and
/// fsyncs before returning — a transition the caller saw acknowledged is
/// a transition a restarted daemon will replay.
#[derive(Debug)]
pub struct Manifest {
    out: File,
    path: PathBuf,
}

impl Manifest {
    /// Opens (creating if absent) the manifest under `root`, replaying
    /// any existing log. A torn final line (a crash mid-append) is
    /// truncated away before the append handle is created. Returns the
    /// writer and the folded job table in id order.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors; corrupt interior lines and events for
    /// unknown jobs are skipped with a warning, unknown event *kinds*
    /// are errors.
    pub fn open(root: &Path) -> Result<(Manifest, BTreeMap<String, JobEntry>), String> {
        let path = root.join(MANIFEST_FILE);
        let mut jobs = BTreeMap::new();
        if path.exists() {
            let data =
                std::fs::read(&path).map_err(|e| format!("cannot read manifest {path:?}: {e}"))?;
            // Every append is `<line>\n`; a file that does not end in a
            // newline was torn mid-append. Truncate the fragment now —
            // appending after it would glue the next (acknowledged!)
            // event onto the tear, producing one unparseable line and
            // losing that event on the following restart.
            let keep = if data.last().is_some_and(|&b| b != b'\n') {
                data.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1)
            } else {
                data.len()
            };
            if keep < data.len() {
                let f = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| format!("cannot repair manifest {path:?}: {e}"))?;
                f.set_len(keep as u64)
                    .and_then(|()| f.sync_all())
                    .map_err(|e| format!("cannot repair manifest {path:?}: {e}"))?;
            }
            for raw in data[..keep].split(|&b| b == b'\n') {
                let line = String::from_utf8_lossy(raw);
                if line.trim().is_empty() {
                    continue;
                }
                let Ok(v) = Json::parse(&line) else {
                    eprintln!("datamime-served: skipping corrupt manifest line: {line}");
                    continue;
                };
                apply(&mut jobs, &v)?;
            }
        }
        let out = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("cannot append to manifest {path:?}: {e}"))?;
        Ok((Manifest { out, path }, jobs))
    }

    fn append(&mut self, line: &str) -> Result<(), String> {
        self.out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
            .and_then(|()| self.out.sync_all())
            .map_err(|e| format!("cannot append to manifest {:?}: {e}", self.path))
    }

    /// Records a job submission (the WAL point: once this returns, a
    /// restart will know the job).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn submit(&mut self, job: &str, spec: &str) -> Result<(), String> {
        let mut line = String::from(r#"{"event":"submit","job":"#);
        push_str_escaped(&mut line, job);
        line.push_str(",\"spec\":");
        push_str_escaped(&mut line, spec);
        line.push('}');
        self.append(&line)
    }

    /// Records that a job started running.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn start(&mut self, job: &str) -> Result<(), String> {
        self.event("start", job)
    }

    /// Records successful completion with the result.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn done(&mut self, job: &str, best_error: f64, best_unit: &[f64]) -> Result<(), String> {
        let mut line = String::from(r#"{"event":"done","job":"#);
        push_str_escaped(&mut line, job);
        line.push_str(",\"best_error\":");
        push_f64(&mut line, best_error);
        line.push_str(",\"best_unit\":");
        push_f64_array(&mut line, best_unit);
        line.push('}');
        self.append(&line)
    }

    /// Records cancellation.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn cancel(&mut self, job: &str) -> Result<(), String> {
        self.event("cancel", job)
    }

    /// Records failure with a human-readable reason.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn fail(&mut self, job: &str, detail: &str) -> Result<(), String> {
        let mut line = String::from(r#"{"event":"fail","job":"#);
        push_str_escaped(&mut line, job);
        line.push_str(",\"detail\":");
        push_str_escaped(&mut line, detail);
        line.push('}');
        self.append(&line)
    }

    fn event(&mut self, event: &str, job: &str) -> Result<(), String> {
        let mut line = format!(r#"{{"event":"{event}","job":"#);
        push_str_escaped(&mut line, job);
        line.push('}');
        self.append(&line)
    }
}

fn apply(jobs: &mut BTreeMap<String, JobEntry>, v: &Json) -> Result<(), String> {
    let event = v
        .get("event")
        .and_then(Json::as_str)
        .ok_or("manifest line without an event")?;
    let job = v
        .get("job")
        .and_then(Json::as_str)
        .ok_or("manifest line without a job id")?
        .to_string();
    match event {
        "submit" => {
            let spec = v
                .get("spec")
                .and_then(Json::as_str)
                .ok_or("manifest submit without a spec")?
                .to_string();
            jobs.insert(
                job,
                JobEntry {
                    spec,
                    state: JobState::Submitted,
                    best_error: None,
                    best_unit: Vec::new(),
                    detail: None,
                },
            );
        }
        "start" | "done" | "cancel" | "fail" => {
            // An unknown job here means its submit line was lost to
            // corruption. That job is gone either way; skipping keeps
            // the daemon startable, which beats refusing to open.
            let Some(entry) = jobs.get_mut(&job) else {
                eprintln!("datamime-served: skipping manifest {event} for unknown job {job}");
                return Ok(());
            };
            match event {
                "start" => entry.state = JobState::Running,
                "cancel" => entry.state = JobState::Cancelled,
                "fail" => {
                    entry.state = JobState::Failed;
                    entry.detail = v.get("detail").and_then(Json::as_str).map(str::to_string);
                }
                _ => {
                    entry.state = JobState::Done;
                    entry.best_error = v.get("best_error").and_then(Json::as_f64);
                    entry.best_unit = v
                        .get("best_unit")
                        .and_then(Json::as_arr)
                        .map(|xs| xs.iter().filter_map(Json::as_f64).collect())
                        .unwrap_or_default();
                }
            }
        }
        other => return Err(format!("unknown manifest event `{other}`")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("datamime-manifest-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn transitions_fold_and_survive_reopen() {
        let root = tmp("fold");
        {
            let (mut m, jobs) = Manifest::open(&root).unwrap();
            assert!(jobs.is_empty());
            m.submit("job-0001", "workload=mem-fb iters=4").unwrap();
            m.submit("job-0002", "workload=xapian iters=4").unwrap();
            m.start("job-0001").unwrap();
            m.start("job-0002").unwrap();
            m.done("job-0001", 0.25, &[0.5, 0.75]).unwrap();
            m.cancel("job-0002").unwrap();
        }
        let (_m, jobs) = Manifest::open(&root).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs["job-0001"].state, JobState::Done);
        assert_eq!(jobs["job-0001"].best_error, Some(0.25));
        assert_eq!(jobs["job-0001"].best_unit, vec![0.5, 0.75]);
        assert_eq!(jobs["job-0002"].state, JobState::Cancelled);
        assert_eq!(jobs["job-0002"].spec, "workload=xapian iters=4");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn failure_detail_is_preserved() {
        let root = tmp("fail");
        {
            let (mut m, _) = Manifest::open(&root).unwrap();
            m.submit("job-0001", "workload=nope").unwrap();
            m.fail("job-0001", "unknown workload \"nope\"").unwrap();
        }
        let (_m, jobs) = Manifest::open(&root).unwrap();
        assert_eq!(jobs["job-0001"].state, JobState::Failed);
        assert_eq!(
            jobs["job-0001"].detail.as_deref(),
            Some("unknown workload \"nope\"")
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_tail_is_ignored_but_interior_events_fold() {
        let root = tmp("torn");
        {
            let (mut m, _) = Manifest::open(&root).unwrap();
            m.submit("job-0001", "workload=mem-fb").unwrap();
            m.start("job-0001").unwrap();
        }
        // Simulate a crash mid-append: a torn, unparseable final line.
        let path = root.join(MANIFEST_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"event\":\"done\",\"jo").unwrap();
        drop(f);
        let (_m, jobs) = Manifest::open(&root).unwrap();
        assert_eq!(jobs["job-0001"].state, JobState::Running);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_tail_is_truncated_so_post_restart_appends_survive() {
        let root = tmp("repair");
        {
            let (mut m, _) = Manifest::open(&root).unwrap();
            m.submit("job-0001", "workload=mem-fb").unwrap();
        }
        let path = root.join(MANIFEST_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"event\":\"submit\",\"job\":\"job-00")
            .unwrap();
        drop(f);
        // Restart: the tear is repaired, and a fresh acknowledged event
        // appended afterwards must fold on the *next* restart too (the
        // original bug glued it onto the fragment and lost it).
        {
            let (mut m, jobs) = Manifest::open(&root).unwrap();
            assert_eq!(jobs.len(), 1);
            m.submit("job-0002", "workload=xapian").unwrap();
            m.start("job-0002").unwrap();
        }
        let (_m, jobs) = Manifest::open(&root).unwrap();
        assert_eq!(jobs["job-0002"].state, JobState::Running);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn events_for_unknown_jobs_are_skipped_not_fatal() {
        let root = tmp("orphan");
        std::fs::write(
            root.join(MANIFEST_FILE),
            "{\"event\":\"start\",\"job\":\"job-0009\"}\n\
             {\"event\":\"submit\",\"job\":\"job-0001\",\"spec\":\"workload=mem-fb\"}\n\
             {\"event\":\"done\",\"job\":\"job-0009\",\"best_error\":0.5,\"best_unit\":[]}\n",
        )
        .unwrap();
        let (_m, jobs) = Manifest::open(&root).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs["job-0001"].state, JobState::Submitted);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unknown_events_are_loud() {
        let root = tmp("loud");
        std::fs::write(
            root.join(MANIFEST_FILE),
            "{\"event\":\"explode\",\"job\":\"j\"}\n",
        )
        .unwrap();
        assert!(Manifest::open(&root).is_err());
        let _ = std::fs::remove_dir_all(&root);
    }
}
