//! The daemon's crash-safe job manifest: a segmented, checkpointed WAL.
//!
//! Job lifecycle transitions — `submit` (with the full spec line),
//! `start`, `done`, `quota`, `cancel`, `fail`, plus the two-phase GC
//! records `gc` / `gc_done` — are appended as JSONL to the active
//! *segment* `manifest.NNNNNN.log` and fsynced before the caller is
//! acknowledged, so the set of jobs and their states survives `SIGKILL`
//! at any instant.
//!
//! When the active segment exceeds the configured size the writer
//! *rotates*: a fresh segment is created, and a compacted **checkpoint**
//! (`manifest.ckpt`) of the folded live-job table is written via
//! write-to-temp + fsync + atomic rename, after which the segments it
//! covers are deleted. Replay on open is therefore checkpoint + the
//! segments newer than it, so startup cost and disk footprint are
//! bounded by the live job set instead of the daemon's whole history.
//! Every step is crash-safe:
//!
//! - a torn final line (the crash window of an append) is *repaired* on
//!   open — the newline-less tail is truncated away so the first
//!   post-restart append starts on a fresh line instead of gluing onto
//!   the fragment and corrupting an acknowledged event;
//! - a failed append self-repairs the same way immediately (the segment
//!   is truncated back to its last acknowledged length), so one short
//!   write cannot poison later events;
//! - a crash between checkpoint-temp write and rename leaves a stale
//!   `manifest.ckpt.tmp` that open deletes — the previous checkpoint
//!   stays authoritative;
//! - a crash between checkpoint rename and segment deletion is resumed
//!   on open (covered segments are deleted then, not replayed);
//! - a *failed* checkpoint attempt is counted and logged, never fatal:
//!   the previous checkpoint and the full segment chain still replay.
//!
//! GC of a terminal job is two-phase: a `gc` intent record makes the
//! deletion durable before any file is unlinked, and `gc_done` closes it
//! after the job directory is gone. A crash in between leaves the
//! intent pending; [`Manifest::take_pending_gc`] hands it to the daemon
//! on startup to finish (directory removal is idempotent).
//!
//! Disk-fault injection (`ENOSPC`, short writes, fsync failures, crash
//! at the boundary) threads through every append and checkpoint via
//! [`DiskFaultInjector`], so the crash matrix can hit each durability
//! edge deterministically. Injected or real `ENOSPC` is flagged via
//! [`Manifest::no_space_seen`] — the daemon's cue to drain into
//! read-only mode.

use datamime::servectl::JobState;
use datamime_runtime::diskfault::{is_no_space, DiskFaultInjector, DiskTarget};
use datamime_runtime::json::{push_f64, push_f64_array, push_str_escaped, Json};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// The legacy single-file manifest name. Found on open, it is migrated
/// (renamed) to segment 1 of the segmented WAL.
pub const MANIFEST_FILE: &str = "manifest.log";

/// The compacted checkpoint file under the daemon state root.
pub const CHECKPOINT_FILE: &str = "manifest.ckpt";

/// The checkpoint staging file; deleted on open if a crash left it.
const CHECKPOINT_TMP: &str = "manifest.ckpt.tmp";

/// Default segment-rotation threshold in bytes.
pub const DEFAULT_SEGMENT_BYTES: u64 = 64 * 1024;

/// Manifest WAL format revision. Replay accepts only this revision's
/// event vocabulary; bump it whenever [`MANIFEST_EVENT_KINDS`] changes
/// meaning or membership.
pub const MANIFEST_FORMAT_REVISION: u32 = 1;

/// Every `event` value a WAL line may carry. This registry is a wire
/// surface: the audit's `wire-compat` rule locks it in
/// `audit.wire.lock`, so adding, removing, or renaming a kind without
/// bumping [`MANIFEST_FORMAT_REVISION`] fails CI.
pub const MANIFEST_EVENT_KINDS: [&str; 8] = [
    "submit", "start", "done", "quota", "cancel", "fail", "gc", "gc_done",
];

/// The file name of WAL segment `seq` (`manifest.000007.log`).
pub fn segment_file_name(seq: u64) -> String {
    format!("manifest.{seq:06}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("manifest.")?.strip_suffix(".log")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Tuning and test hooks for [`Manifest::open_with`].
#[derive(Debug, Clone, Default)]
pub struct ManifestOptions {
    /// Segment-rotation threshold; `None` means [`DEFAULT_SEGMENT_BYTES`].
    pub segment_bytes: Option<u64>,
    /// Deterministic disk-fault injection on appends and checkpoints.
    pub faults: Option<DiskFaultInjector>,
}

/// A WAL write failure. `no_space` marks the ENOSPC class that should
/// flip the daemon into draining read-only mode.
#[derive(Debug, Clone)]
pub struct WalError {
    /// Whether the failure was an out-of-space condition.
    pub no_space: bool,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl From<WalError> for String {
    fn from(e: WalError) -> String {
        e.message
    }
}

/// Counters and sizes describing the on-disk WAL, for the admin plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Live segment files on disk.
    pub segments: u64,
    /// Total bytes across live segment files.
    pub segment_bytes: u64,
    /// Highest segment sequence folded into the checkpoint (0 = none).
    pub checkpoint_seq: u64,
    /// Checkpoint attempts that failed since this writer opened.
    pub checkpoint_failures: u64,
    /// Jobs whose GC completed (cumulative, survives restarts).
    pub gcd_jobs: u64,
    /// GC intents not yet closed by a `gc_done`.
    pub pending_gc: u64,
}

/// A job's folded state after replaying the manifest.
#[derive(Debug, Clone)]
pub struct JobEntry {
    /// The submitted spec, verbatim `key=value` line.
    pub spec: String,
    /// Lifecycle state implied by the last event.
    pub state: JobState,
    /// Best error recorded by a `done` or `quota` event.
    pub best_error: Option<f64>,
    /// Best unit point recorded by a `done` or `quota` event.
    pub best_unit: Vec<f64>,
    /// Failure detail (`fail`) or quota cause (`quota`).
    pub detail: Option<String>,
}

/// The folded replay state: the job table plus the bookkeeping that has
/// to survive compaction (GC progress, the high-water job number).
#[derive(Debug, Clone, Default)]
struct Fold {
    jobs: BTreeMap<String, JobEntry>,
    /// GC intents whose directory removal has not been confirmed.
    pending_gc: Vec<String>,
    /// Jobs fully garbage-collected (cumulative).
    gcd: u64,
    /// Highest numeric job id ever submitted; preserved by checkpoints
    /// so GC of old jobs never recycles an id.
    max_job: u64,
}

/// The append side of the manifest. Every mutator appends one line and
/// fsyncs before returning — a transition the caller saw acknowledged is
/// a transition a restarted daemon will replay. The writer folds each
/// acknowledged line through the *same* parser the replay path uses, so
/// live state and post-crash state cannot drift.
#[derive(Debug)]
pub struct Manifest {
    root: PathBuf,
    out: File,
    active_seq: u64,
    /// Acknowledged bytes in the active segment (the self-repair target
    /// after a failed append).
    active_bytes: u64,
    segment_bytes: u64,
    checkpoint_seq: u64,
    checkpoint_failures: u64,
    no_space_seen: bool,
    fold: Fold,
    faults: Option<DiskFaultInjector>,
}

impl Manifest {
    /// Opens (creating if absent) the manifest under `root` with default
    /// options. See [`Manifest::open_with`].
    ///
    /// # Errors
    ///
    /// As [`Manifest::open_with`].
    pub fn open(root: &Path) -> Result<(Manifest, BTreeMap<String, JobEntry>), String> {
        Manifest::open_with(root, ManifestOptions::default())
    }

    /// Opens (creating if absent) the segmented manifest under `root`:
    /// deletes a stale checkpoint temp, migrates a legacy single-file
    /// manifest to segment 1, loads the checkpoint, deletes segments the
    /// checkpoint covers (resuming an interrupted post-checkpoint
    /// deletion), replays newer segments in order with torn-tail repair,
    /// and returns the writer plus the folded job table in id order.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, a corrupt checkpoint, or an unknown event
    /// *kind* in any segment (a forward-compatibility tripwire — old
    /// daemons must not silently drop transitions written by newer
    /// ones). Corrupt interior lines and events for unknown jobs are
    /// skipped with a warning.
    pub fn open_with(
        root: &Path,
        options: ManifestOptions,
    ) -> Result<(Manifest, BTreeMap<String, JobEntry>), String> {
        let segment_bytes = options
            .segment_bytes
            .unwrap_or(DEFAULT_SEGMENT_BYTES)
            .max(1);
        let tmp = root.join(CHECKPOINT_TMP);
        if tmp.exists() {
            // Crash between temp write and rename: the temp's content is
            // unacknowledged (possibly torn); the previous checkpoint is
            // authoritative.
            std::fs::remove_file(&tmp)
                .map_err(|e| format!("cannot remove stale checkpoint temp {tmp:?}: {e}"))?;
        }
        let mut segments = list_segments(root)?;
        let legacy = root.join(MANIFEST_FILE);
        if legacy.exists() {
            if !segments.is_empty() {
                return Err(format!(
                    "both a legacy manifest {legacy:?} and segmented WAL files exist under \
                     {root:?}; refusing to guess which is authoritative"
                ));
            }
            let seg1 = root.join(segment_file_name(1));
            std::fs::rename(&legacy, &seg1)
                .map_err(|e| format!("cannot migrate legacy manifest {legacy:?}: {e}"))?;
            sync_dir(root)?;
            segments.push(1);
        }
        let ckpt_path = root.join(CHECKPOINT_FILE);
        let (mut fold, checkpoint_seq) = if ckpt_path.exists() {
            load_checkpoint(&ckpt_path)?
        } else {
            (Fold::default(), 0)
        };
        // Segments the checkpoint covers are already folded into it; if
        // they still exist the post-checkpoint deletion was interrupted.
        // Finish it instead of replaying them (replaying would double-
        // apply nothing — folding is idempotent per job — but deleting
        // here keeps open O(live) and the invariant simple).
        for &seq in segments.iter().filter(|&&s| s <= checkpoint_seq) {
            let p = root.join(segment_file_name(seq));
            std::fs::remove_file(&p)
                .map_err(|e| format!("cannot remove checkpointed segment {p:?}: {e}"))?;
        }
        segments.retain(|&s| s > checkpoint_seq);
        for &seq in &segments {
            replay_segment(&root.join(segment_file_name(seq)), &mut fold)?;
        }
        let active_seq = segments.last().copied().unwrap_or(checkpoint_seq + 1);
        let path = root.join(segment_file_name(active_seq));
        let out = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("cannot append to manifest segment {path:?}: {e}"))?;
        let active_bytes = out
            .metadata()
            .map_err(|e| format!("cannot stat manifest segment {path:?}: {e}"))?
            .len();
        let jobs = fold.jobs.clone();
        Ok((
            Manifest {
                root: root.to_path_buf(),
                out,
                active_seq,
                active_bytes,
                segment_bytes,
                checkpoint_seq,
                checkpoint_failures: 0,
                no_space_seen: false,
                fold,
                faults: options.faults,
            },
            jobs,
        ))
    }

    /// The next unused job number (1-based). Tracked through checkpoints
    /// so garbage-collecting old jobs never recycles an id.
    pub fn next_job_number(&self) -> u64 {
        self.fold.max_job + 1
    }

    /// GC intents recorded but not yet closed by `gc_done` — directories
    /// a crashed daemon may have half-deleted. The caller should finish
    /// each (idempotent removal, then [`Manifest::gc_done`]).
    pub fn take_pending_gc(&self) -> Vec<String> {
        self.fold.pending_gc.clone()
    }

    /// Whether any append or checkpoint has hit an out-of-space
    /// condition since this writer opened (the read-only-drain trigger,
    /// also set by checkpoint failures that do not fail a mutator).
    pub fn no_space_seen(&self) -> bool {
        self.no_space_seen
    }

    /// On-disk WAL shape for the admin plane. Scans the state root;
    /// unreadable entries count as zero bytes rather than failing.
    pub fn wal_stats(&self) -> WalStats {
        let (mut segments, mut segment_bytes) = (0u64, 0u64);
        if let Ok(rd) = std::fs::read_dir(&self.root) {
            for entry in rd.flatten() {
                if parse_segment_name(&entry.file_name().to_string_lossy()).is_some() {
                    segments += 1;
                    segment_bytes += entry.metadata().map_or(0, |m| m.len());
                }
            }
        }
        WalStats {
            segments,
            segment_bytes,
            checkpoint_seq: self.checkpoint_seq,
            checkpoint_failures: self.checkpoint_failures,
            gcd_jobs: self.fold.gcd,
            pending_gc: self.fold.pending_gc.len() as u64,
        }
    }

    /// Records a job submission (the WAL point: once this returns, a
    /// restart will know the job).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors (including injected faults).
    pub fn submit(&mut self, job: &str, spec: &str) -> Result<(), WalError> {
        let mut line = String::from(r#"{"event":"submit","job":"#);
        push_str_escaped(&mut line, job);
        line.push_str(",\"spec\":");
        push_str_escaped(&mut line, spec);
        line.push('}');
        self.commit(&line)
    }

    /// Records that a job started running.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors (including injected faults).
    pub fn start(&mut self, job: &str) -> Result<(), WalError> {
        self.event("start", job)
    }

    /// Records successful completion with the result.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors (including injected faults).
    pub fn done(&mut self, job: &str, best_error: f64, best_unit: &[f64]) -> Result<(), WalError> {
        let mut line = String::from(r#"{"event":"done","job":"#);
        push_str_escaped(&mut line, job);
        line.push_str(",\"best_error\":");
        push_f64(&mut line, best_error);
        line.push_str(",\"best_unit\":");
        push_f64_array(&mut line, best_unit);
        line.push('}');
        self.commit(&line)
    }

    /// Records a quota stop (`max_evals=` / `wall_clock_s=`) with the
    /// best-so-far result and the cause string.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors (including injected faults).
    pub fn quota(
        &mut self,
        job: &str,
        best_error: f64,
        best_unit: &[f64],
        cause: &str,
    ) -> Result<(), WalError> {
        let mut line = String::from(r#"{"event":"quota","job":"#);
        push_str_escaped(&mut line, job);
        line.push_str(",\"cause\":");
        push_str_escaped(&mut line, cause);
        line.push_str(",\"best_error\":");
        push_f64(&mut line, best_error);
        line.push_str(",\"best_unit\":");
        push_f64_array(&mut line, best_unit);
        line.push('}');
        self.commit(&line)
    }

    /// Records cancellation.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors (including injected faults).
    pub fn cancel(&mut self, job: &str) -> Result<(), WalError> {
        self.event("cancel", job)
    }

    /// Records failure with a human-readable reason.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors (including injected faults).
    pub fn fail(&mut self, job: &str, detail: &str) -> Result<(), WalError> {
        let mut line = String::from(r#"{"event":"fail","job":"#);
        push_str_escaped(&mut line, job);
        line.push_str(",\"detail\":");
        push_str_escaped(&mut line, detail);
        line.push('}');
        self.commit(&line)
    }

    /// Records the durable *intent* to garbage-collect a terminal job
    /// (phase one of two-phase delete: nothing may be unlinked before
    /// this returns). The job leaves the folded table immediately.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors (including injected faults).
    pub fn gc_intent(&mut self, job: &str) -> Result<(), WalError> {
        self.event("gc", job)
    }

    /// Records that a GC'd job's directory is gone (phase two; closes
    /// the pending intent).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors (including injected faults).
    pub fn gc_done(&mut self, job: &str) -> Result<(), WalError> {
        self.event("gc_done", job)
    }

    fn event(&mut self, event: &str, job: &str) -> Result<(), WalError> {
        let mut line = format!(r#"{{"event":"{event}","job":"#);
        push_str_escaped(&mut line, job);
        line.push('}');
        self.commit(&line)
    }

    /// Appends one acknowledged line, then folds it through the same
    /// `apply` the replay path uses — the one place live and replayed
    /// state are guaranteed to agree.
    fn commit(&mut self, line: &str) -> Result<(), WalError> {
        self.append_line(line)?;
        let parsed = Json::parse(line).map_err(|e| WalError {
            no_space: false,
            message: format!("manifest writer produced an unparseable line: {e}"),
        })?;
        apply(&mut self.fold, &parsed).map_err(|message| WalError {
            no_space: false,
            message,
        })
    }

    fn append_line(&mut self, line: &str) -> Result<(), WalError> {
        if self.active_bytes >= self.segment_bytes {
            self.rotate()?;
        }
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        let injected = self
            .faults
            .as_ref()
            .and_then(|inj| inj.next(DiskTarget::Manifest));
        let result = match injected {
            Some(kind) => Err(kind.corrupt_append(&mut self.out, &bytes)),
            None => self
                .out
                .write_all(&bytes)
                .and_then(|()| self.out.sync_all()),
        };
        match result {
            Ok(()) => {
                self.active_bytes += bytes.len() as u64;
                Ok(())
            }
            Err(err) => {
                if is_no_space(&err) {
                    self.no_space_seen = true;
                }
                // Self-repair: truncate back to the last acknowledged
                // length so a torn half-record cannot glue onto the next
                // append (the live-writer analogue of open's tail
                // repair). Best effort — a disk that cannot truncate
                // will be repaired on the next open instead.
                // audit:allow(swallowed-result): repair of an already-failing disk — the append error below is what the caller acts on
                let _ = self.out.set_len(self.active_bytes);
                // audit:allow(swallowed-result): repair of an already-failing disk — the append error below is what the caller acts on
                let _ = self.out.sync_all();
                Err(WalError {
                    no_space: is_no_space(&err),
                    message: format!(
                        "cannot append to manifest segment {}: {err}",
                        self.active_seq
                    ),
                })
            }
        }
    }

    /// Starts a fresh segment, then best-effort checkpoints everything
    /// up to and including the one just retired. Checkpoint failure is
    /// counted and logged, never fatal: the previous checkpoint plus the
    /// un-deleted segment chain still replays every acknowledged event.
    fn rotate(&mut self) -> Result<(), WalError> {
        let new_seq = self.active_seq + 1;
        let path = self.root.join(segment_file_name(new_seq));
        let out = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| WalError {
                no_space: is_no_space(&e),
                message: format!("cannot create manifest segment {path:?}: {e}"),
            })?;
        sync_dir(&self.root).map_err(|message| WalError {
            no_space: false,
            message,
        })?;
        let covers = self.active_seq;
        self.out = out;
        self.active_seq = new_seq;
        self.active_bytes = 0;
        match self.write_checkpoint(covers) {
            Ok(()) => {
                let from = self.checkpoint_seq;
                self.checkpoint_seq = covers;
                for seq in (from + 1)..=covers {
                    // audit:allow(swallowed-result): best effort — a surviving retired segment is deleted by the next open
                    let _ = std::fs::remove_file(self.root.join(segment_file_name(seq)));
                }
            }
            Err(e) => {
                self.checkpoint_failures += 1;
                if e.no_space {
                    self.no_space_seen = true;
                }
                // audit:allow(swallowed-result): best effort — a stale checkpoint temp is overwritten by the next attempt
                let _ = std::fs::remove_file(self.root.join(CHECKPOINT_TMP));
                eprintln!(
                    "datamime-served: checkpoint covering segment {covers} failed \
                     (previous checkpoint stays authoritative): {e}"
                );
            }
        }
        Ok(())
    }

    fn write_checkpoint(&mut self, covers: u64) -> Result<(), WalError> {
        let line = checkpoint_json(&self.fold, covers);
        let tmp = self.root.join(CHECKPOINT_TMP);
        let io_err = |e: std::io::Error| WalError {
            no_space: is_no_space(&e),
            message: format!("cannot write checkpoint temp {tmp:?}: {e}"),
        };
        let injected = self
            .faults
            .as_ref()
            .and_then(|inj| inj.next(DiskTarget::Checkpoint));
        let mut f = File::create(&tmp).map_err(io_err)?;
        if let Some(kind) = injected {
            return Err(io_err(kind.corrupt_append(&mut f, line.as_bytes())));
        }
        f.write_all(line.as_bytes())
            .and_then(|()| f.write_all(b"\n"))
            .and_then(|()| f.sync_all())
            .map_err(io_err)?;
        drop(f);
        let final_path = self.root.join(CHECKPOINT_FILE);
        std::fs::rename(&tmp, &final_path).map_err(|e| WalError {
            no_space: is_no_space(&e),
            message: format!("cannot publish checkpoint {final_path:?}: {e}"),
        })?;
        sync_dir(&self.root).map_err(|message| WalError {
            no_space: false,
            message,
        })
    }
}

/// Fsyncs a directory so a just-created/renamed entry survives a crash.
/// Crate-visible: the server's journal-sidecar staging renames need the
/// same discipline.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), String> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| format!("cannot fsync directory {dir:?}: {e}"))
}

fn list_segments(root: &Path) -> Result<Vec<u64>, String> {
    let mut out = Vec::new();
    let rd =
        std::fs::read_dir(root).map_err(|e| format!("cannot list manifest root {root:?}: {e}"))?;
    for entry in rd {
        let entry = entry.map_err(|e| format!("cannot list manifest root {root:?}: {e}"))?;
        if let Some(seq) = parse_segment_name(&entry.file_name().to_string_lossy()) {
            out.push(seq);
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Replays one segment into `fold`, repairing a torn final line in
/// place (truncate + fsync) before parsing.
fn replay_segment(path: &Path, fold: &mut Fold) -> Result<(), String> {
    let data = std::fs::read(path).map_err(|e| format!("cannot read manifest {path:?}: {e}"))?;
    // Every append is `<line>\n`; a file that does not end in a newline
    // was torn mid-append. Truncate the fragment now — appending after
    // it would glue the next (acknowledged!) event onto the tear,
    // producing one unparseable line and losing that event on the
    // following restart.
    let keep = if data.last().is_some_and(|&b| b != b'\n') {
        data.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1)
    } else {
        data.len()
    };
    if keep < data.len() {
        let f = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| format!("cannot repair manifest {path:?}: {e}"))?;
        f.set_len(keep as u64)
            .and_then(|()| f.sync_all())
            .map_err(|e| format!("cannot repair manifest {path:?}: {e}"))?;
    }
    for raw in data[..keep].split(|&b| b == b'\n') {
        let line = String::from_utf8_lossy(raw);
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = Json::parse(&line) else {
            eprintln!("datamime-served: skipping corrupt manifest line: {line}");
            continue;
        };
        apply(fold, &v)?;
    }
    Ok(())
}

fn checkpoint_json(fold: &Fold, covers: u64) -> String {
    let mut s = String::from("{\"covers\":");
    s.push_str(&covers.to_string());
    s.push_str(",\"gcd\":");
    s.push_str(&fold.gcd.to_string());
    s.push_str(",\"max_job\":");
    s.push_str(&fold.max_job.to_string());
    s.push_str(",\"pending_gc\":[");
    for (i, job) in fold.pending_gc.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_str_escaped(&mut s, job);
    }
    s.push_str("],\"jobs\":[");
    for (i, (id, e)) in fold.jobs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"job\":");
        push_str_escaped(&mut s, id);
        s.push_str(",\"spec\":");
        push_str_escaped(&mut s, &e.spec);
        s.push_str(",\"state\":\"");
        s.push_str(e.state.as_str());
        s.push('"');
        if let Some(err) = e.best_error {
            s.push_str(",\"best_error\":");
            push_f64(&mut s, err);
        }
        s.push_str(",\"best_unit\":");
        push_f64_array(&mut s, &e.best_unit);
        if let Some(d) = &e.detail {
            s.push_str(",\"detail\":");
            push_str_escaped(&mut s, d);
        }
        s.push('}');
    }
    s.push_str("]}");
    s
}

/// Loads a published checkpoint. Corruption here is loud: the rename
/// publish is atomic, so a checkpoint that parses wrong was damaged
/// after the fact and silently ignoring it would resurrect GC'd jobs.
fn load_checkpoint(path: &Path) -> Result<(Fold, u64), String> {
    let data = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read checkpoint {path:?}: {e}"))?;
    let v = Json::parse(data.trim()).map_err(|e| format!("corrupt checkpoint {path:?}: {e}"))?;
    let covers =
        v.get("covers")
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("corrupt checkpoint {path:?}: missing covers"))? as u64;
    let gcd = v
        .get("gcd")
        .and_then(Json::as_usize)
        .ok_or_else(|| format!("corrupt checkpoint {path:?}: missing gcd"))? as u64;
    let max_job =
        v.get("max_job")
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("corrupt checkpoint {path:?}: missing max_job"))? as u64;
    let pending_gc: Vec<String> = v
        .get("pending_gc")
        .and_then(Json::as_arr)
        .map(|xs| {
            xs.iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    let mut jobs = BTreeMap::new();
    if let Some(arr) = v.get("jobs").and_then(Json::as_arr) {
        for jv in arr {
            let id = jv
                .get("job")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("corrupt checkpoint {path:?}: job without id"))?;
            let spec = jv
                .get("spec")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("corrupt checkpoint {path:?}: job {id} without spec"))?;
            let state_s = jv
                .get("state")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("corrupt checkpoint {path:?}: job {id} without state"))?;
            let state = JobState::parse(state_s).ok_or_else(|| {
                format!("corrupt checkpoint {path:?}: job {id} has unknown state `{state_s}`")
            })?;
            jobs.insert(
                id.to_string(),
                JobEntry {
                    spec: spec.to_string(),
                    state,
                    best_error: jv.get("best_error").and_then(Json::as_f64),
                    best_unit: jv
                        .get("best_unit")
                        .and_then(Json::as_arr)
                        .map(|xs| xs.iter().filter_map(Json::as_f64).collect())
                        .unwrap_or_default(),
                    detail: jv.get("detail").and_then(Json::as_str).map(str::to_string),
                },
            );
        }
    }
    Ok((
        Fold {
            jobs,
            pending_gc,
            gcd,
            max_job,
        },
        covers,
    ))
}

/// Numeric suffix of a `job-NNNN` id, for high-water tracking.
fn job_number(job: &str) -> Option<u64> {
    job.rsplit('-').next()?.parse().ok()
}

fn apply(fold: &mut Fold, v: &Json) -> Result<(), String> {
    let event = v
        .get("event")
        .and_then(Json::as_str)
        .ok_or("manifest line without an event")?;
    let job = v
        .get("job")
        .and_then(Json::as_str)
        .ok_or("manifest line without a job id")?
        .to_string();
    match event {
        "submit" => {
            let spec = v
                .get("spec")
                .and_then(Json::as_str)
                .ok_or("manifest submit without a spec")?
                .to_string();
            if let Some(n) = job_number(&job) {
                fold.max_job = fold.max_job.max(n);
            }
            fold.jobs.insert(
                job,
                JobEntry {
                    spec,
                    state: JobState::Submitted,
                    best_error: None,
                    best_unit: Vec::new(),
                    detail: None,
                },
            );
        }
        "gc" => {
            // Durable intent: the job is gone from the table now; the
            // directory removal may still be in flight (or lost to a
            // crash — then `pending_gc` resumes it on the next open).
            fold.jobs.remove(&job);
            if !fold.pending_gc.contains(&job) {
                fold.pending_gc.push(job);
            }
        }
        "gc_done" => {
            fold.pending_gc.retain(|j| j != &job);
            fold.gcd += 1;
        }
        "start" | "done" | "cancel" | "fail" | "quota" => {
            // An unknown job here means its submit line was lost to
            // corruption. That job is gone either way; skipping keeps
            // the daemon startable, which beats refusing to open.
            let Some(entry) = fold.jobs.get_mut(&job) else {
                eprintln!("datamime-served: skipping manifest {event} for unknown job {job}");
                return Ok(());
            };
            match event {
                "start" => entry.state = JobState::Running,
                "cancel" => entry.state = JobState::Cancelled,
                "fail" => {
                    entry.state = JobState::Failed;
                    entry.detail = v.get("detail").and_then(Json::as_str).map(str::to_string);
                }
                "quota" => {
                    entry.state = JobState::QuotaExceeded;
                    entry.best_error = v.get("best_error").and_then(Json::as_f64);
                    entry.best_unit = v
                        .get("best_unit")
                        .and_then(Json::as_arr)
                        .map(|xs| xs.iter().filter_map(Json::as_f64).collect())
                        .unwrap_or_default();
                    entry.detail = v.get("cause").and_then(Json::as_str).map(str::to_string);
                }
                _ => {
                    entry.state = JobState::Done;
                    entry.best_error = v.get("best_error").and_then(Json::as_f64);
                    entry.best_unit = v
                        .get("best_unit")
                        .and_then(Json::as_arr)
                        .map(|xs| xs.iter().filter_map(Json::as_f64).collect())
                        .unwrap_or_default();
                }
            }
        }
        other => return Err(format!("unknown manifest event `{other}`")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamime_runtime::diskfault::{DiskFaultKind, DiskFaultPlan};

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("datamime-manifest-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn with_faults(plan: DiskFaultPlan) -> ManifestOptions {
        ManifestOptions {
            segment_bytes: None,
            faults: Some(DiskFaultInjector::new(plan)),
        }
    }

    #[test]
    fn transitions_fold_and_survive_reopen() {
        let root = tmp("fold");
        {
            let (mut m, jobs) = Manifest::open(&root).unwrap();
            assert!(jobs.is_empty());
            m.submit("job-0001", "workload=mem-fb iters=4").unwrap();
            m.submit("job-0002", "workload=xapian iters=4").unwrap();
            m.start("job-0001").unwrap();
            m.start("job-0002").unwrap();
            m.done("job-0001", 0.25, &[0.5, 0.75]).unwrap();
            m.cancel("job-0002").unwrap();
        }
        let (_m, jobs) = Manifest::open(&root).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs["job-0001"].state, JobState::Done);
        assert_eq!(jobs["job-0001"].best_error, Some(0.25));
        assert_eq!(jobs["job-0001"].best_unit, vec![0.5, 0.75]);
        assert_eq!(jobs["job-0002"].state, JobState::Cancelled);
        assert_eq!(jobs["job-0002"].spec, "workload=xapian iters=4");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn failure_detail_is_preserved() {
        let root = tmp("fail");
        {
            let (mut m, _) = Manifest::open(&root).unwrap();
            m.submit("job-0001", "workload=nope").unwrap();
            m.fail("job-0001", "unknown workload \"nope\"").unwrap();
        }
        let (_m, jobs) = Manifest::open(&root).unwrap();
        assert_eq!(jobs["job-0001"].state, JobState::Failed);
        assert_eq!(
            jobs["job-0001"].detail.as_deref(),
            Some("unknown workload \"nope\"")
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn quota_stop_folds_with_best_so_far_and_cause() {
        let root = tmp("quota");
        {
            let (mut m, _) = Manifest::open(&root).unwrap();
            m.submit("job-0001", "workload=mem-fb iters=24 max_evals=8")
                .unwrap();
            m.start("job-0001").unwrap();
            m.quota("job-0001", 0.5, &[0.25], "max_evals").unwrap();
        }
        let (_m, jobs) = Manifest::open(&root).unwrap();
        assert_eq!(jobs["job-0001"].state, JobState::QuotaExceeded);
        assert_eq!(jobs["job-0001"].best_error, Some(0.5));
        assert_eq!(jobs["job-0001"].best_unit, vec![0.25]);
        assert_eq!(jobs["job-0001"].detail.as_deref(), Some("max_evals"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn two_phase_gc_folds_and_pending_intent_survives_crash() {
        let root = tmp("gc");
        {
            let (mut m, _) = Manifest::open(&root).unwrap();
            m.submit("job-0001", "workload=mem-fb").unwrap();
            m.done("job-0001", 0.5, &[]).unwrap();
            m.submit("job-0002", "workload=mem-fb").unwrap();
            m.gc_intent("job-0001").unwrap();
            // Crash here: directory removal never confirmed.
        }
        {
            let (mut m, jobs) = Manifest::open(&root).unwrap();
            assert!(!jobs.contains_key("job-0001"), "gc'd job left the table");
            assert_eq!(m.take_pending_gc(), vec!["job-0001".to_string()]);
            assert_eq!(m.wal_stats().gcd_jobs, 0);
            m.gc_done("job-0001").unwrap();
            assert!(m.take_pending_gc().is_empty());
            assert_eq!(m.wal_stats().gcd_jobs, 1);
        }
        let (m, jobs) = Manifest::open(&root).unwrap();
        assert_eq!(jobs.len(), 1);
        assert!(m.take_pending_gc().is_empty());
        // Numbering never recycles a GC'd id.
        assert_eq!(m.next_job_number(), 3);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn rotation_checkpoints_and_deletes_covered_segments() {
        let root = tmp("rotate");
        let opts = ManifestOptions {
            segment_bytes: Some(1), // rotate on every append after the first
            faults: None,
        };
        {
            let (mut m, _) = Manifest::open_with(&root, opts.clone()).unwrap();
            for i in 1..=5u32 {
                let job = format!("job-{i:04}");
                m.submit(&job, "workload=mem-fb iters=4").unwrap();
                m.start(&job).unwrap();
                m.done(&job, f64::from(i) * 0.1, &[0.5]).unwrap();
            }
            let stats = m.wal_stats();
            assert!(stats.checkpoint_seq > 0, "no checkpoint after rotations");
            assert!(
                stats.segments <= 2,
                "covered segments not deleted: {stats:?}"
            );
            assert_eq!(stats.checkpoint_failures, 0);
        }
        assert!(root.join(CHECKPOINT_FILE).exists());
        let (m, jobs) = Manifest::open_with(&root, opts).unwrap();
        assert_eq!(jobs.len(), 5);
        for i in 1..=5u32 {
            let e = &jobs[&format!("job-{i:04}")];
            assert_eq!(e.state, JobState::Done);
            assert_eq!(e.best_error, Some(f64::from(i) * 0.1));
        }
        assert_eq!(m.next_job_number(), 6);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_checkpoint_temp_is_removed_on_open() {
        let root = tmp("staletmp");
        {
            let (mut m, _) = Manifest::open(&root).unwrap();
            m.submit("job-0001", "workload=mem-fb").unwrap();
        }
        // Crash between temp write and rename leaves garbage here.
        std::fs::write(root.join(CHECKPOINT_TMP), b"{\"covers\":99,to").unwrap();
        let (_m, jobs) = Manifest::open(&root).unwrap();
        assert_eq!(jobs.len(), 1);
        assert!(!root.join(CHECKPOINT_TMP).exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn legacy_manifest_is_migrated_to_segment_one() {
        let root = tmp("legacy");
        std::fs::write(
            root.join(MANIFEST_FILE),
            "{\"event\":\"submit\",\"job\":\"job-0001\",\"spec\":\"workload=mem-fb\"}\n",
        )
        .unwrap();
        let (m, jobs) = Manifest::open(&root).unwrap();
        assert_eq!(jobs.len(), 1);
        assert!(!root.join(MANIFEST_FILE).exists());
        assert!(root.join(segment_file_name(1)).exists());
        assert_eq!(m.next_job_number(), 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_tail_is_ignored_but_interior_events_fold() {
        let root = tmp("torn");
        {
            let (mut m, _) = Manifest::open(&root).unwrap();
            m.submit("job-0001", "workload=mem-fb").unwrap();
            m.start("job-0001").unwrap();
        }
        // Simulate a crash mid-append: a torn, unparseable final line on
        // the active segment.
        let path = root.join(segment_file_name(1));
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"event\":\"done\",\"jo").unwrap();
        drop(f);
        let (_m, jobs) = Manifest::open(&root).unwrap();
        assert_eq!(jobs["job-0001"].state, JobState::Running);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_tail_is_truncated_so_post_restart_appends_survive() {
        let root = tmp("repair");
        {
            let (mut m, _) = Manifest::open(&root).unwrap();
            m.submit("job-0001", "workload=mem-fb").unwrap();
        }
        let path = root.join(segment_file_name(1));
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"event\":\"submit\",\"job\":\"job-00")
            .unwrap();
        drop(f);
        // Restart: the tear is repaired, and a fresh acknowledged event
        // appended afterwards must fold on the *next* restart too (the
        // original bug glued it onto the fragment and lost it).
        {
            let (mut m, jobs) = Manifest::open(&root).unwrap();
            assert_eq!(jobs.len(), 1);
            m.submit("job-0002", "workload=xapian").unwrap();
            m.start("job-0002").unwrap();
        }
        let (_m, jobs) = Manifest::open(&root).unwrap();
        assert_eq!(jobs["job-0002"].state, JobState::Running);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn events_for_unknown_jobs_are_skipped_not_fatal() {
        let root = tmp("orphan");
        std::fs::write(
            root.join(MANIFEST_FILE),
            "{\"event\":\"start\",\"job\":\"job-0009\"}\n\
             {\"event\":\"submit\",\"job\":\"job-0001\",\"spec\":\"workload=mem-fb\"}\n\
             {\"event\":\"done\",\"job\":\"job-0009\",\"best_error\":0.5,\"best_unit\":[]}\n",
        )
        .unwrap();
        let (_m, jobs) = Manifest::open(&root).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs["job-0001"].state, JobState::Submitted);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unknown_events_are_loud_even_in_old_segments() {
        let root = tmp("loud");
        std::fs::write(
            root.join(segment_file_name(1)),
            "{\"event\":\"explode\",\"job\":\"j\"}\n",
        )
        .unwrap();
        std::fs::write(
            root.join(segment_file_name(2)),
            "{\"event\":\"submit\",\"job\":\"job-0001\",\"spec\":\"workload=mem-fb\"}\n",
        )
        .unwrap();
        assert!(Manifest::open(&root).is_err());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_enospc_fails_the_append_and_flags_no_space() {
        let root = tmp("enospc");
        let plan = DiskFaultPlan::new().fail(DiskTarget::Manifest, 1, DiskFaultKind::NoSpace);
        {
            let (mut m, _) = Manifest::open_with(&root, with_faults(plan)).unwrap();
            m.submit("job-0001", "workload=mem-fb").unwrap(); // op 0 ok
            let err = m.start("job-0001").unwrap_err(); // op 1 injected
            assert!(err.no_space, "{err}");
            assert!(m.no_space_seen());
            // The failed event did not fold...
            assert_eq!(m.next_job_number(), 2);
            // ...and later appends still work on the repaired tail.
            m.cancel("job-0001").unwrap();
        }
        let (_m, jobs) = Manifest::open(&root).unwrap();
        assert_eq!(jobs["job-0001"].state, JobState::Cancelled);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_short_write_self_repairs_so_later_appends_fold() {
        let root = tmp("short");
        let plan = DiskFaultPlan::new().fail(DiskTarget::Manifest, 1, DiskFaultKind::ShortWrite);
        {
            let (mut m, _) = Manifest::open_with(&root, with_faults(plan)).unwrap();
            m.submit("job-0001", "workload=mem-fb").unwrap();
            assert!(m.start("job-0001").is_err()); // torn half-record, truncated back
            m.done("job-0001", 0.5, &[0.1]).unwrap();
        }
        let (_m, jobs) = Manifest::open(&root).unwrap();
        assert_eq!(jobs["job-0001"].state, JobState::Done);
        assert_eq!(jobs["job-0001"].best_error, Some(0.5));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn failed_checkpoint_keeps_previous_one_authoritative() {
        let root = tmp("ckptfail");
        let opts = ManifestOptions {
            segment_bytes: Some(1),
            faults: Some(DiskFaultInjector::new(
                // Every checkpoint attempt hits ENOSPC.
                (0..64).fold(DiskFaultPlan::new(), |p, n| {
                    p.fail(DiskTarget::Checkpoint, n, DiskFaultKind::NoSpace)
                }),
            )),
        };
        {
            let (mut m, _) = Manifest::open_with(&root, opts).unwrap();
            for i in 1..=3u32 {
                let job = format!("job-{i:04}");
                m.submit(&job, "workload=mem-fb").unwrap();
                m.done(&job, 0.5, &[]).unwrap();
            }
            let stats = m.wal_stats();
            assert!(stats.checkpoint_failures > 0);
            assert_eq!(stats.checkpoint_seq, 0, "no checkpoint may publish");
            assert!(m.no_space_seen());
            // Without checkpoints no segment may be deleted: the chain
            // is the only copy of history.
            assert_eq!(stats.segments as usize, {
                let mut n = 0;
                for e in std::fs::read_dir(&root).unwrap().flatten() {
                    if parse_segment_name(&e.file_name().to_string_lossy()).is_some() {
                        n += 1;
                    }
                }
                n
            });
        }
        assert!(!root.join(CHECKPOINT_FILE).exists());
        assert!(!root.join(CHECKPOINT_TMP).exists());
        let (_m, jobs) = Manifest::open(&root).unwrap();
        assert_eq!(jobs.len(), 3);
        for e in jobs.values() {
            assert_eq!(e.state, JobState::Done);
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
