//! Deterministic fair scheduling of concurrent search jobs.
//!
//! Every job runs the *unmodified* `search_with_runtime` loop on its own
//! thread, with its own optimizer, memo context, journal, and seeded RNG
//! — which is what keeps a daemon-run job bit-identical to the one-shot
//! CLI. Fairness is imposed from outside the loop via the executor's
//! [`BatchGate`]: [`FairGate`] hands out [`Ticket`]s, and a job may only
//! dispatch an evaluation batch while it holds its turn in a strict
//! round-robin over registered tickets. A gate can *delay* a dispatch or
//! *stop* a run at a batch boundary, but never reorder or alter
//! observations, so fixed-seed results are unaffected by however many
//! tenants share the daemon.
//!
//! Cancellation and shutdown ride the same mechanism: a cancelled
//! ticket's next `enter` returns [`GateClosed::Cancelled`]; closing the
//! gate fails every waiter with [`GateClosed::Shutdown`]. Either way the
//! run stops cleanly between batches, leaving a resumable journal.

use datamime_runtime::{BatchGate, GateClosed};
use std::collections::BTreeSet;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

#[derive(Debug, Default)]
struct State {
    /// Active ticket seqs, registration order. The round-robin cycles
    /// over this queue.
    queue: Vec<u64>,
    /// Index into `queue` of the ticket whose turn it is.
    turn: usize,
    /// Whether the turn holder is currently inside a dispatch.
    holding: bool,
    /// Tickets whose next `enter` must fail with `Cancelled`.
    cancelled: BTreeSet<u64>,
    /// Whether the gate is closed (daemon shutting down).
    closed: bool,
    /// Next ticket seq.
    next_seq: u64,
}

#[derive(Debug, Default)]
struct Inner {
    state: Mutex<State>,
    cv: Condvar,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A strict round-robin batch gate over any number of job tickets. See
/// the module docs.
#[derive(Debug, Clone, Default)]
pub struct FairGate {
    inner: Arc<Inner>,
}

impl FairGate {
    /// An open gate with no tickets.
    pub fn new() -> Self {
        FairGate::default()
    }

    /// Registers a new job at the back of the round-robin and returns its
    /// ticket. Install the ticket as the job's `batch_gate`; dropping it
    /// (or [`FairGate::finish`]) removes the job from the rotation.
    pub fn register(&self) -> Ticket {
        let mut s = self.inner.lock();
        let seq = s.next_seq;
        s.next_seq += 1;
        s.queue.push(seq);
        drop(s);
        self.inner.cv.notify_all();
        Ticket {
            inner: Arc::clone(&self.inner),
            seq,
        }
    }

    /// Marks `seq` cancelled: its next `enter` fails with
    /// [`GateClosed::Cancelled`] (a dispatch already in flight completes
    /// first — cancellation is a batch-boundary event).
    pub fn cancel(&self, seq: u64) {
        let mut s = self.inner.lock();
        s.cancelled.insert(seq);
        drop(s);
        self.inner.cv.notify_all();
    }

    /// Removes `seq` from the rotation (idempotent; also what
    /// [`Ticket`]'s `Drop` does).
    pub fn finish(&self, seq: u64) {
        deregister(&self.inner, seq);
    }

    /// Closes the gate: every current and future `enter` fails with
    /// [`GateClosed::Shutdown`]. In-flight dispatches drain first.
    pub fn close(&self) {
        let mut s = self.inner.lock();
        s.closed = true;
        drop(s);
        self.inner.cv.notify_all();
    }

    /// How many tickets are registered (tests and stats).
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Whether no tickets are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn deregister(inner: &Inner, seq: u64) {
    let mut s = inner.lock();
    if let Some(pos) = s.queue.iter().position(|&q| q == seq) {
        s.queue.remove(pos);
        // Keep `turn` pointing at the same ticket where possible; if the
        // holder itself left, its successor (now at `pos`) is up next.
        if pos < s.turn {
            s.turn -= 1;
        } else if pos == s.turn {
            s.holding = false;
        }
        if !s.queue.is_empty() {
            s.turn %= s.queue.len();
        } else {
            s.turn = 0;
        }
    }
    s.cancelled.remove(&seq);
    drop(s);
    inner.cv.notify_all();
}

/// One job's membership in a [`FairGate`] rotation. Implements
/// [`BatchGate`]; wrap it in a
/// [`GateHandle`](datamime_runtime::GateHandle) and hand it to the job's
/// `RuntimeOptions`.
#[derive(Debug)]
pub struct Ticket {
    inner: Arc<Inner>,
    seq: u64,
}

impl Ticket {
    /// The ticket's seq — the handle [`FairGate::cancel`] /
    /// [`FairGate::finish`] take.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl BatchGate for Ticket {
    fn enter(&self) -> Result<(), GateClosed> {
        let mut s = self.inner.lock();
        loop {
            if s.closed {
                return Err(GateClosed::Shutdown);
            }
            if s.cancelled.contains(&self.seq) {
                return Err(GateClosed::Cancelled);
            }
            let my_turn = s.queue.get(s.turn) == Some(&self.seq);
            if my_turn && !s.holding {
                s.holding = true;
                return Ok(());
            }
            s = self
                .inner
                .cv
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn leave(&self) {
        let mut s = self.inner.lock();
        if s.holding && s.queue.get(s.turn) == Some(&self.seq) {
            s.holding = false;
            if !s.queue.is_empty() {
                s.turn = (s.turn + 1) % s.queue.len();
            }
        }
        drop(s);
        self.inner.cv.notify_all();
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        deregister(&self.inner, self.seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn single_ticket_enters_immediately() {
        let gate = FairGate::new();
        let t = gate.register();
        assert_eq!(gate.len(), 1);
        t.enter().unwrap();
        t.leave();
        t.enter().unwrap();
        t.leave();
        drop(t);
        assert!(gate.is_empty());
    }

    #[test]
    fn two_tickets_alternate_in_lockstep() {
        let gate = FairGate::new();
        let a = Arc::new(gate.register());
        let b = Arc::new(gate.register());
        let log = Arc::new(Mutex::new(Vec::new()));
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for (name, t) in [("a", Arc::clone(&a)), ("b", Arc::clone(&b))] {
            let log = Arc::clone(&log);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                for _ in 0..3 {
                    t.enter().unwrap();
                    log.lock().unwrap().push(name);
                    t.leave();
                }
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let log = log.lock().unwrap().clone();
        assert_eq!(log, vec!["a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn cancel_fails_the_next_enter_and_frees_the_rotation() {
        let gate = FairGate::new();
        let a = gate.register();
        let b = gate.register();
        a.enter().unwrap();
        gate.cancel(b.seq());
        assert_eq!(b.enter(), Err(GateClosed::Cancelled));
        a.leave();
        gate.finish(b.seq());
        // With b out of the rotation, a keeps running alone.
        a.enter().unwrap();
        a.leave();
    }

    #[test]
    fn close_fails_every_waiter_with_shutdown() {
        let gate = FairGate::new();
        let a = gate.register();
        let b = gate.register();
        a.enter().unwrap();
        let waiter = std::thread::spawn(move || b.enter());
        std::thread::sleep(Duration::from_millis(20));
        gate.close();
        assert_eq!(waiter.join().unwrap(), Err(GateClosed::Shutdown));
        a.leave();
        assert_eq!(a.enter(), Err(GateClosed::Shutdown));
    }

    #[test]
    fn dropping_the_turn_holder_advances_the_turn() {
        let gate = FairGate::new();
        let a = gate.register();
        let b = gate.register();
        drop(a); // never entered; b must get the turn
        b.enter().unwrap();
        b.leave();
    }
}
