//! datamime-serve: the long-running multi-tenant search daemon.
//!
//! Turns the one-shot `datamime clone` search into a service
//! (DESIGN.md §9):
//!
//! - [`server`] — `datamime-served`: a job API over a Unix socket
//!   speaking the [`datamime_dist`] frame protocol, plus a
//!   Pelikan-style plaintext admin plane (`stats` / `version` /
//!   `shutdown`);
//! - [`sched`] — a deterministic fair scheduler: jobs share the machine
//!   through a strict round-robin [`BatchGate`] that interleaves their
//!   evaluation batches without ever reordering one job's observations,
//!   so a fixed-seed job run through the daemon is bit-identical to the
//!   one-shot CLI;
//! - [`manifest`] — a fsync-on-commit, *segmented* write-ahead log of
//!   job lifecycle transitions with compacted checkpoints, two-phase GC
//!   records, and deterministic disk-fault injection; after a crash (or
//!   a graceful drain) the daemon replays checkpoint + newer segments
//!   and resumes every in-flight job from its evaluation journal.
//!
//! The client side — [`ServeClient`](datamime::servectl::ServeClient) and
//! the `datamime ctl` subcommand — lives in the core crate.
//!
//! [`BatchGate`]: datamime_runtime::BatchGate

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manifest;
pub mod sched;
pub mod server;

pub use manifest::{
    segment_file_name, JobEntry, Manifest, ManifestOptions, WalError, WalStats, CHECKPOINT_FILE,
    DEFAULT_SEGMENT_BYTES, MANIFEST_FILE,
};
pub use sched::{FairGate, Ticket};
pub use server::{run, run_with, ServeOptions};
