//! The daemon: sockets, job lifecycle, and the admin plane.
//!
//! One process, three concerns:
//!
//! - **job API** (`job.sock`): the [`datamime_dist`] frame protocol, one
//!   request/response per connection — submit, status, result, cancel,
//!   list. Specs are [`JobSpec`] `key=value` lines, validated at submit
//!   time;
//! - **scheduling**: every accepted job runs the unmodified
//!   `search_with_runtime` loop on its own thread, interleaved with its
//!   tenants through the [`FairGate`] round-robin (see [`crate::sched`]);
//! - **durability**: the [`Manifest`] WAL records lifecycle transitions
//!   with fsync-on-commit, and each job journals its evaluations under
//!   `jobs/<id>/journal.jsonl`. On startup both are replayed: every job
//!   whose manifest state is non-terminal is resumed from its journal
//!   and runs to the same result it would have reached uninterrupted;
//! - **admin plane** (`admin.sock`): plain text `stats` / `version` /
//!   `shutdown`. Stats are the daemon's [`MetricsRegistry`] — monotonic
//!   counters (jobs submitted/completed/failed, evaluations, cache hits,
//!   worker restarts, per-stage milliseconds) plus gauges — in
//!   deterministic sorted order. `shutdown` drains: gates close, jobs
//!   stop at their next batch boundary leaving resumable journals, and
//!   the process exits 0.

use crate::manifest::{JobEntry, Manifest};
use crate::sched::FairGate;
use datamime::jobspec::JobSpec;
use datamime::profiler::profile_workload;
use datamime::search::search_with_runtime;
use datamime::servectl::{JobState, ADMIN_SOCKET, JOB_SOCKET};
use datamime_dist::{read_frame, write_frame, Frame};
use datamime_runtime::{
    ExecError, GateClosed, GateHandle, MetricsRegistry, ProgressSink, RunMeta, SharedSink,
    TermSignal,
};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Live progress of one job, updated by its [`JobSink`] and read by the
/// status endpoint.
#[derive(Debug)]
struct JobProgress {
    /// Observations so far (fresh evaluations, cache hits, and replayed
    /// journal points).
    evals: AtomicU64,
    /// IEEE-754 bits of the incumbent best error (`f64::INFINITY` until
    /// the first fresh observation).
    best_bits: AtomicU64,
}

impl JobProgress {
    fn new() -> Self {
        JobProgress {
            evals: AtomicU64::new(0),
            best_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }
}

/// The per-job progress sink installed as the run's `extra_sink`.
#[derive(Debug)]
struct JobSink {
    progress: Arc<JobProgress>,
}

impl ProgressSink for JobSink {
    fn on_start(&mut self, _meta: &RunMeta) {}

    fn on_replay(&mut self, count: usize) {
        self.progress
            .evals
            .fetch_add(count as u64, Ordering::SeqCst);
    }

    fn on_eval(&mut self, _index: usize, _error: f64, best_error: f64) {
        self.progress.evals.fetch_add(1, Ordering::SeqCst);
        self.progress
            .best_bits
            .store(best_error.to_bits(), Ordering::SeqCst);
    }

    fn on_cache_hit(&mut self, _index: usize, _source: usize) {
        self.progress.evals.fetch_add(1, Ordering::SeqCst);
    }
}

/// Server-side record of one job.
#[derive(Debug)]
struct JobRecord {
    state: JobState,
    iterations: u64,
    progress: Arc<JobProgress>,
    gate_seq: Option<u64>,
    cancel_requested: bool,
    result: Option<(f64, Vec<f64>)>,
    detail: Option<String>,
}

/// State shared between the accept loop, connection handlers, and job
/// threads.
struct Shared {
    root: PathBuf,
    jobs: Mutex<BTreeMap<String, JobRecord>>,
    manifest: Mutex<Manifest>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    gate: FairGate,
    metrics: Arc<MetricsRegistry>,
    next_job: AtomicU64,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn job_dir(&self, job: &str) -> PathBuf {
        self.root.join("jobs").join(job)
    }

    fn journal_path(&self, job: &str) -> PathBuf {
        self.job_dir(job).join("journal.jsonl")
    }

    fn journal_rel(job: &str) -> String {
        format!("jobs/{job}/journal.jsonl")
    }

    fn set_state(&self, job: &str, state: JobState) {
        let mut jobs = lock(&self.jobs);
        if let Some(rec) = jobs.get_mut(job) {
            rec.state = state;
        }
        let active = jobs
            .values()
            .filter(|r| r.state == JobState::Running)
            .count();
        self.metrics.set_gauge("jobs_active", active as u64);
    }
}

/// Runs the daemon rooted at `root` until `term` requests termination
/// (SIGTERM/SIGINT via the sentinel, or the admin `shutdown` command).
/// Replays the manifest first, resuming every non-terminal job.
///
/// # Errors
///
/// Fails on state-root or socket I/O errors; job failures are recorded
/// in the manifest, not returned.
pub fn run(root: PathBuf, term: TermSignal) -> Result<(), String> {
    std::fs::create_dir_all(root.join("jobs"))
        .map_err(|e| format!("cannot create state root {root:?}: {e}"))?;
    let (manifest, entries) = Manifest::open(&root)?;
    let shared = Arc::new(Shared {
        root: root.clone(),
        jobs: Mutex::new(BTreeMap::new()),
        manifest: Mutex::new(manifest),
        threads: Mutex::new(Vec::new()),
        gate: FairGate::new(),
        metrics: Arc::new(MetricsRegistry::new()),
        next_job: AtomicU64::new(next_job_number(&entries)),
    });
    resume_jobs(&shared, entries);

    let job_listener = bind(&root.join(JOB_SOCKET))?;
    let admin_listener = bind(&root.join(ADMIN_SOCKET))?;
    eprintln!("datamime-served: listening under {}", root.display());

    // Each connection is handled on its own short-lived thread: a client
    // that connects and then stalls (up to the 5s read timeout) must not
    // freeze the job API, the admin plane, or shutdown observation.
    while !term.requested() {
        let mut idle = true;
        if let Ok((conn, _)) = job_listener.accept() {
            idle = false;
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let mut conn = conn;
                handle_job_conn(&shared, &mut conn);
            });
        }
        if let Ok((conn, _)) = admin_listener.accept() {
            idle = false;
            let shared = Arc::clone(&shared);
            let term = term.clone();
            std::thread::spawn(move || {
                let mut conn = conn;
                handle_admin_conn(&shared, &mut conn, &term);
            });
        }
        if idle {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    // Drain: stop admitting batches, let every job thread stop at its
    // next batch boundary (journals and the manifest are already safe on
    // disk — an interrupted job replays on the next start).
    eprintln!("datamime-served: draining ...");
    shared.gate.close();
    let threads = std::mem::take(&mut *lock(&shared.threads));
    for t in threads {
        let _ = t.join();
    }
    let _ = std::fs::remove_file(root.join(JOB_SOCKET));
    let _ = std::fs::remove_file(root.join(ADMIN_SOCKET));
    Ok(())
}

fn bind(path: &PathBuf) -> Result<UnixListener, String> {
    // A daemon killed with SIGKILL leaves its socket files behind; a
    // fresh bind must replace them.
    let _ = std::fs::remove_file(path);
    let listener =
        UnixListener::bind(path).map_err(|e| format!("cannot listen on {path:?}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot poll {path:?}: {e}"))?;
    Ok(listener)
}

/// The highest job number in `entries`, plus one.
fn next_job_number(entries: &BTreeMap<String, JobEntry>) -> u64 {
    entries
        .keys()
        .filter_map(|id| id.strip_prefix("job-"))
        .filter_map(|n| n.parse::<u64>().ok())
        .max()
        .map_or(1, |n| n + 1)
}

/// Re-creates job records from replayed manifest entries and restarts
/// every non-terminal job from its journal.
fn resume_jobs(shared: &Arc<Shared>, entries: BTreeMap<String, JobEntry>) {
    for (id, entry) in entries {
        let iterations = JobSpec::parse(&entry.spec).map_or(0, |s| s.iters as u64);
        let progress = Arc::new(JobProgress::new());
        if let Some(err) = entry.best_error {
            progress.best_bits.store(err.to_bits(), Ordering::SeqCst);
        }
        let record = JobRecord {
            state: entry.state,
            iterations,
            progress,
            gate_seq: None,
            cancel_requested: false,
            result: entry.best_error.map(|e| (e, entry.best_unit.clone())),
            detail: entry.detail,
        };
        let resume = !record.state.is_terminal();
        lock(&shared.jobs).insert(id.clone(), record);
        if resume {
            shared.metrics.incr("jobs_resumed");
            spawn_job(shared, id, entry.spec, true);
        }
    }
}

fn spawn_job(shared: &Arc<Shared>, job: String, spec_line: String, resume: bool) {
    let shared2 = Arc::clone(shared);
    let handle = std::thread::spawn(move || run_job(&shared2, &job, &spec_line, resume));
    lock(&shared.threads).push(handle);
}

/// The body of one job thread: build the search exactly as the one-shot
/// CLI would, run it under the fair gate, and record the outcome.
fn run_job(shared: &Arc<Shared>, job: &str, spec_line: &str, resume: bool) {
    let outcome = (|| -> Result<(), String> {
        let spec = JobSpec::parse(spec_line)?;
        let target = spec.target()?;
        let cfg = spec.search_config()?;
        let generator = spec.generator()?;
        std::fs::create_dir_all(shared.job_dir(job))
            .map_err(|e| format!("cannot create job dir: {e}"))?;

        shared.set_state(job, JobState::Running);
        if let Err(e) = lock(&shared.manifest).start(job) {
            eprintln!("datamime-served: cannot record start of {job}: {e}");
        }

        let progress = lock(&shared.jobs)
            .get(job)
            .map(|r| Arc::clone(&r.progress))
            .ok_or("job record vanished")?;

        // Profiling runs *outside* the fair rotation: it only touches
        // this job's own target workload, and joining the round-robin
        // before this potentially minutes-long phase would make every
        // other tenant block on its turn until profiling finished.
        let target_profile = profile_workload(&target, &cfg.machine, &cfg.profiling);

        // Join the rotation only now, at the edge of the search. A
        // cancel that arrived while profiling (gate_seq was still None)
        // is honoured here; one that lands after this check is caught by
        // the gate at the first batch boundary.
        let ticket = shared.gate.register();
        let seq = ticket.seq();
        let cancelled = {
            let mut jobs = lock(&shared.jobs);
            let rec = jobs.get_mut(job).ok_or("job record vanished")?;
            rec.gate_seq = Some(seq);
            if rec.cancel_requested {
                shared.gate.cancel(seq);
            }
            rec.cancel_requested
        };
        if cancelled {
            drop(ticket); // deregisters from the rotation
            record_cancelled(shared, job);
            return Ok(());
        }

        let journal = shared.journal_path(job);
        // Resume via a sidecar: the previous journal is renamed aside and
        // the run rewrites a fresh, self-contained journal (the executor
        // re-records the replayed prefix). Appending to the crashed file
        // instead would glue new records onto a torn final line if the
        // SIGKILL landed mid-write. A journal without a readable header
        // (killed before the first append) is ignored and the job simply
        // starts over.
        let sidecar = shared.job_dir(job).join("journal.resume.jsonl");
        let resume_from =
            if resume && journal.exists() && datamime_runtime::replay(&journal).is_ok() {
                std::fs::rename(&journal, &sidecar)
                    .map_err(|e| format!("cannot stage the resume journal: {e}"))?;
                Some(sidecar.clone())
            } else {
                None
            };

        let mut opts = spec.runtime_options();
        opts.journal = Some(journal);
        opts.resume = resume_from.clone();
        opts.extra_sink = Some(SharedSink::new(JobSink { progress }));
        opts.batch_gate = Some(GateHandle::new(Arc::new(ticket)));
        opts.metrics = Some(Arc::clone(&shared.metrics));

        let result = search_with_runtime(generator.as_ref(), &target_profile, &cfg, &opts);
        shared.gate.finish(seq);
        if resume_from.is_some() {
            // The fresh journal now carries the whole observed prefix.
            let _ = std::fs::remove_file(&sidecar);
        }
        match result {
            Ok(outcome) => {
                // The terminal transition must be durable *before* the
                // result is served: a Done record without a fsynced
                // `done` event would be re-run (and re-acknowledged with
                // a possibly different journal) by a restarted daemon.
                lock(&shared.manifest)
                    .done(job, outcome.best_error, &outcome.best_unit_params)
                    .map_err(|e| format!("search finished but its result could not be committed to the manifest: {e}"))?;
                if let Some(rec) = lock(&shared.jobs).get_mut(job) {
                    rec.result = Some((outcome.best_error, outcome.best_unit_params.clone()));
                }
                shared.set_state(job, JobState::Done);
                shared.metrics.incr("jobs_completed");
                Ok(())
            }
            Err(ExecError::Stopped(GateClosed::Shutdown)) => {
                // Deliberately NOT a manifest transition: the job is
                // still `running`, and the next daemon start resumes it
                // from the journal it just flushed.
                Ok(())
            }
            Err(ExecError::Stopped(GateClosed::Cancelled)) => {
                record_cancelled(shared, job);
                Ok(())
            }
            Err(e) => Err(e.to_string()),
        }
    })();
    if let Err(detail) = outcome {
        if let Err(e) = lock(&shared.manifest).fail(job, &detail) {
            eprintln!("datamime-served: cannot record failure of {job}: {e}");
        }
        if let Some(rec) = lock(&shared.jobs).get_mut(job) {
            rec.detail = Some(detail);
        }
        shared.set_state(job, JobState::Failed);
        shared.metrics.incr("jobs_failed");
    }
}

fn record_cancelled(shared: &Shared, job: &str) {
    if let Err(e) = lock(&shared.manifest).cancel(job) {
        eprintln!("datamime-served: cannot record cancellation of {job}: {e}");
    }
    shared.set_state(job, JobState::Cancelled);
    shared.metrics.incr("jobs_cancelled");
}

fn handle_job_conn(shared: &Arc<Shared>, conn: &mut UnixStream) {
    let _ = conn.set_nonblocking(false);
    let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
    let Ok(req) = read_frame(conn) else { return };
    let resp = match req {
        Frame::SubmitJob { spec } => submit(shared, &spec),
        Frame::JobStatusReq { job } => status(shared, &job),
        Frame::JobResultReq { job } => result(shared, &job),
        Frame::CancelJob { job } => cancel(shared, &job),
        Frame::ListJobsReq => Frame::JobList {
            jobs: lock(&shared.jobs)
                .iter()
                .map(|(id, rec)| (id.clone(), rec.state.as_str().to_string()))
                .collect(),
        },
        other => Frame::ServeErr {
            detail: format!("unexpected frame on the job socket: {other:?}"),
        },
    };
    let _ = write_frame(conn, &resp);
}

fn submit(shared: &Arc<Shared>, spec_line: &str) -> Frame {
    // Validate the whole spec now so a bad submit fails the submitter,
    // not a job thread minutes later.
    let spec = match JobSpec::parse(spec_line)
        .and_then(|s| s.target().map(|_| s))
        .and_then(|s| s.search_config().map(|_| s))
        .and_then(|s| s.generator().map(|_| s))
    {
        Ok(spec) => spec,
        Err(detail) => return Frame::ServeErr { detail },
    };
    let canonical = match spec.to_line() {
        Ok(line) => line,
        Err(detail) => return Frame::ServeErr { detail },
    };
    let n = shared.next_job.fetch_add(1, Ordering::SeqCst);
    let job = format!("job-{n:04}");
    if let Err(e) = lock(&shared.manifest).submit(&job, &canonical) {
        return Frame::ServeErr { detail: e };
    }
    lock(&shared.jobs).insert(
        job.clone(),
        JobRecord {
            state: JobState::Submitted,
            iterations: spec.iters as u64,
            progress: Arc::new(JobProgress::new()),
            gate_seq: None,
            cancel_requested: false,
            result: None,
            detail: None,
        },
    );
    shared.metrics.incr("jobs_submitted");
    spawn_job(shared, job.clone(), canonical, false);
    Frame::JobAck { job }
}

fn status(shared: &Arc<Shared>, job: &str) -> Frame {
    let jobs = lock(&shared.jobs);
    let Some(rec) = jobs.get(job) else {
        return no_such_job(job);
    };
    let best_bits = match &rec.result {
        Some((err, _)) => err.to_bits(),
        None => rec.progress.best_bits.load(Ordering::SeqCst),
    };
    Frame::JobStatusResp {
        job: job.to_string(),
        state: rec.state.as_str().to_string(),
        evals: rec.progress.evals.load(Ordering::SeqCst),
        iterations: rec.iterations,
        best_error_bits: best_bits,
    }
}

fn result(shared: &Arc<Shared>, job: &str) -> Frame {
    let jobs = lock(&shared.jobs);
    let Some(rec) = jobs.get(job) else {
        return no_such_job(job);
    };
    match (&rec.state, &rec.result) {
        (JobState::Done, Some((err, unit))) => Frame::JobResultResp {
            job: job.to_string(),
            best_error_bits: err.to_bits(),
            best_unit_bits: unit.iter().map(|u| u.to_bits()).collect(),
            journal: Shared::journal_rel(job),
        },
        (JobState::Failed, _) => Frame::ServeErr {
            detail: format!(
                "job {job} failed: {}",
                rec.detail.as_deref().unwrap_or("unknown error")
            ),
        },
        _ => Frame::ServeErr {
            detail: format!("job {job} is {}, not done", rec.state.as_str()),
        },
    }
}

fn cancel(shared: &Arc<Shared>, job: &str) -> Frame {
    let mut jobs = lock(&shared.jobs);
    let Some(rec) = jobs.get_mut(job) else {
        return no_such_job(job);
    };
    if rec.state.is_terminal() {
        return Frame::ServeErr {
            detail: format!("job {job} is already {}", rec.state.as_str()),
        };
    }
    rec.cancel_requested = true;
    if let Some(seq) = rec.gate_seq {
        shared.gate.cancel(seq);
    }
    Frame::JobAck {
        job: job.to_string(),
    }
}

fn no_such_job(job: &str) -> Frame {
    Frame::ServeErr {
        detail: format!("no such job: {job}"),
    }
}

fn handle_admin_conn(shared: &Arc<Shared>, conn: &mut UnixStream, term: &TermSignal) {
    let _ = conn.set_nonblocking(false);
    let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
    let mut line = String::new();
    if BufReader::new(&mut *conn).read_line(&mut line).is_err() {
        return;
    }
    let reply = match line.trim() {
        "stats" => {
            let mut out = String::new();
            for (name, value) in shared.metrics.snapshot() {
                out.push_str(&format!("STAT {name} {value}\n"));
            }
            for (name, value) in shared.metrics.gauge_snapshot() {
                out.push_str(&format!("STAT {name} {value}\n"));
            }
            out.push_str("END\n");
            out
        }
        "version" => format!("datamime-served {}\n", env!("CARGO_PKG_VERSION")),
        "shutdown" => {
            let _ = term.trigger();
            "OK draining\n".to_string()
        }
        other => format!("ERROR unknown admin command `{other}`\n"),
    };
    let _ = conn.write_all(reply.as_bytes());
}
