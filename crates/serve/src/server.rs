//! The daemon: sockets, job lifecycle, and the admin plane.
//!
//! One process, three concerns:
//!
//! - **job API** (`job.sock`): the [`datamime_dist`] frame protocol, one
//!   request/response per connection — submit, status, result, cancel,
//!   list. Specs are [`JobSpec`] `key=value` lines, validated at submit
//!   time;
//! - **scheduling**: every accepted job runs the unmodified
//!   `search_with_runtime` loop on its own thread, interleaved with its
//!   tenants through the [`FairGate`] round-robin (see [`crate::sched`]);
//! - **durability**: the segmented, checkpointed [`Manifest`] WAL
//!   records lifecycle transitions with fsync-on-commit, and each job
//!   journals its evaluations under `jobs/<id>/journal.jsonl`. On
//!   startup both are replayed: pending GC intents are finished, and
//!   every job whose manifest state is non-terminal is resumed from its
//!   journal and runs to the same result it would have reached
//!   uninterrupted. Terminal jobs beyond the `keep_terminal` retention
//!   budget are garbage-collected via two-phase delete (durable intent,
//!   then directory removal), so `jobs/` stops accumulating. An
//!   out-of-space condition on any WAL write flips the daemon into
//!   *draining read-only* mode: running jobs stop at their next batch
//!   boundary with resumable journals, new submissions are refused, and
//!   status/result/admin stay up;
//! - **admin plane** (`admin.sock`): plain text `stats` / `version` /
//!   `health` / `shutdown`. Stats are the daemon's [`MetricsRegistry`] —
//!   monotonic counters (jobs submitted/completed/failed/quota-stopped,
//!   evaluations, cache hits, worker restarts, per-stage milliseconds)
//!   plus gauges (WAL segments and bytes, checkpoint seq, GC'd jobs,
//!   read-only flag) — in deterministic sorted order. `health` is the
//!   durability dashboard: uptime, WAL shape, checkpoint and GC
//!   progress, and the read-only state with its reason. `shutdown`
//!   drains: gates close, jobs stop at their next batch boundary leaving
//!   resumable journals, and the process exits 0.

use crate::manifest::{JobEntry, Manifest, ManifestOptions, WalError};
use crate::sched::FairGate;
use datamime::jobspec::JobSpec;
use datamime::profiler::profile_workload;
use datamime::search::search_with_runtime;
use datamime::servectl::{JobState, ADMIN_SOCKET, JOB_SOCKET};
use datamime_dist::{read_frame, write_frame, Frame};
use datamime_runtime::diskfault::DiskTarget;
use datamime_runtime::{
    DiskFaultInjector, DiskFaultPlan, ExecError, GateClosed, GateHandle, MetricsRegistry,
    ProgressSink, RunMeta, SharedSink, TermSignal,
};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Live progress of one job, updated by its [`JobSink`] and read by the
/// status endpoint.
#[derive(Debug)]
struct JobProgress {
    /// Observations so far (fresh evaluations, cache hits, and replayed
    /// journal points).
    evals: AtomicU64,
    /// IEEE-754 bits of the incumbent best error (`f64::INFINITY` until
    /// the first fresh observation).
    best_bits: AtomicU64,
}

impl JobProgress {
    fn new() -> Self {
        JobProgress {
            evals: AtomicU64::new(0),
            best_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }
}

/// The per-job progress sink installed as the run's `extra_sink`.
#[derive(Debug)]
struct JobSink {
    progress: Arc<JobProgress>,
}

impl ProgressSink for JobSink {
    fn on_start(&mut self, _meta: &RunMeta) {}

    fn on_replay(&mut self, count: usize) {
        self.progress
            .evals
            .fetch_add(count as u64, Ordering::SeqCst);
    }

    fn on_eval(&mut self, _index: usize, _error: f64, best_error: f64) {
        self.progress.evals.fetch_add(1, Ordering::SeqCst);
        self.progress
            .best_bits
            .store(best_error.to_bits(), Ordering::SeqCst);
    }

    fn on_cache_hit(&mut self, _index: usize, _source: usize) {
        self.progress.evals.fetch_add(1, Ordering::SeqCst);
    }
}

/// Server-side record of one job.
#[derive(Debug)]
struct JobRecord {
    state: JobState,
    iterations: u64,
    progress: Arc<JobProgress>,
    gate_seq: Option<u64>,
    cancel_requested: bool,
    result: Option<(f64, Vec<f64>)>,
    detail: Option<String>,
}

/// Daemon-level options beyond the state root: retention, WAL tuning,
/// and the deterministic disk-fault plan (tests only).
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Keep at most this many terminal jobs; older ones (by id) are
    /// garbage-collected via two-phase delete. `None` keeps everything.
    pub keep_terminal: Option<usize>,
    /// Manifest segment-rotation threshold in bytes (`None` = default).
    pub segment_bytes: Option<u64>,
    /// Deterministic disk faults injected into the manifest, checkpoint,
    /// journal, and GC write paths.
    pub disk_faults: Option<DiskFaultPlan>,
}

/// State shared between the accept loop, connection handlers, and job
/// threads.
struct Shared {
    root: PathBuf,
    jobs: Mutex<BTreeMap<String, JobRecord>>,
    manifest: Mutex<Manifest>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    gate: FairGate,
    metrics: Arc<MetricsRegistry>,
    started: Instant,
    keep_terminal: Option<usize>,
    injector: Option<DiskFaultInjector>,
    read_only: AtomicBool,
    read_only_reason: Mutex<String>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn job_dir(&self, job: &str) -> PathBuf {
        self.root.join("jobs").join(job)
    }

    fn journal_path(&self, job: &str) -> PathBuf {
        self.job_dir(job).join("journal.jsonl")
    }

    fn journal_rel(job: &str) -> String {
        format!("jobs/{job}/journal.jsonl")
    }

    fn set_state(&self, job: &str, state: JobState) {
        let mut jobs = lock(&self.jobs);
        if let Some(rec) = jobs.get_mut(job) {
            rec.state = state;
        }
        let active = jobs
            .values()
            .filter(|r| r.state == JobState::Running)
            .count();
        self.metrics.set_gauge("jobs_active", active as u64);
    }
}

/// Flips the daemon into draining read-only mode (idempotent): running
/// jobs stop at their next batch boundary with resumable journals, new
/// submissions are refused, and status/result/admin stay up. The way
/// back is an operator restart with space freed.
fn enter_read_only(shared: &Shared, reason: &str) {
    if shared.read_only.swap(true, Ordering::SeqCst) {
        return;
    }
    *lock(&shared.read_only_reason) = reason.to_string();
    shared.metrics.set_gauge("read_only", 1);
    eprintln!("datamime-served: entering read-only mode: {reason}");
    // Drain, do not kill: jobs see GateClosed::Shutdown at their next
    // batch boundary, make no manifest transition, and stay resumable.
    shared.gate.close();
}

/// Post-processes one manifest mutation: refreshes the WAL gauges,
/// flips read-only on any out-of-space sighting (the mutation's own, or
/// a checkpoint's recorded inside the manifest), and converts the error
/// for `?` in `Result<_, String>` contexts.
fn manifest_op(shared: &Shared, res: Result<(), WalError>) -> Result<(), String> {
    let no_space_seen = lock(&shared.manifest).no_space_seen();
    refresh_wal_gauges(shared);
    if no_space_seen || res.as_ref().is_err_and(|e| e.no_space) {
        let detail = match &res {
            Err(e) => e.message.clone(),
            Ok(()) => "out of disk space during a WAL checkpoint".to_string(),
        };
        enter_read_only(shared, &detail);
    }
    res.map_err(|e| e.message)
}

/// Mirrors the durable WAL shape into gauges so the plain `stats`
/// command exposes what `health` reports.
fn refresh_wal_gauges(shared: &Shared) {
    let stats = lock(&shared.manifest).wal_stats();
    shared.metrics.set_gauge("wal_segments", stats.segments);
    shared
        .metrics
        .set_gauge("wal_segment_bytes", stats.segment_bytes);
    shared
        .metrics
        .set_gauge("wal_checkpoint_seq", stats.checkpoint_seq);
    shared
        .metrics
        .set_gauge("wal_checkpoint_failures", stats.checkpoint_failures);
    shared.metrics.set_gauge("wal_pending_gc", stats.pending_gc);
    shared.metrics.set_gauge("jobs_gcd_total", stats.gcd_jobs);
}

/// Runs the daemon rooted at `root` with default [`ServeOptions`]. See
/// [`run_with`].
///
/// # Errors
///
/// As [`run_with`].
pub fn run(root: PathBuf, term: TermSignal) -> Result<(), String> {
    run_with(root, term, ServeOptions::default())
}

/// Runs the daemon rooted at `root` until `term` requests termination
/// (SIGTERM/SIGINT via the sentinel, or the admin `shutdown` command).
/// Replays the manifest first, finishing any pending GC intents and
/// resuming every non-terminal job; then applies the retention policy.
///
/// # Errors
///
/// Fails on state-root or socket I/O errors; job failures are recorded
/// in the manifest, not returned.
pub fn run_with(root: PathBuf, term: TermSignal, options: ServeOptions) -> Result<(), String> {
    std::fs::create_dir_all(root.join("jobs"))
        .map_err(|e| format!("cannot create state root {root:?}: {e}"))?;
    let injector = options.disk_faults.map(DiskFaultInjector::new);
    let (manifest, entries) = Manifest::open_with(
        &root,
        ManifestOptions {
            segment_bytes: options.segment_bytes,
            faults: injector.clone(),
        },
    )?;
    let pending_gc = manifest.take_pending_gc();
    let shared = Arc::new(Shared {
        root: root.clone(),
        jobs: Mutex::new(BTreeMap::new()),
        manifest: Mutex::new(manifest),
        threads: Mutex::new(Vec::new()),
        gate: FairGate::new(),
        metrics: Arc::new(MetricsRegistry::new()),
        // Only feeds the admin plane's uptime line; taint analysis sees
        // it never reaches a journaled or wire surface.
        started: Instant::now(),
        keep_terminal: options.keep_terminal,
        injector,
        read_only: AtomicBool::new(false),
        read_only_reason: Mutex::new(String::new()),
    });
    // Finish interrupted deletions before anything else: the intents are
    // durable and the directory removals are idempotent.
    for job in pending_gc {
        finish_gc(&shared, &job);
    }
    resume_jobs(&shared, entries);
    maybe_gc(&shared);
    refresh_wal_gauges(&shared);

    let job_listener = bind(&root.join(JOB_SOCKET))?;
    let admin_listener = bind(&root.join(ADMIN_SOCKET))?;
    eprintln!("datamime-served: listening under {}", root.display());

    // Each connection is handled on its own short-lived thread: a client
    // that connects and then stalls (up to the 5s read timeout) must not
    // freeze the job API, the admin plane, or shutdown observation.
    while !term.requested() {
        let mut idle = true;
        if let Ok((conn, _)) = job_listener.accept() {
            idle = false;
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let mut conn = conn;
                handle_job_conn(&shared, &mut conn);
            });
        }
        if let Ok((conn, _)) = admin_listener.accept() {
            idle = false;
            let shared = Arc::clone(&shared);
            let term = term.clone();
            std::thread::spawn(move || {
                let mut conn = conn;
                handle_admin_conn(&shared, &mut conn, &term);
            });
        }
        if idle {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    // Drain: stop admitting batches, let every job thread stop at its
    // next batch boundary (journals and the manifest are already safe on
    // disk — an interrupted job replays on the next start).
    eprintln!("datamime-served: draining ...");
    shared.gate.close();
    let threads = std::mem::take(&mut *lock(&shared.threads));
    for t in threads {
        let _ = t.join();
    }
    // audit:allow(swallowed-result): shutdown cleanup is best-effort — a leftover socket file is replaced by the next bind
    let _ = std::fs::remove_file(root.join(JOB_SOCKET));
    // audit:allow(swallowed-result): shutdown cleanup is best-effort — a leftover socket file is replaced by the next bind
    let _ = std::fs::remove_file(root.join(ADMIN_SOCKET));
    Ok(())
}

fn bind(path: &PathBuf) -> Result<UnixListener, String> {
    // A daemon killed with SIGKILL leaves its socket files behind; a
    // fresh bind must replace them.
    // audit:allow(swallowed-result): the file usually does not exist — a real collision surfaces as the bind error below
    let _ = std::fs::remove_file(path);
    let listener =
        UnixListener::bind(path).map_err(|e| format!("cannot listen on {path:?}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot poll {path:?}: {e}"))?;
    Ok(listener)
}

/// Applies the retention policy: terminal jobs beyond the newest
/// `keep_terminal` (in id order) are garbage-collected. Skipped while
/// read-only — GC itself must append to the WAL.
fn maybe_gc(shared: &Arc<Shared>) {
    let Some(keep) = shared.keep_terminal else {
        return;
    };
    if shared.read_only.load(Ordering::SeqCst) {
        return;
    }
    let victims: Vec<String> = {
        let jobs = lock(&shared.jobs);
        let terminal: Vec<&String> = jobs
            .iter()
            .filter(|(_, r)| r.state.is_terminal())
            .map(|(id, _)| id)
            .collect();
        terminal
            .iter()
            .take(terminal.len().saturating_sub(keep))
            .map(|s| (*s).clone())
            .collect()
    };
    for job in victims {
        gc_job(shared, &job);
    }
}

/// Two-phase delete of one terminal job: durable intent first, then the
/// directory, then the closing record. A crash at any point either
/// leaves the job untouched or leaves a pending intent the next startup
/// finishes.
fn gc_job(shared: &Arc<Shared>, job: &str) {
    let res = lock(&shared.manifest).gc_intent(job);
    if let Err(e) = manifest_op(shared, res) {
        eprintln!("datamime-served: cannot record gc intent for {job}: {e}");
        return;
    }
    // The intent is durable: the job is gone from the manifest fold, so
    // it leaves the live table now regardless of how phase two fares.
    lock(&shared.jobs).remove(job);
    finish_gc(shared, job);
}

/// Phase two of GC: remove the job directory (idempotent) and close the
/// intent. On failure the intent stays pending for the next startup.
fn finish_gc(shared: &Arc<Shared>, job: &str) {
    if let Some(inj) = &shared.injector {
        if let Some(kind) = inj.next(DiskTarget::GcDir) {
            eprintln!(
                "datamime-served: injected {kind:?} during gc of {job}; intent stays pending"
            );
            return;
        }
    }
    let dir = shared.job_dir(job);
    match std::fs::remove_dir_all(&dir) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => {
            eprintln!("datamime-served: cannot remove {dir:?}: {e}; gc intent stays pending");
            return;
        }
    }
    let res = lock(&shared.manifest).gc_done(job);
    match manifest_op(shared, res) {
        Ok(()) => shared.metrics.incr("jobs_gcd"),
        Err(e) => eprintln!("datamime-served: cannot close gc intent for {job}: {e}"),
    }
}

/// Re-creates job records from replayed manifest entries and restarts
/// every non-terminal job from its journal.
fn resume_jobs(shared: &Arc<Shared>, entries: BTreeMap<String, JobEntry>) {
    for (id, entry) in entries {
        let iterations = JobSpec::parse(&entry.spec).map_or(0, |s| s.iters as u64);
        let progress = Arc::new(JobProgress::new());
        if let Some(err) = entry.best_error {
            progress.best_bits.store(err.to_bits(), Ordering::SeqCst);
        }
        let record = JobRecord {
            state: entry.state,
            iterations,
            progress,
            gate_seq: None,
            cancel_requested: false,
            result: entry.best_error.map(|e| (e, entry.best_unit.clone())),
            detail: entry.detail,
        };
        let resume = !record.state.is_terminal();
        lock(&shared.jobs).insert(id.clone(), record);
        if resume {
            shared.metrics.incr("jobs_resumed");
            spawn_job(shared, id, entry.spec, true);
        }
    }
}

fn spawn_job(shared: &Arc<Shared>, job: String, spec_line: String, resume: bool) {
    let shared2 = Arc::clone(shared);
    let handle = std::thread::spawn(move || run_job(&shared2, &job, &spec_line, resume));
    lock(&shared.threads).push(handle);
}

/// The body of one job thread: build the search exactly as the one-shot
/// CLI would, run it under the fair gate, and record the outcome.
fn run_job(shared: &Arc<Shared>, job: &str, spec_line: &str, resume: bool) {
    let outcome = (|| -> Result<(), String> {
        let spec = JobSpec::parse(spec_line)?;
        let target = spec.target()?;
        let cfg = spec.search_config()?;
        let generator = spec.generator()?;
        std::fs::create_dir_all(shared.job_dir(job))
            .map_err(|e| format!("cannot create job dir: {e}"))?;

        shared.set_state(job, JobState::Running);
        {
            let res = lock(&shared.manifest).start(job);
            if let Err(e) = manifest_op(shared, res) {
                eprintln!("datamime-served: cannot record start of {job}: {e}");
            }
        }

        let progress = lock(&shared.jobs)
            .get(job)
            .map(|r| Arc::clone(&r.progress))
            .ok_or("job record vanished")?;

        // Profiling runs *outside* the fair rotation: it only touches
        // this job's own target workload, and joining the round-robin
        // before this potentially minutes-long phase would make every
        // other tenant block on its turn until profiling finished.
        let target_profile = profile_workload(&target, &cfg.machine, &cfg.profiling);

        // Join the rotation only now, at the edge of the search. A
        // cancel that arrived while profiling (gate_seq was still None)
        // is honoured here; one that lands after this check is caught by
        // the gate at the first batch boundary.
        let ticket = shared.gate.register();
        let seq = ticket.seq();
        let cancelled = {
            let mut jobs = lock(&shared.jobs);
            let rec = jobs.get_mut(job).ok_or("job record vanished")?;
            rec.gate_seq = Some(seq);
            if rec.cancel_requested {
                shared.gate.cancel(seq);
            }
            rec.cancel_requested
        };
        if cancelled {
            drop(ticket); // deregisters from the rotation
            record_cancelled(shared, job);
            return Ok(());
        }

        let journal = shared.journal_path(job);
        // Resume via a sidecar: the previous journal is renamed aside and
        // the run rewrites a fresh, self-contained journal (the executor
        // re-records the replayed prefix). Appending to the crashed file
        // instead would glue new records onto a torn final line if the
        // SIGKILL landed mid-write. A journal without a readable header
        // (killed before the first append) is ignored and the job simply
        // starts over.
        let sidecar = shared.job_dir(job).join("journal.resume.jsonl");
        if sidecar.exists() {
            // Orphaned sidecar: a previous daemon crashed between staging
            // the resume and finishing the rewrite. If the fresh journal
            // replays, it is self-contained (its prefix came from the
            // sidecar) and the sidecar is stale; otherwise the sidecar IS
            // the journal — put it back. Either way the determinism of
            // the search makes the resumed result identical.
            if journal.exists() && datamime_runtime::replay(&journal).is_ok() {
                std::fs::remove_file(&sidecar)
                    .map_err(|e| format!("cannot drop the stale resume sidecar: {e}"))?;
            } else {
                std::fs::rename(&sidecar, &journal)
                    .map_err(|e| format!("cannot restore the resume sidecar: {e}"))?;
                // The restored name must survive a crash before we rely
                // on it: rename durability requires the parent fsync.
                crate::manifest::sync_dir(sidecar.parent().unwrap_or(Path::new(".")))?;
            }
        }
        let resume_from =
            if resume && journal.exists() && datamime_runtime::replay(&journal).is_ok() {
                std::fs::rename(&journal, &sidecar)
                    .map_err(|e| format!("cannot stage the resume journal: {e}"))?;
                // Make the staging durable: if we crash mid-rewrite, the
                // orphaned-sidecar recovery above only works if the
                // sidecar's name actually reached the disk.
                crate::manifest::sync_dir(sidecar.parent().unwrap_or(Path::new(".")))?;
                Some(sidecar.clone())
            } else {
                None
            };

        let mut opts = spec.runtime_options();
        opts.journal = Some(journal);
        opts.resume = resume_from.clone();
        opts.extra_sink = Some(SharedSink::new(JobSink { progress }));
        opts.batch_gate = Some(GateHandle::new(Arc::new(ticket)));
        opts.metrics = Some(Arc::clone(&shared.metrics));
        opts.disk_faults = shared.injector.clone();

        let result = search_with_runtime(generator.as_ref(), &target_profile, &cfg, &opts);
        shared.gate.finish(seq);
        if resume_from.is_some() {
            // The fresh journal now carries the whole observed prefix.
            // audit:allow(swallowed-result): best effort — a surviving stale sidecar is dropped by the orphan recovery on the next start
            let _ = std::fs::remove_file(&sidecar);
        }
        match result {
            Ok(outcome) => {
                // The terminal transition must be durable *before* the
                // result is served: a Done record without a fsynced
                // `done` event would be re-run (and re-acknowledged with
                // a possibly different journal) by a restarted daemon.
                let (state, counter) = match outcome.quota {
                    Some(cause) => {
                        let res = lock(&shared.manifest).quota(
                            job,
                            outcome.best_error,
                            &outcome.best_unit_params,
                            cause.as_str(),
                        );
                        manifest_op(shared, res).map_err(|e| {
                            format!("search stopped on its {} quota but the best-so-far could not be committed to the manifest: {e}", cause.as_str())
                        })?;
                        if let Some(rec) = lock(&shared.jobs).get_mut(job) {
                            rec.detail = Some(cause.as_str().to_string());
                        }
                        (JobState::QuotaExceeded, "jobs_quota_exceeded")
                    }
                    None => {
                        let res = lock(&shared.manifest).done(
                            job,
                            outcome.best_error,
                            &outcome.best_unit_params,
                        );
                        manifest_op(shared, res).map_err(|e| {
                            format!("search finished but its result could not be committed to the manifest: {e}")
                        })?;
                        (JobState::Done, "jobs_completed")
                    }
                };
                if let Some(rec) = lock(&shared.jobs).get_mut(job) {
                    rec.result = Some((outcome.best_error, outcome.best_unit_params.clone()));
                }
                shared.set_state(job, state);
                shared.metrics.incr(counter);
                Ok(())
            }
            Err(ExecError::Stopped(GateClosed::Shutdown)) => {
                // Deliberately NOT a manifest transition: the job is
                // still `running`, and the next daemon start resumes it
                // from the journal it just flushed.
                Ok(())
            }
            Err(ExecError::Stopped(GateClosed::Cancelled)) => {
                record_cancelled(shared, job);
                Ok(())
            }
            Err(e) => Err(e.to_string()),
        }
    })();
    if let Err(detail) = outcome {
        let res = lock(&shared.manifest).fail(job, &detail);
        if let Err(e) = manifest_op(shared, res) {
            eprintln!("datamime-served: cannot record failure of {job}: {e}");
        }
        if let Some(rec) = lock(&shared.jobs).get_mut(job) {
            rec.detail = Some(detail);
        }
        shared.set_state(job, JobState::Failed);
        shared.metrics.incr("jobs_failed");
    }
    // One more terminal job may now exceed the retention budget.
    maybe_gc(shared);
}

fn record_cancelled(shared: &Arc<Shared>, job: &str) {
    let res = lock(&shared.manifest).cancel(job);
    if let Err(e) = manifest_op(shared, res) {
        eprintln!("datamime-served: cannot record cancellation of {job}: {e}");
    }
    shared.set_state(job, JobState::Cancelled);
    shared.metrics.incr("jobs_cancelled");
}

fn handle_job_conn(shared: &Arc<Shared>, conn: &mut UnixStream) {
    // A socket we cannot put back into blocking mode or bound the read
    // on would either busy-spin or hang this thread; drop the
    // connection instead — the client sees EOF and retries.
    if conn.set_nonblocking(false).is_err()
        || conn.set_read_timeout(Some(Duration::from_secs(5))).is_err()
    {
        return;
    }
    let Ok(req) = read_frame(conn) else { return };
    let resp = match req {
        Frame::SubmitJob { spec } => submit(shared, &spec),
        Frame::JobStatusReq { job } => status(shared, &job),
        Frame::JobResultReq { job } => result(shared, &job),
        Frame::CancelJob { job } => cancel(shared, &job),
        Frame::ListJobsReq => Frame::JobList {
            jobs: lock(&shared.jobs)
                .iter()
                .map(|(id, rec)| (id.clone(), rec.state.as_str().to_string()))
                .collect(),
        },
        other => Frame::ServeErr {
            detail: format!("unexpected frame on the job socket: {other:?}"),
        },
    };
    // audit:allow(swallowed-result): response is best-effort — the client may already have hung up
    let _ = write_frame(conn, &resp);
}

fn submit(shared: &Arc<Shared>, spec_line: &str) -> Frame {
    if shared.read_only.load(Ordering::SeqCst) {
        return Frame::ServeErr {
            detail: format!(
                "daemon is read-only ({}); submissions are disabled",
                lock(&shared.read_only_reason)
            ),
        };
    }
    // Validate the whole spec now so a bad submit fails the submitter,
    // not a job thread minutes later.
    let spec = match JobSpec::parse(spec_line)
        .and_then(|s| s.target().map(|_| s))
        .and_then(|s| s.search_config().map(|_| s))
        .and_then(|s| s.generator().map(|_| s))
    {
        Ok(spec) => spec,
        Err(detail) => return Frame::ServeErr { detail },
    };
    let canonical = match spec.to_line() {
        Ok(line) => line,
        Err(detail) => return Frame::ServeErr { detail },
    };
    // Id allocation and the submit record commit under one manifest
    // lock, so concurrent submitters cannot race the same number. The
    // high-water mark lives in the manifest fold (and its checkpoints),
    // so GC of old jobs never recycles an id.
    let submitted = {
        let mut m = lock(&shared.manifest);
        let job = format!("job-{:04}", m.next_job_number());
        (job.clone(), m.submit(&job, &canonical))
    };
    let (job, res) = submitted;
    if let Err(e) = manifest_op(shared, res) {
        return Frame::ServeErr { detail: e };
    }
    lock(&shared.jobs).insert(
        job.clone(),
        JobRecord {
            state: JobState::Submitted,
            iterations: spec.iters as u64,
            progress: Arc::new(JobProgress::new()),
            gate_seq: None,
            cancel_requested: false,
            result: None,
            detail: None,
        },
    );
    shared.metrics.incr("jobs_submitted");
    spawn_job(shared, job.clone(), canonical, false);
    Frame::JobAck { job }
}

fn status(shared: &Arc<Shared>, job: &str) -> Frame {
    let jobs = lock(&shared.jobs);
    let Some(rec) = jobs.get(job) else {
        return no_such_job(job);
    };
    let best_bits = match &rec.result {
        Some((err, _)) => err.to_bits(),
        None => rec.progress.best_bits.load(Ordering::SeqCst),
    };
    Frame::JobStatusResp {
        job: job.to_string(),
        state: rec.state.as_str().to_string(),
        evals: rec.progress.evals.load(Ordering::SeqCst),
        iterations: rec.iterations,
        best_error_bits: best_bits,
    }
}

fn result(shared: &Arc<Shared>, job: &str) -> Frame {
    let jobs = lock(&shared.jobs);
    let Some(rec) = jobs.get(job) else {
        return no_such_job(job);
    };
    match (&rec.state, &rec.result) {
        (state, Some((err, unit))) if state.has_result() => Frame::JobResultResp {
            job: job.to_string(),
            best_error_bits: err.to_bits(),
            best_unit_bits: unit.iter().map(|u| u.to_bits()).collect(),
            journal: Shared::journal_rel(job),
        },
        (JobState::Failed, _) => Frame::ServeErr {
            detail: format!(
                "job {job} failed: {}",
                rec.detail.as_deref().unwrap_or("unknown error")
            ),
        },
        _ => Frame::ServeErr {
            detail: format!("job {job} is {}, no result to serve", rec.state.as_str()),
        },
    }
}

fn cancel(shared: &Arc<Shared>, job: &str) -> Frame {
    let mut jobs = lock(&shared.jobs);
    let Some(rec) = jobs.get_mut(job) else {
        return no_such_job(job);
    };
    if rec.state.is_terminal() {
        return Frame::ServeErr {
            detail: format!("job {job} is already {}", rec.state.as_str()),
        };
    }
    rec.cancel_requested = true;
    if let Some(seq) = rec.gate_seq {
        shared.gate.cancel(seq);
    }
    Frame::JobAck {
        job: job.to_string(),
    }
}

fn no_such_job(job: &str) -> Frame {
    Frame::ServeErr {
        detail: format!("no such job: {job}"),
    }
}

fn handle_admin_conn(shared: &Arc<Shared>, conn: &mut UnixStream, term: &TermSignal) {
    // A socket we cannot put back into blocking mode or bound the read
    // on would either busy-spin or hang this thread; drop the
    // connection instead — the client sees EOF and retries.
    if conn.set_nonblocking(false).is_err()
        || conn.set_read_timeout(Some(Duration::from_secs(5))).is_err()
    {
        return;
    }
    let mut line = String::new();
    if BufReader::new(&mut *conn).read_line(&mut line).is_err() {
        return;
    }
    let reply = match line.trim() {
        "stats" => {
            let mut out = String::new();
            for (name, value) in shared.metrics.snapshot() {
                out.push_str(&format!("STAT {name} {value}\n"));
            }
            for (name, value) in shared.metrics.gauge_snapshot() {
                out.push_str(&format!("STAT {name} {value}\n"));
            }
            out.push_str("END\n");
            out
        }
        "version" => format!("datamime-served {}\n", env!("CARGO_PKG_VERSION")),
        "health" => {
            let wal = lock(&shared.manifest).wal_stats();
            let read_only = shared.read_only.load(Ordering::SeqCst);
            let mut out = String::new();
            out.push_str(&format!(
                "STAT uptime_s {}\n",
                shared.started.elapsed().as_secs()
            ));
            out.push_str(&format!("STAT wal_segments {}\n", wal.segments));
            out.push_str(&format!("STAT wal_segment_bytes {}\n", wal.segment_bytes));
            out.push_str(&format!("STAT wal_checkpoint_seq {}\n", wal.checkpoint_seq));
            out.push_str(&format!(
                "STAT wal_checkpoint_failures {}\n",
                wal.checkpoint_failures
            ));
            out.push_str(&format!("STAT wal_pending_gc {}\n", wal.pending_gc));
            out.push_str(&format!("STAT jobs_gcd_total {}\n", wal.gcd_jobs));
            out.push_str(&format!("STAT read_only {}\n", u64::from(read_only)));
            if read_only {
                out.push_str(&format!("READONLY {}\n", lock(&shared.read_only_reason)));
            }
            out.push_str("END\n");
            out
        }
        "shutdown" => match term.trigger() {
            Ok(()) => "OK draining\n".to_string(),
            // A shutdown the daemon cannot act on must not be
            // acknowledged as OK — the operator would walk away from a
            // server that is still running.
            Err(e) => format!("ERROR cannot trigger drain: {e}\n"),
        },
        other => format!("ERROR unknown admin command `{other}`\n"),
    };
    // audit:allow(swallowed-result): reply is best-effort — the admin client may already have hung up
    let _ = conn.write_all(reply.as_bytes());
}
