//! Fig. 1: accuracy comparison when mimicking memcached with a
//! production-like (Facebook) dataset.
//!
//! Four schemes — the production target, the same program with TailBench's
//! public dataset, the PerfProx black-box clone, and the Datamime
//! benchmark — compared on IPC and ICache MPKI on Broadwell, and IPC on
//! Zen 2 (cross-microarchitecture validation).

#![forbid(unsafe_code)]
use datamime::metrics::DistMetric;
use datamime::workload::Workload;
use datamime_experiments::{
    clone_target, profile, profile_perfprox, public_counterpart, row, Report, Settings,
};
use datamime_sim::MachineConfig;

fn main() {
    let s = Settings::from_env();
    let mut r = Report::new("fig1");

    let target = Workload::mem_fb();
    let public = public_counterpart(&target.name);
    let bdw = MachineConfig::broadwell();
    let zen2 = MachineConfig::zen2();

    eprintln!("profiling target + public dataset on broadwell ...");
    let t_bdw = profile(&target, &bdw, &s);
    let p_bdw = profile(&public, &bdw, &s);
    eprintln!("generating perfprox clone ...");
    let x_bdw = profile_perfprox(&t_bdw, &bdw, &s);
    eprintln!("running datamime ...");
    let dm = clone_target(&target, "memcached", &s);
    let d_bdw = profile(&dm.workload, &bdw, &s);

    eprintln!("validating on zen2 ...");
    let t_z = profile(&target, &zen2, &s);
    let p_z = profile(&public, &zen2, &s);
    let x_z = profile_perfprox(&t_bdw, &zen2, &s);
    let d_z = profile(&dm.workload, &zen2, &s);

    r.line(format!(
        "{:<24}\t{:>9}\t{:>9}\t{:>9}\t{:>9}",
        "", "target", "public", "perfprox", "datamime"
    ));
    let ipc = DistMetric::Ipc;
    let icache = DistMetric::ICacheMpki;
    r.line(row(
        "broadwell IPC",
        &[
            t_bdw.mean(ipc),
            p_bdw.mean(ipc),
            x_bdw.mean(ipc),
            d_bdw.mean(ipc),
        ],
    ));
    r.line(row(
        "broadwell ICACHE MPKI",
        &[
            t_bdw.mean(icache),
            p_bdw.mean(icache),
            x_bdw.mean(icache),
            d_bdw.mean(icache),
        ],
    ));
    r.line(row(
        "zen2 IPC",
        &[t_z.mean(ipc), p_z.mean(ipc), x_z.mean(ipc), d_z.mean(ipc)],
    ));

    let rel = |a: f64, b: f64| (a - b).abs() / b * 100.0;
    r.line(String::new());
    r.line(format!(
        "datamime IPC error: broadwell {:.1}%  zen2 {:.1}%  (paper: 2.8% / 8.5%)",
        rel(d_bdw.mean(ipc), t_bdw.mean(ipc)),
        rel(d_z.mean(ipc), t_z.mean(ipc)),
    ));
    r.line(format!(
        "public-dataset IPC ratio on broadwell: {:.2}x (paper: 2.4x)",
        t_bdw.mean(ipc).max(p_bdw.mean(ipc)) / t_bdw.mean(ipc).min(p_bdw.mean(ipc)),
    ));
    r.line(format!(
        "perfprox IPC ratio on broadwell: {:.2}x (paper: 1.94x)",
        x_bdw.mean(ipc).max(t_bdw.mean(ipc)) / x_bdw.mean(ipc).min(t_bdw.mean(ipc)),
    ));
    r.line(format!(
        "perfprox ICache undershoot: {:.2}x lower (paper: 7.76x)",
        t_bdw.mean(icache) / x_bdw.mean(icache).max(1e-3),
    ));
    r.finish();
}
