//! Multi-process smoke for the `datamime-dist` evaluation plane.
//!
//! Runs a short fig10-style convergence search twice — once on the
//! in-process thread backend, once on `--backend proc --workers 2`
//! (every evaluation in a separate `datamime-worker` OS process) — and
//! fails unless the two runs are bit-identical: same suggestions, same
//! error bits, same winner, same best profile. A splitmix64 checksum
//! over the history is printed for both runs so CI logs show at a
//! glance what was compared.
//!
//! The worker binary is located through `DATAMIME_WORKER` (scripts/ci.sh
//! points it at `target/release/datamime-worker`) or, failing that, next
//! to this executable. Usage: `dist_smoke [--check] [--workers N]`.

#![forbid(unsafe_code)]
use datamime::generator::{KvGenerator, QuantizedGenerator};
use datamime::profiler::profile_workload;
use datamime::search::{
    search_with_runtime, BackendChoice, ProcOptions, RuntimeOptions, SearchConfig, SearchOutcome,
};
use datamime::workload::Workload;
use std::process::ExitCode;

/// Grid steps per parameter axis (7 values per axis).
const STEPS: u32 = 6;
/// Full-run iteration count; enough for several multi-point batches.
const ITERATIONS: usize = 24;
/// `--check` scale: still three batches of four across two workers.
const CHECK_ITERATIONS: usize = 12;

fn run(iterations: usize, backend: BackendChoice) -> SearchOutcome {
    let mut cfg = SearchConfig::fast(iterations);
    cfg.profiling = cfg.profiling.without_curves();
    let generator = QuantizedGenerator::new(KvGenerator::new(), STEPS);
    let target = profile_workload(&Workload::mem_fb(), &cfg.machine, &cfg.profiling);
    let opts = RuntimeOptions {
        batch_k: 4,
        workers: 4,
        backend,
        ..RuntimeOptions::default()
    };
    match search_with_runtime(&generator, &target, &cfg, &opts) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("dist_smoke: search failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Order-sensitive splitmix64 fold over every suggestion and error bit
/// in the history plus the winner — one number per run for the CI log.
fn checksum(outcome: &SearchOutcome) -> u64 {
    fn mix(h: u64, v: u64) -> u64 {
        let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x.wrapping_mul(0x94D0_49BB_1331_11EB)
    }
    let mut h = 0;
    for point in &outcome.history {
        for &p in &point.unit_params {
            h = mix(h, p.to_bits());
        }
        h = mix(h, point.error.to_bits());
    }
    for &p in &outcome.best_unit_params {
        h = mix(h, p.to_bits());
    }
    mix(h, outcome.best_error.to_bits())
}

fn main() -> ExitCode {
    let mut check = false;
    let mut workers = 2usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => workers = n,
                _ => {
                    eprintln!("dist_smoke: --workers needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("dist_smoke: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let iterations = if check { CHECK_ITERATIONS } else { ITERATIONS };
    eprintln!(
        "dist_smoke: {iterations}-iteration search on threads, then on \
         {workers} worker process(es)"
    );
    let thread = run(iterations, BackendChoice::Thread);
    let proc = run(
        iterations,
        BackendChoice::Process(ProcOptions {
            workers,
            worker_bin: None, // DATAMIME_WORKER or a sibling of this binary
        }),
    );

    let (ct, cp) = (checksum(&thread), checksum(&proc));
    eprintln!("dist_smoke: thread checksum {ct:#018x}, proc checksum {cp:#018x}");

    let mut identical = ct == cp
        && thread.history.len() == proc.history.len()
        && thread.best_unit_params == proc.best_unit_params
        && thread.best_error.to_bits() == proc.best_error.to_bits()
        && thread.best_profile.to_tsv() == proc.best_profile.to_tsv();
    for (a, b) in thread.history.iter().zip(&proc.history) {
        identical &= a.unit_params == b.unit_params && a.error.to_bits() == b.error.to_bits();
    }
    if !identical {
        eprintln!("dist_smoke: FAIL — process backend diverged from the thread backend");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "dist_smoke: OK — {} evaluations bit-identical across backends",
        thread.history.len()
    );
    ExitCode::SUCCESS
}
