//! Fig. 9 + Table IV: the cross-program case study. Datamime clones
//! `masstree` using the *memcached* program and `img-dnn` using the *dnn*
//! program; end-to-end metrics (IPC, LLC MPKI, utilization) should match
//! while code-bound metrics (ICache, branch) cannot.
//!
//! Also reruns the img-dnn search with IPC weighted higher, reproducing
//! the paper's observation that reweighting trades LLC-curve accuracy for
//! IPC accuracy.

#![forbid(unsafe_code)]
use datamime::metrics::{CurveMetric, DistMetric};
use datamime::workload::Workload;
use datamime::MetricWeights;
use datamime_experiments::{
    clone_target, clone_target_weighted, profile, profile_perfprox, row, Report, Settings,
};
use datamime_sim::MachineConfig;

const TABLE4_METRICS: [DistMetric; 10] = [
    DistMetric::Ipc,
    DistMetric::LlcMpki,
    DistMetric::CpuUtilization,
    DistMetric::BranchMpki,
    DistMetric::ICacheMpki,
    DistMetric::L1dMpki,
    DistMetric::L2Mpki,
    DistMetric::ItlbMpki,
    DistMetric::DtlbMpki,
    DistMetric::MemoryBandwidth,
];

fn main() {
    let s = Settings::from_env();
    let mut r = Report::new("fig9_table4");
    let bdw = MachineConfig::broadwell();

    for (target, program) in [
        (Workload::masstree_ycsb(), "memcached"),
        (Workload::img_dnn_mnist(), "dnn"),
    ] {
        eprintln!("== {} cloned with {} ==", target.name, program);
        let t = profile(&target, &bdw, &s);
        let x = profile_perfprox(&t, &bdw, &s);
        let dm = clone_target(&target, program, &s);
        let d = profile(&dm.workload, &bdw, &s);

        r.line(format!(
            "-- {} (datamime uses the {program} program) --",
            target.name
        ));
        r.line(format!(
            "{:<24}\t{:>9}\t{:>9}\t{:>9}",
            "metric", "target", "perfprox", "datamime"
        ));
        for m in TABLE4_METRICS {
            r.line(row(m.key(), &[t.mean(m), x.mean(m), d.mean(m)]));
        }
        // Fig. 9's curves.
        let sizes: Vec<f64> = t
            .curve()
            .iter()
            .map(|p| (p.cache_bytes >> 20) as f64)
            .collect();
        if !sizes.is_empty() {
            for metric in CurveMetric::ALL {
                r.line(format!("  [{}]", metric.key()));
                r.line(row("  cache size (MB)", &sizes));
                r.line(row("  target", &t.curve_values(metric)));
                r.line(row("  perfprox", &x.curve_values(metric)));
                r.line(row("  datamime", &d.curve_values(metric)));
            }
        }
        r.line(String::new());
    }

    // The IPC-reweighting rerun for img-dnn (Sec. V-C).
    eprintln!("== img-dnn rerun with IPC weight x8 ==");
    let target = Workload::img_dnn_mnist();
    let t = profile(&target, &bdw, &s);
    let weights = MetricWeights::equal().with_dist_weight(DistMetric::Ipc, 8.0);
    let dm_w = clone_target_weighted(&target, "dnn", &s, &weights);
    let d_w = profile(&dm_w.workload, &bdw, &s);
    let dm = clone_target(&target, "dnn", &s);
    let d = profile(&dm.workload, &bdw, &s);
    let t_ipc = t.mean(DistMetric::Ipc);
    r.line(format!(
        "img-dnn IPC: target {:.3}; datamime equal-weights {:.3} ({:.1}% err); IPC-weighted {:.3} ({:.1}% err)",
        t_ipc,
        d.mean(DistMetric::Ipc),
        (d.mean(DistMetric::Ipc) - t_ipc).abs() / t_ipc * 100.0,
        d_w.mean(DistMetric::Ipc),
        (d_w.mean(DistMetric::Ipc) - t_ipc).abs() / t_ipc * 100.0,
    ));
    r.finish();
}
