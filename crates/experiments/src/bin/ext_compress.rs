//! Extension experiment: compressibility-aware dataset generation
//! (the paper's Sec. III-D future work, implemented).
//!
//! The target memcached dataset carries value *contents* with a given
//! redundancy. Datamime profiles only the target's memory-snapshot
//! compression ratio (one scalar — no values leak) and searches the
//! extended generator (Table III parameters + `value_redundancy`) with the
//! ratio mismatch added to the EMD objective. The synthesized dataset
//! should match both the performance profile and the compression ratio.

#![forbid(unsafe_code)]
use datamime::compress::{
    search_compress_aware, workload_compression_ratio, KvGeneratorCompressible,
};
use datamime::generator::DatasetGenerator;
use datamime::metrics::DistMetric;
use datamime::profiler::profile_workload;
use datamime::workload::{AppConfig, Workload};
use datamime_apps::KvConfig;
use datamime_experiments::{Report, Settings};

fn main() {
    let s = Settings::from_env();
    let mut r = Report::new("ext_compress");
    let cfg = {
        let mut c = s.search_config();
        c.profiling = c.profiling.without_curves();
        c
    };

    for target_redundancy in [0.2, 0.8] {
        eprintln!("== target redundancy {target_redundancy} ==");
        let mut target = Workload::mem_fb();
        target.name = format!("mem-fb-r{target_redundancy}");
        if let AppConfig::Kv(kv) = &mut target.app {
            kv.value_redundancy = Some(target_redundancy);
        }
        let target_ratio = workload_compression_ratio(&target).expect("target has contents");
        let target_profile = profile_workload(&target, &cfg.machine, &cfg.profiling);

        let generator = KvGeneratorCompressible::new();
        let outcome = search_compress_aware(&generator, &target_profile, target_ratio, 2.0, &cfg);
        let achieved_ratio =
            workload_compression_ratio(&outcome.best_workload).expect("generator emits contents");

        r.line(format!("-- target value redundancy {target_redundancy} --"));
        r.line(format!(
            "compression ratio: target {target_ratio:.3}  datamime {achieved_ratio:.3}  \
             (|diff| {:.3})",
            (achieved_ratio - target_ratio).abs()
        ));
        let t_ipc = target_profile.mean(DistMetric::Ipc);
        let d_ipc = outcome.best_profile.mean(DistMetric::Ipc);
        r.line(format!(
            "ipc: target {t_ipc:.3}  datamime {d_ipc:.3}  ({:.1}% err)",
            (d_ipc - t_ipc).abs() / t_ipc * 100.0
        ));
        for (name, value) in generator.describe(&outcome.best_unit_params) {
            if name == "value_redundancy" {
                r.line(format!("synthesized value_redundancy = {value:.3}"));
            }
        }
        r.line(String::new());
    }
    // Show that the vanilla memcached target has no content model: the
    // measurement degrades gracefully.
    let plain = Workload::mem_fb();
    r.line(format!(
        "plain mem-fb snapshot ratio: {:?} (no content model -> None)",
        workload_compression_ratio(&plain)
    ));
    let _ = KvConfig::facebook_like(); // referenced for doc purposes
    r.finish();
}
