//! Fig. 7: IPC and LLC-MPKI versus allocated cache size (1–12 MB via CAT
//! way partitioning) for each workload, comparing target, PerfProx, and
//! Datamime.

#![forbid(unsafe_code)]
use datamime::metrics::CurveMetric;
use datamime::profile::Profile;
use datamime_experiments::{
    clone_target, primary_targets_with_programs, profile, profile_perfprox, row, Report, Settings,
};
use datamime_sim::MachineConfig;
use datamime_stats::emd::curve_distance;

fn main() {
    let mut s = Settings::from_env();
    // Curves are the point of this figure: sweep every CAT allocation.
    s.profiling.curve_ways = (1..=12).collect();
    let mut r = Report::new("fig7");
    let bdw = MachineConfig::broadwell();

    for (target, program) in primary_targets_with_programs() {
        eprintln!("== {} ==", target.name);
        let t = profile(&target, &bdw, &s);
        let x = profile_perfprox(&t, &bdw, &s);
        let dm = clone_target(&target, program, &s);
        let d = profile(&dm.workload, &bdw, &s);

        let sizes: Vec<f64> = t
            .curve()
            .iter()
            .map(|p| (p.cache_bytes >> 20) as f64)
            .collect();
        r.line(format!("-- {} --", target.name));
        r.line(row("cache size (MB)", &sizes));
        for metric in CurveMetric::ALL {
            r.line(format!("  [{}]", metric.key()));
            r.line(row("  target", &t.curve_values(metric)));
            r.line(row("  perfprox", &x.curve_values(metric)));
            r.line(row("  datamime", &d.curve_values(metric)));
            let shape =
                |p: &Profile| curve_distance(&t.curve_values(metric), &p.curve_values(metric));
            r.line(format!(
                "  normalized curve distance to target: perfprox {:.3}  datamime {:.3}",
                shape(&x),
                shape(&d)
            ));
        }
        r.line(String::new());
    }
    r.line(
        "expected shape (paper): datamime tracks both curve shapes; perfprox \
         shows sharp cache cliffs at its array size and misses the shapes.",
    );
    r.finish();
}
