//! Fig. 4: eCDFs of CPU utilization and memory bandwidth for `mem-fb` —
//! the time-varying behaviour that black-box cloning cannot capture.
//!
//! Prints decile tables of each eCDF for the target, the PerfProx clone,
//! and the Datamime benchmark, plus the spread (p90 − p10) that makes the
//! static-proxy failure obvious.

#![forbid(unsafe_code)]
use datamime::metrics::DistMetric;
use datamime::workload::Workload;
use datamime_experiments::{clone_target, profile, profile_perfprox, row, Report, Settings};
use datamime_sim::MachineConfig;
use datamime_stats::Ecdf;

fn deciles(e: &Ecdf) -> Vec<f64> {
    (1..=9).map(|i| e.quantile(i as f64 / 10.0)).collect()
}

fn main() {
    let s = Settings::from_env();
    let mut r = Report::new("fig4");
    let bdw = MachineConfig::broadwell();

    let target = Workload::mem_fb();
    let t = profile(&target, &bdw, &s);
    let x = profile_perfprox(&t, &bdw, &s);
    let dm = clone_target(&target, "memcached", &s);
    let d = profile(&dm.workload, &bdw, &s);

    for (metric, label) in [
        (DistMetric::CpuUtilization, "CPU utilization"),
        (DistMetric::MemoryBandwidth, "memory bandwidth (GB/s)"),
    ] {
        r.line(format!("-- {label}: eCDF deciles p10..p90 --"));
        r.line(row("target", &deciles(t.dist(metric))));
        r.line(row("perfprox", &deciles(x.dist(metric))));
        r.line(row("datamime", &deciles(d.dist(metric))));
        let spread = |e: &Ecdf| e.quantile(0.9) - e.quantile(0.1);
        r.line(format!(
            "p90-p10 spread: target {:.3}  perfprox {:.3}  datamime {:.3}",
            spread(t.dist(metric)),
            spread(x.dist(metric)),
            spread(d.dist(metric))
        ));
        r.line(String::new());
    }
    r.line(
        "expected shape (paper): the target and datamime show wide, similar \
         distributions; perfprox collapses to a point (util pinned at 1.0).",
    );
    r.finish();
}
