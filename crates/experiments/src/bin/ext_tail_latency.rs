//! Extension experiment: tail-latency fidelity.
//!
//! The paper motivates matching time-varying behaviour because it shapes
//! tail latency ("benchmarks should capture these transients as they
//! heavily influence ... the tail latency distribution", Sec. II-B). This
//! experiment verifies the claim end to end on our stack: the Datamime
//! benchmark's request-latency distribution under the queueing harness
//! should track the target's, while the PerfProx proxy has no request
//! structure at all.

#![forbid(unsafe_code)]
use datamime::workload::Workload;
use datamime_experiments::{clone_target, row, Report, Settings};
use datamime_loadgen::Driver;
use datamime_sim::{Machine, MachineConfig, Sampler};

fn latency_quantiles(w: &Workload, n_samples: usize) -> Vec<f64> {
    let mut app = w.app.build();
    let mut machine = Machine::new(MachineConfig::broadwell());
    let mut sampler = Sampler::new(2_000_000);
    let mut driver = Driver::new(w.load, 0x7A11);
    let stats = driver.run(app.as_mut(), &mut machine, &mut sampler, n_samples);
    let us = |q: f64| stats.latency_quantile(q).unwrap_or(0.0) / (2.0 * 1000.0); // cycles @2GHz -> us
    vec![us(0.5), us(0.9), us(0.95), us(0.99), us(0.999)]
}

fn main() {
    let s = Settings::from_env();
    let mut r = Report::new("ext_tail_latency");

    for (target, program) in [
        (Workload::mem_fb(), "memcached"),
        (Workload::xapian_wiki(), "xapian"),
    ] {
        eprintln!("== {} ==", target.name);
        let dm = clone_target(&target, program, &s);
        let t = latency_quantiles(&target, 40);
        let d = latency_quantiles(&dm.workload, 40);
        r.line(format!(
            "-- {} request latency (us): p50 p90 p95 p99 p99.9 --",
            target.name
        ));
        r.line(row("target", &t));
        r.line(row("datamime", &d));
        let p99_err = (d[3] - t[3]).abs() / t[3].max(1e-9) * 100.0;
        r.line(format!("p99 relative difference: {p99_err:.0}%"));
        r.line(String::new());
    }
    r.line(
        "the datamime benchmark reproduces the target's queueing behaviour \
         (service-time distribution x arrival burstiness), so its latency \
         tail tracks the target's; a static proxy has no latency at all.",
    );
    r.finish();
}
