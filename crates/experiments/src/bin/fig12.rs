//! Figs. 12 and 13: Datamime on the multi-machine (networked)
//! configuration of `mem-fb` (Sec. V-F). The memcached server traverses
//! the kernel network stack and requests incur NIC/network latency; the
//! search runs against the networked target's profile.

#![forbid(unsafe_code)]
use datamime::generator::{DatasetGenerator, KvGenerator, ParamSpec};
use datamime::metrics::{CurveMetric, DistMetric};
use datamime::profiler::profile_workload;
use datamime::search::search;
use datamime::workload::{AppConfig, Workload};
use datamime_experiments::{row, Report, Settings};

/// The memcached generator with the networked code path enabled — the
/// networked experiment keeps the program configuration identical between
/// target and benchmark, as in the paper.
#[derive(Debug)]
struct NetworkedKvGenerator(KvGenerator);

impl DatasetGenerator for NetworkedKvGenerator {
    fn name(&self) -> &str {
        "memcached-networked"
    }
    fn param_specs(&self) -> &[ParamSpec] {
        self.0.param_specs()
    }
    fn instantiate(&self, unit: &[f64]) -> Workload {
        let mut w = self.0.instantiate(unit);
        if let AppConfig::Kv(c) = &mut w.app {
            c.networked = true;
        }
        w
    }
}

fn main() {
    let s = Settings::from_env();
    let mut r = Report::new("fig12");
    let cfg = {
        let mut c = s.search_config();
        c.profiling.curve_ways = (1..=12).collect();
        c
    };

    // Networked target: server + client on separate machines.
    let mut target = Workload::mem_fb();
    target.name = "mem-fb-net".to_owned();
    if let AppConfig::Kv(c) = &mut target.app {
        c.networked = true;
    }

    eprintln!("profiling networked target ...");
    let t = profile_workload(&target, &cfg.machine, &cfg.profiling);
    eprintln!("searching ({} iterations) ...", cfg.iterations);
    let outcome = search(&NetworkedKvGenerator(KvGenerator::new()), &t, &cfg);
    let d = outcome.best_profile;

    r.line(format!(
        "{:<24}\t{:>9}\t{:>9}",
        "metric", "target", "datamime"
    ));
    for m in [
        DistMetric::Ipc,
        DistMetric::LlcMpki,
        DistMetric::ICacheMpki,
        DistMetric::BranchMpki,
        DistMetric::CpuUtilization,
        DistMetric::MemoryBandwidth,
    ] {
        r.line(row(m.key(), &[t.mean(m), d.mean(m)]));
    }
    let t_ipc = t.mean(DistMetric::Ipc);
    let d_ipc = d.mean(DistMetric::Ipc);
    r.line(format!(
        "IPC MAPE {:.1}% (paper: 1%)  LLC MPKI MAE {:.2} (paper: 0.12)",
        (d_ipc - t_ipc).abs() / t_ipc * 100.0,
        (d.mean(DistMetric::LlcMpki) - t.mean(DistMetric::LlcMpki)).abs()
    ));

    // Fig. 13: curves.
    let sizes: Vec<f64> = t
        .curve()
        .iter()
        .map(|p| (p.cache_bytes >> 20) as f64)
        .collect();
    for metric in CurveMetric::ALL {
        r.line(format!("  [{}]", metric.key()));
        r.line(row("  cache size (MB)", &sizes));
        r.line(row("  target", &t.curve_values(metric)));
        r.line(row("  datamime", &d.curve_values(metric)));
    }
    r.finish();
}
