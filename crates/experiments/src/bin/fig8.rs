//! Fig. 8: distributions (eCDFs) of six key metrics across all workloads,
//! for the target, PerfProx, and Datamime. Printed as quartile tables plus
//! the per-metric normalized EMD that quantifies distribution match.

#![forbid(unsafe_code)]
use datamime::metrics::DistMetric;
use datamime_experiments::{
    clone_target, primary_targets_with_programs, profile, profile_perfprox, Report, Settings,
};
use datamime_sim::MachineConfig;
use datamime_stats::emd::emd_normalized;
use datamime_stats::Ecdf;

const METRICS: [DistMetric; 6] = [
    DistMetric::Ipc,
    DistMetric::CpuUtilization,
    DistMetric::ICacheMpki,
    DistMetric::L2Mpki,
    DistMetric::BranchMpki,
    DistMetric::MemoryBandwidth,
];

fn quartiles(e: &Ecdf) -> String {
    format!(
        "p25={:.3} p50={:.3} p75={:.3} p95={:.3}",
        e.quantile(0.25),
        e.quantile(0.5),
        e.quantile(0.75),
        e.quantile(0.95)
    )
}

fn main() {
    let s = Settings::from_env();
    let mut r = Report::new("fig8");
    let bdw = MachineConfig::broadwell();

    let mut emd_dm_total = 0.0;
    let mut emd_px_total = 0.0;
    let mut n = 0usize;
    for (target, program) in primary_targets_with_programs() {
        eprintln!("== {} ==", target.name);
        let t = profile(&target, &bdw, &s);
        let x = profile_perfprox(&t, &bdw, &s);
        let dm = clone_target(&target, program, &s);
        let d = profile(&dm.workload, &bdw, &s);

        r.line(format!("-- {} --", target.name));
        for m in METRICS {
            r.line(format!("  [{}]", m.key()));
            r.line(format!("    target   {}", quartiles(t.dist(m))));
            r.line(format!("    perfprox {}", quartiles(x.dist(m))));
            r.line(format!("    datamime {}", quartiles(d.dist(m))));
            let e_px = emd_normalized(t.dist(m), x.dist(m));
            let e_dm = emd_normalized(t.dist(m), d.dist(m));
            r.line(format!(
                "    normalized EMD: perfprox {e_px:.3}  datamime {e_dm:.3}"
            ));
            emd_px_total += e_px;
            emd_dm_total += e_dm;
            n += 1;
        }
        r.line(String::new());
    }
    r.line(format!(
        "mean normalized EMD over {} (workload, metric) pairs: datamime {:.3}  perfprox {:.3}",
        n,
        emd_dm_total / n as f64,
        emd_px_total / n as f64
    ));
    r.finish();
}
