//! Runs every experiment binary in sequence, regenerating the complete
//! evaluation under `results/`. Equivalent to the loop in README.md but
//! with per-step timing and a final manifest.

#![forbid(unsafe_code)]
use std::process::Command;
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "table2",
    "fig1",
    "fig3",
    "fig4",
    "fig6",
    "fig7",
    "fig8",
    "fig9_table4",
    "fig10",
    "fig11",
    "fig12",
    "ablations",
    "ext_compress",
    "ext_tail_latency",
    "ext_constrained",
];

fn main() {
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(std::path::Path::to_path_buf))
        .expect("executable directory");
    let total = Instant::now();
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        let bin = exe_dir.join(name);
        let t0 = Instant::now();
        eprintln!(">>> {name}");
        let status = Command::new(&bin).status();
        match status {
            Ok(s) if s.success() => {
                eprintln!("<<< {name} ok in {:.1?}", t0.elapsed());
            }
            Ok(s) => {
                eprintln!("<<< {name} FAILED ({s})");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("<<< {name} could not run ({e}); build with `cargo build --release -p datamime-experiments` first");
                failures.push(*name);
            }
        }
    }
    eprintln!("all experiments done in {:.1?}", total.elapsed());
    if failures.is_empty() {
        eprintln!("results written under results/");
    } else {
        eprintln!("failures: {failures:?}");
        std::process::exit(1);
    }
}
