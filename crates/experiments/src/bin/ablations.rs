//! Quality ablations for the design choices DESIGN.md calls out:
//!
//! 1. optimizer: Bayesian optimization vs random search at equal budget
//!    (justifies Sec. III-C's choice of BO);
//! 2. distance: EMD vs Kolmogorov–Smirnov in the error model (the paper
//!    cites KS as a viable alternative);
//! 3. acquisition: expected improvement vs lower confidence bound.
//!
//! Each ablation runs the real Datamime search on the (scaled) `mem-fb`
//! target and reports the final best error under the *EMD-equal* yardstick
//! so numbers are comparable across arms.

#![forbid(unsafe_code)]
use datamime::error_model::{profile_error, DistanceKind, MetricWeights};
use datamime::generator::KvGenerator;
use datamime::profiler::profile_workload;
use datamime::search::{search_with_runtime, OptimizerKind};
use datamime::workload::Workload;
use datamime_experiments::{Report, Settings};

fn main() {
    let s = Settings::from_env();
    let mut r = Report::new("ablations");
    let iters = s.iters.min(30);

    let base_cfg = {
        let mut c = s.search_config();
        c.iterations = iters;
        c.profiling = c.profiling.without_curves();
        c
    };
    // Keep the ablation target inside the generator's family (no
    // multigets) so arms are compared on search quality, not on the
    // irreducible model-mismatch floor.
    let mut target = Workload::mem_fb();
    if let datamime::workload::AppConfig::Kv(c) = &mut target.app {
        c.multiget_fraction = 0.0;
    }
    let target_profile = profile_workload(&target, &base_cfg.machine, &base_cfg.profiling);
    let yardstick = MetricWeights::equal();
    let score = |outcome: &datamime::search::SearchOutcome| {
        profile_error(&target_profile, &outcome.best_profile, &yardstick).total
    };

    // 1. BO vs random search.
    eprintln!("ablation 1: optimizer ...");
    let run = |cfg: &datamime::search::SearchConfig| {
        search_with_runtime(
            &KvGenerator::new(),
            &target_profile,
            cfg,
            &s.runtime_options(),
        )
        .expect("journal-less search cannot fail")
    };
    let bo = run(&base_cfg);
    let mut rnd_cfg = base_cfg.clone();
    rnd_cfg.optimizer = OptimizerKind::Random;
    let rnd = run(&rnd_cfg);
    r.line(format!(
        "optimizer @ {iters} iters: bayesian {:.4}  random {:.4}",
        score(&bo),
        score(&rnd)
    ));

    // 2. EMD vs KS distance in the objective.
    eprintln!("ablation 2: distance ...");
    let mut ks_cfg = base_cfg.clone();
    ks_cfg.weights.distance = DistanceKind::KolmogorovSmirnov;
    let ks = run(&ks_cfg);
    r.line(format!(
        "distance (scored by equal-weight EMD): emd-objective {:.4}  ks-objective {:.4}",
        score(&bo),
        score(&ks)
    ));

    // 3. Acquisition function. The search loop always uses EI; emulate LCB
    // by swapping the optimizer configuration at the bayesopt level and
    // driving the bare optimizer directly on the runtime executor.
    eprintln!("ablation 3: acquisition ...");
    {
        use datamime::generator::DatasetGenerator;
        use datamime_bayesopt::{Acquisition, BayesOpt, BoConfig};
        use datamime_runtime::{Executor, RunMeta};
        let generator = KvGenerator::new();
        let run_with = |acq: Acquisition| {
            let mut cfg = BoConfig::for_dims(generator.dims());
            cfg.acquisition = acq;
            let mut bo = BayesOpt::new(cfg, 0xAB1A);
            let meta = RunMeta {
                label: format!("ablation-acquisition-{acq:?}"),
                seed: 0xAB1A,
                dims: generator.dims(),
                iterations: iters,
                batch_k: 1,
                workers: 1,
                optimizer: "bayesian".to_string(),
            };
            let outcome = Executor::new(meta)
                .run_seq(&mut bo, &mut |unit, stages, _cancel| {
                    let w = stages.time("instantiate", || generator.instantiate(unit));
                    let p = stages.time("profile", || {
                        profile_workload(&w, &base_cfg.machine, &base_cfg.profiling)
                    });
                    stages.time("error", || {
                        profile_error(&target_profile, &p, &yardstick).total
                    })
                })
                .expect("journal-less run cannot fail");
            outcome.best_error
        };
        r.line(format!(
            "acquisition @ {iters} iters: expected-improvement {:.4}  lower-confidence-bound {:.4}",
            run_with(Acquisition::ExpectedImprovement),
            run_with(Acquisition::LowerConfidenceBound)
        ));
    }

    r.finish();
}
