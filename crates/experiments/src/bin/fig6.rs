//! Fig. 6: mean IPC, LLC MPKI, ICache MPKI, and branch MPKI of the five
//! target workloads versus the PerfProx and Datamime benchmarks, on
//! Broadwell (absolute values; the paper normalizes to the target).

#![forbid(unsafe_code)]
use datamime::metrics::DistMetric;
use datamime_experiments::{
    clone_target, primary_targets_with_programs, profile, profile_perfprox, row, Report, Settings,
};
use datamime_sim::MachineConfig;

fn main() {
    let s = Settings::from_env();
    let mut r = Report::new("fig6");
    let bdw = MachineConfig::broadwell();
    let metrics = [
        DistMetric::Ipc,
        DistMetric::LlcMpki,
        DistMetric::ICacheMpki,
        DistMetric::BranchMpki,
    ];

    let mut ipc_ape_dm = Vec::new();
    let mut ipc_ape_px = Vec::new();
    let mut mae_dm = vec![Vec::new(); metrics.len()];
    let mut mae_px = vec![Vec::new(); metrics.len()];

    r.line(format!(
        "{:<24}\t{:>9}\t{:>9}\t{:>9}",
        "workload/metric", "target", "perfprox", "datamime"
    ));
    for (target, program) in primary_targets_with_programs() {
        eprintln!("== {} ==", target.name);
        let t = profile(&target, &bdw, &s);
        let x = profile_perfprox(&t, &bdw, &s);
        let dm = clone_target(&target, program, &s);
        let d = profile(&dm.workload, &bdw, &s);
        for (i, &m) in metrics.iter().enumerate() {
            r.line(row(
                &format!("{} {}", target.name, m.key()),
                &[t.mean(m), x.mean(m), d.mean(m)],
            ));
            if m == DistMetric::Ipc {
                ipc_ape_dm.push((d.mean(m) - t.mean(m)).abs() / t.mean(m));
                ipc_ape_px.push((x.mean(m) - t.mean(m)).abs() / t.mean(m));
            } else {
                mae_dm[i].push((d.mean(m) - t.mean(m)).abs());
                mae_px[i].push((x.mean(m) - t.mean(m)).abs());
            }
        }
        r.line(String::new());
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    r.line("-- aggregate errors (paper values in parentheses) --");
    r.line(format!(
        "IPC MAPE: datamime {:.1}% (3.2%)  perfprox {:.1}% (42.9%)",
        mean(&ipc_ape_dm) * 100.0,
        mean(&ipc_ape_px) * 100.0
    ));
    for (i, (m, paper)) in [
        (DistMetric::LlcMpki, "0.34 vs 1.62"),
        (DistMetric::ICacheMpki, "1.16 vs 16.3"),
        (DistMetric::BranchMpki, "0.47 vs 3.22"),
    ]
    .iter()
    .enumerate()
    {
        r.line(format!(
            "{} MAE: datamime {:.2}  perfprox {:.2}  (paper: {paper})",
            m.key(),
            mean(&mae_dm[i + 1]),
            mean(&mae_px[i + 1])
        ));
    }
    r.finish();
}
