//! Extension experiment: statistically constrained search (Sec. VI-C).
//!
//! The operator discloses two coarse statistics of the production dataset
//! (mean key and value sizes, ±25%); the search box is confined to match.
//! Compared against the unconstrained search at the same budget, the
//! constrained search should reach a given error with fewer iterations —
//! the speedup the paper predicts for combining statistical modeling with
//! profile-guided generation.

#![forbid(unsafe_code)]
use datamime::constrained::{ConstrainedGenerator, ParamConstraint};
use datamime::generator::KvGenerator;
use datamime::profiler::profile_workload;
use datamime::search::search;
use datamime::workload::{AppConfig, Workload};
use datamime_experiments::{row, Report, Settings};

fn main() {
    let s = Settings::from_env();
    let mut r = Report::new("ext_constrained");
    let cfg = {
        let mut c = s.search_config();
        c.profiling = c.profiling.without_curves();
        c
    };

    // Target: mem-fb without multigets so both arms can fully match it.
    let mut target = Workload::mem_fb();
    if let AppConfig::Kv(c) = &mut target.app {
        c.multiget_fraction = 0.0;
    }
    let target_profile = profile_workload(&target, &cfg.machine, &cfg.profiling);

    // The operator-disclosed statistics (true values of the mem-fb
    // reference dataset: keys ~31 B, values ~300 B effective mean).
    let constraints = [
        ParamConstraint::within("key_size_mean", 31.0, 0.25),
        ParamConstraint::within("value_size_mean", 300.0, 0.25),
    ];

    eprintln!("unconstrained search ...");
    let plain = search(&KvGenerator::new(), &target_profile, &cfg);
    eprintln!("constrained search ...");
    let constrained_gen =
        ConstrainedGenerator::new(KvGenerator::new(), &constraints).expect("valid constraints");
    let constrained = search(&constrained_gen, &target_profile, &cfg);

    let decimate = |mins: &[f64]| -> Vec<f64> {
        let step = (mins.len() / 10).max(1);
        (0..mins.len()).step_by(step).map(|i| mins[i]).collect()
    };
    r.line(format!(
        "budget: {} iterations; disclosed statistics: key mean 31 B ±25%, value mean 300 B ±25%",
        cfg.iterations
    ));
    r.line(row(
        "unconstrained min EMD",
        &decimate(&plain.running_min()),
    ));
    r.line(row(
        "constrained   min EMD",
        &decimate(&constrained.running_min()),
    ));
    r.line(format!(
        "final error: unconstrained {:.4}  constrained {:.4}",
        plain.best_error, constrained.best_error
    ));

    // Iterations each arm needed to reach the worse arm's final error.
    let threshold = plain.best_error.max(constrained.best_error);
    let reach = |mins: &[f64]| mins.iter().position(|&e| e <= threshold).map(|i| i + 1);
    r.line(format!(
        "iterations to reach EMD {threshold:.4}: unconstrained {:?}  constrained {:?}",
        reach(&plain.running_min()),
        reach(&constrained.running_min())
    ));
    r.finish();
}
