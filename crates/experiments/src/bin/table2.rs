//! Table II: specifications of the three evaluation platforms.

#![forbid(unsafe_code)]
use datamime_experiments::Report;
use datamime_sim::MachineConfig;

fn main() {
    let mut r = Report::new("table2");
    for m in [
        MachineConfig::broadwell(),
        MachineConfig::zen2(),
        MachineConfig::silvermont(),
    ] {
        r.line(format!("-- {} --", m.name));
        r.line(format!(
            "  cores        1 simulated core @ {:.2} GHz, width {}",
            m.freq_ghz, m.issue_width
        ));
        r.line(format!("  L1I          {}", m.l1i));
        r.line(format!("  L1D          {}", m.l1d));
        r.line(format!("  L2           {}", m.l2));
        match m.llc {
            Some(llc) => r.line(format!(
                "  L3           {llc}; CAT partitions: {}",
                m.llc_partitions()
            )),
            None => r.line("  L3           none (L2 is the last level)"),
        }
        r.line(format!(
            "  ITLB/DTLB    {} / {} entries",
            m.itlb.entries, m.dtlb.entries
        ));
        r.line(format!(
            "  penalties    L2 {:.0}c, LLC {:.0}c, mem {:.0}c, mispredict {:.0}c, MLP {:.1}",
            m.penalties.l2_hit,
            m.penalties.llc_hit,
            m.penalties.memory,
            m.penalties.branch_mispredict,
            m.penalties.mlp
        ));
    }
    r.finish();
}
