//! Fig. 3: IPC of five target workloads versus three other schemes
//! (public dataset, PerfProx, Datamime), each validated on Broadwell,
//! Zen 2, and Silvermont.

#![forbid(unsafe_code)]
use datamime::metrics::DistMetric;
use datamime_experiments::{
    clone_target, primary_targets_with_programs, profile, profile_perfprox, public_counterpart,
    row, Report, Settings,
};
use datamime_sim::MachineConfig;

fn main() {
    let s = Settings::from_env();
    let mut r = Report::new("fig3");
    let machines = [
        MachineConfig::broadwell(),
        MachineConfig::zen2(),
        MachineConfig::silvermont(),
    ];

    r.line(format!(
        "{:<24}\t{:>9}\t{:>9}\t{:>9}\t{:>9}",
        "workload/machine", "target", "public", "perfprox", "datamime"
    ));

    let mut mape_datamime = Vec::new();
    let mut mape_perfprox = Vec::new();
    for (target, program) in primary_targets_with_programs() {
        eprintln!("== {} ==", target.name);
        let public = public_counterpart(&target.name);
        let t_bdw = profile(&target, &machines[0], &s);
        let dm = clone_target(&target, program, &s);
        for m in &machines {
            let t = profile(&target, m, &s).mean(DistMetric::Ipc);
            let p = profile(&public, m, &s).mean(DistMetric::Ipc);
            let x = profile_perfprox(&t_bdw, m, &s).mean(DistMetric::Ipc);
            let d = profile(&dm.workload, m, &s).mean(DistMetric::Ipc);
            r.line(row(&format!("{} {}", target.name, m.name), &[t, p, x, d]));
            mape_datamime.push((d - t).abs() / t);
            mape_perfprox.push((x - t).abs() / t);
        }
    }

    let mape = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64 * 100.0;
    r.line(String::new());
    r.line("IPC mean absolute percentage error across workloads x machines:");
    r.line(format!(
        "  datamime {:.1}%   perfprox {:.1}%   (paper, broadwell only: 3.2% vs 42.9%)",
        mape(&mape_datamime),
        mape(&mape_perfprox)
    ));
    r.finish();
}
