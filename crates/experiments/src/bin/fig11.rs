//! Fig. 11: the range of performance profiles each dataset generator can
//! produce. For IPC and LLC MPKI, sweep a range of requested target values
//! and report what a single-metric Datamime search actually achieves
//! (points on y = x are reachable).

#![forbid(unsafe_code)]
use datamime::generator::{
    DatasetGenerator, DnnGenerator, KvGenerator, SiloGenerator, XapianGenerator,
};
use datamime::metrics::DistMetric;
use datamime::scalar::{scalar_sweep, ScalarSearchConfig};
use datamime_experiments::{row, Report, Settings};

fn main() {
    let s = Settings::from_env();
    let mut r = Report::new("fig11");
    let points: usize = std::env::var("DATAMIME_SWEEP_POINTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8); // the paper uses 15
    let mut cfg = ScalarSearchConfig::fast(s.iters / 2);
    cfg.iterations = (s.iters / 2).max(6);
    cfg.profiling = s.profiling.clone().without_curves();

    let gens: Vec<Box<dyn DatasetGenerator>> = vec![
        Box::new(KvGenerator::new()),
        Box::new(SiloGenerator::new()),
        Box::new(XapianGenerator::new()),
        Box::new(DnnGenerator::new()),
    ];

    for (metric, lo, hi) in [
        (DistMetric::Ipc, 0.3, 3.0),
        (DistMetric::LlcMpki, 0.0, 30.0),
    ] {
        r.line(format!("-- target metric: {} --", metric.key()));
        for g in &gens {
            eprintln!("== {} / {} ==", g.name(), metric.key());
            let outcomes = scalar_sweep(g.as_ref(), metric, lo, hi, points, &cfg);
            let req: Vec<f64> = outcomes.iter().map(|o| o.requested).collect();
            let ach: Vec<f64> = outcomes.iter().map(|o| o.achieved).collect();
            r.line(format!("  [{}]", g.name()));
            r.line(row("  requested", &req));
            r.line(row("  achieved", &ach));
            let reachable_lo = ach.iter().cloned().fold(f64::INFINITY, f64::min);
            let reachable_hi = ach.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            r.line(format!(
                "  achievable range: {reachable_lo:.2} .. {reachable_hi:.2}"
            ));
        }
        r.line(String::new());
    }
    r.finish();
}
