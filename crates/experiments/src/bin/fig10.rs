//! Fig. 10: convergence — minimum observed total EMD versus optimizer
//! iteration, for each workload.
//!
//! Always runs the search live (the cache stores only final parameters),
//! and also reports how close the 25%-budget point gets to the final
//! minimum, mirroring the paper's 50-of-200-iterations discussion.

#![forbid(unsafe_code)]
use datamime::generator::generator_for_program;
use datamime::profiler::profile_workload;
use datamime::search::search_with_runtime;
use datamime_experiments::{primary_targets_with_programs, row, Report, Settings};

fn main() {
    let s = Settings::from_env();
    let mut r = Report::new("fig10");

    for (target, program) in primary_targets_with_programs() {
        eprintln!("== {} ==", target.name);
        let generator = generator_for_program(program).expect("generator exists");
        let cfg = s.search_config();
        let target_profile = profile_workload(&target, &cfg.machine, &cfg.profiling);
        let outcome = search_with_runtime(
            generator.as_ref(),
            &target_profile,
            &cfg,
            &s.runtime_options(),
        )
        .expect("journal-less search cannot fail");
        let mins = outcome.running_min();

        // Print the curve decimated to ~10 points.
        let step = (mins.len() / 10).max(1);
        let iters: Vec<f64> = (0..mins.len())
            .step_by(step)
            .map(|i| (i + 1) as f64)
            .collect();
        let vals: Vec<f64> = (0..mins.len()).step_by(step).map(|i| mins[i]).collect();
        r.line(format!("-- {} --", target.name));
        r.line(row("iteration", &iters));
        r.line(row("min total EMD", &vals));

        let quarter = mins[mins.len() / 4];
        let finale = *mins.last().unwrap();
        let first = mins[0];
        let frac = if first > finale {
            (first - quarter) / (first - finale)
        } else {
            1.0
        };
        r.line(format!(
            "progress at 25% budget: {:.0}% of total error reduction (final EMD {finale:.4})",
            frac * 100.0
        ));
        r.line(String::new());
    }
    r.finish();
}
