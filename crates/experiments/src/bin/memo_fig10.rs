//! Memo-cache accounting on a fig10-style convergence search.
//!
//! Runs the same bounded-resolution Datamime search twice — once with the
//! evaluation memo cache disabled (every suggestion pays a simulator run)
//! and once with it enabled — verifies the two runs produce bit-identical
//! histories and best points, and emits the evaluation savings as a JSON
//! object for `scripts/bench.sh` to embed in `BENCH_sim.json`.
//!
//! The search space is `QuantizedGenerator(KvGenerator, STEPS)`: in a
//! fully continuous space two suggestions are never bit-equal, so the
//! memo can only fire on journal replay; bounding each axis to a grid
//! makes the optimizer's late-stage re-suggestions exact (see
//! docs/PERFORMANCE.md). Usage: `memo_fig10 [-o FILE] [--check]`.

#![forbid(unsafe_code)]
use datamime::generator::{KvGenerator, QuantizedGenerator};
use datamime::profiler::profile_workload;
use datamime::search::{search_with_runtime, RuntimeOptions, SearchConfig, SearchOutcome};
use datamime::workload::Workload;
use std::fs;
use std::process::ExitCode;

/// Grid steps per parameter axis (7 values per axis).
const STEPS: u32 = 6;
/// Fig. 10 runs 200 iterations at paper fidelity; the bench uses the
/// same loop at reduced scale so it finishes in about a minute.
const ITERATIONS: usize = 100;
/// `--check` scale: just proves the harness runs end to end.
const CHECK_ITERATIONS: usize = 8;

fn run(iterations: usize, no_memo: bool) -> SearchOutcome {
    let mut cfg = SearchConfig::fast(iterations);
    cfg.profiling = cfg.profiling.without_curves();
    let generator = QuantizedGenerator::new(KvGenerator::new(), STEPS);
    let target = profile_workload(&Workload::mem_fb(), &cfg.machine, &cfg.profiling);
    let opts = RuntimeOptions {
        no_memo,
        ..RuntimeOptions::sequential()
    };
    search_with_runtime(&generator, &target, &cfg, &opts).expect("journal-less search cannot fail")
}

fn main() -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-o" => out_path = args.next(),
            "--check" => check = true,
            other => {
                eprintln!("memo_fig10: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let iterations = if check { CHECK_ITERATIONS } else { ITERATIONS };
    eprintln!("memo_fig10: running {iterations}-iteration search twice (memo off, then on)");
    let baseline = run(iterations, true);
    let memoized = run(iterations, false);

    // Memoization must never change results: identical suggestions,
    // identical errors (bit for bit), identical winner.
    let mut identical = baseline.history.len() == memoized.history.len()
        && baseline.best_unit_params == memoized.best_unit_params
        && baseline.best_error.to_bits() == memoized.best_error.to_bits()
        && baseline.best_profile.to_tsv() == memoized.best_profile.to_tsv();
    for (a, b) in baseline.history.iter().zip(&memoized.history) {
        identical &= a.unit_params == b.unit_params && a.error.to_bits() == b.error.to_bits();
    }
    if !identical {
        eprintln!("memo_fig10: FAIL — memoized run diverged from the baseline");
        return ExitCode::FAILURE;
    }

    let s = &memoized.stats;
    assert_eq!(baseline.stats.cache_hits, 0);
    assert_eq!(baseline.stats.evaluated, iterations);
    let savings = 100.0 * s.cache_hits as f64 / iterations as f64;
    let json = format!(
        "{{\n  \"search\": \"fig10-style convergence, mem-fb target, \
         QuantizedGenerator(memcached, steps={STEPS})\",\n  \
         \"iterations\": {iterations},\n  \
         \"baseline_sim_evaluations\": {},\n  \
         \"memoized_sim_evaluations\": {},\n  \
         \"cache_hits\": {},\n  \
         \"savings_pct\": {savings:.1},\n  \
         \"results_bit_identical\": true\n}}",
        baseline.stats.evaluated, s.evaluated, s.cache_hits
    );
    eprintln!(
        "memo_fig10: {} of {iterations} evaluations served from memo ({savings:.1}% saved), \
         results bit-identical",
        s.cache_hits
    );
    match out_path {
        Some(p) => fs::write(&p, json + "\n").expect("write memo accounting"),
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}
