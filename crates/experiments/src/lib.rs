//! Shared infrastructure for the experiment binaries that regenerate every
//! table and figure of the paper (see DESIGN.md for the index).
//!
//! Knobs (environment variables):
//!
//! - `DATAMIME_PROFILE` — `fast` (default) or `paper`: profiling fidelity;
//! - `DATAMIME_ITERS` — search iterations per benchmark (default 40;
//!   the paper runs 200);
//! - `DATAMIME_PARALLEL` — candidates evaluated per optimizer batch, on
//!   as many worker threads (default 1 = sequential);
//! - `DATAMIME_NO_CACHE` — set to disable the on-disk search cache.
//!
//! Searches are the expensive step, and several figures reuse the same
//! synthesized benchmarks, so best-parameter vectors are cached under
//! `results/search_cache/` keyed by target, generator, fidelity, and
//! iteration count.

#![forbid(unsafe_code)]
use datamime::generator::{generator_for_program, DatasetGenerator};
use datamime::profile::Profile;
use datamime::profiler::{profile_workload, ProfilingConfig};
use datamime::search::{search_with_runtime, RuntimeOptions, SearchConfig};
use datamime::workload::Workload;
use datamime::MetricWeights;
use std::fs;
use std::path::PathBuf;

/// Resolved experiment settings from the environment.
#[derive(Debug, Clone)]
pub struct Settings {
    /// Search iterations per benchmark.
    pub iters: usize,
    /// Profiling fidelity.
    pub profiling: ProfilingConfig,
    /// Candidates evaluated per optimizer batch (1 = sequential).
    pub parallel: usize,
    /// Whether the on-disk cache is enabled.
    pub cache: bool,
}

impl Settings {
    /// Reads settings from the environment (see module docs).
    pub fn from_env() -> Self {
        let profile = std::env::var("DATAMIME_PROFILE").unwrap_or_else(|_| "fast".into());
        let profiling = match profile.as_str() {
            "paper" => ProfilingConfig::paper_default(),
            _ => ProfilingConfig::fast(),
        };
        let iters = std::env::var("DATAMIME_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(40);
        let parallel = std::env::var("DATAMIME_PARALLEL")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1)
            .max(1);
        let cache = std::env::var("DATAMIME_NO_CACHE").is_err();
        Settings {
            iters,
            profiling,
            parallel,
            cache,
        }
    }

    /// The search configuration implied by these settings.
    pub fn search_config(&self) -> SearchConfig {
        let mut cfg = SearchConfig::paper_default();
        cfg.iterations = self.iters;
        cfg.profiling = self.profiling.clone();
        cfg
    }

    /// The runtime options implied by these settings (`DATAMIME_PARALLEL`
    /// batching; no journal).
    pub fn runtime_options(&self) -> RuntimeOptions {
        if self.parallel > 1 {
            RuntimeOptions::parallel(self.parallel)
        } else {
            RuntimeOptions::sequential()
        }
    }
}

fn cache_dir() -> PathBuf {
    PathBuf::from("results/search_cache")
}

fn cache_key(target: &Workload, generator: &dyn DatasetGenerator, cfg: &SearchConfig) -> String {
    // Fingerprint the metric weights so reweighted searches get their own
    // cache entries.
    let wfp: f64 = datamime::metrics::DistMetric::ALL
        .iter()
        .enumerate()
        .map(|(i, &m)| cfg.weights.dist_weight(m) * (i + 1) as f64)
        .sum();
    format!(
        "{}-{}-i{}-s{}-c{}-w{}",
        target.name,
        generator.name(),
        cfg.iterations,
        cfg.profiling.n_samples,
        cfg.profiling.curve_ways.len(),
        wfp
    )
}

fn load_cached(key: &str, dims: usize) -> Option<Vec<f64>> {
    let path = cache_dir().join(format!("{key}.tsv"));
    let text = fs::read_to_string(path).ok()?;
    let params: Vec<f64> = text
        .split_whitespace()
        .filter_map(|t| t.parse().ok())
        .collect();
    (params.len() == dims).then_some(params)
}

fn store_cached(key: &str, params: &[f64]) {
    let dir = cache_dir();
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let line = params
        .iter()
        .map(|p| p.to_string())
        .collect::<Vec<_>>()
        .join("\t");
    let _ = fs::write(dir.join(format!("{key}.tsv")), line);
}

/// A synthesized benchmark for one target: the Datamime search result.
#[derive(Debug)]
pub struct CloneResult {
    /// The synthesized workload.
    pub workload: Workload,
    /// Best unit-hypercube parameters.
    pub unit_params: Vec<f64>,
    /// Per-iteration error history (empty when served from cache).
    pub history: Vec<f64>,
}

/// Runs (or loads from cache) the Datamime search cloning `target` with the
/// generator matching `program`, using default equal metric weights.
///
/// # Panics
///
/// Panics if no generator exists for `program`.
pub fn clone_target(target: &Workload, program: &str, settings: &Settings) -> CloneResult {
    clone_target_weighted(target, program, settings, &MetricWeights::equal())
}

/// Like [`clone_target`] but with explicit metric weights (used by the
/// Sec. V-C reweighting experiment).
///
/// # Panics
///
/// Panics if no generator exists for `program`.
pub fn clone_target_weighted(
    target: &Workload,
    program: &str,
    settings: &Settings,
    weights: &MetricWeights,
) -> CloneResult {
    let generator = generator_for_program(program)
        .unwrap_or_else(|| panic!("no dataset generator for program {program}"));
    let mut cfg = settings.search_config();
    cfg.weights = weights.clone();
    let key = cache_key(target, generator.as_ref(), &cfg);

    if settings.cache {
        if let Some(params) = load_cached(&key, generator.dims()) {
            eprintln!("[cache] {key}");
            return CloneResult {
                workload: generator.instantiate(&params),
                unit_params: params,
                history: Vec::new(),
            };
        }
    }

    eprintln!("[search] {key} ({} iterations)", cfg.iterations);
    let target_profile = profile_workload(target, &cfg.machine, &cfg.profiling);
    let outcome = search_with_runtime(
        generator.as_ref(),
        &target_profile,
        &cfg,
        &settings.runtime_options(),
    )
    .expect("journal-less search cannot fail");
    if settings.cache {
        store_cached(&key, &outcome.best_unit_params);
    }
    CloneResult {
        workload: outcome.best_workload,
        unit_params: outcome.best_unit_params,
        history: outcome.history.iter().map(|r| r.error).collect(),
    }
}

/// Profiles a workload with this run's settings on a machine.
pub fn profile(w: &Workload, machine: &datamime_sim::MachineConfig, s: &Settings) -> Profile {
    profile_workload(w, machine, &s.profiling)
}

/// Formats a row of f64 cells after a label, TSV-style with fixed width.
pub fn row(label: &str, cells: &[f64]) -> String {
    let mut s = format!("{label:<24}");
    for c in cells {
        s.push_str(&format!("\t{c:>9.3}"));
    }
    s
}

/// Writes experiment output both to stdout and to `results/<name>.txt`.
pub struct Report {
    name: String,
    lines: Vec<String>,
}

impl Report {
    /// Starts a report.
    pub fn new(name: &str) -> Self {
        println!("==== {name} ====");
        Report {
            name: name.to_owned(),
            lines: vec![format!("==== {name} ====")],
        }
    }

    /// Emits one line.
    pub fn line(&mut self, text: impl AsRef<str>) {
        println!("{}", text.as_ref());
        self.lines.push(text.as_ref().to_owned());
    }

    /// Flushes the report to `results/<name>.txt`.
    pub fn finish(self) {
        let _ = fs::create_dir_all("results");
        let _ = fs::write(
            format!("results/{}.txt", self.name),
            self.lines.join("\n") + "\n",
        );
    }
}

/// The five primary targets with the program used to clone each.
pub fn primary_targets_with_programs() -> Vec<(Workload, &'static str)> {
    vec![
        (Workload::mem_fb(), "memcached"),
        (Workload::mem_twtr(), "memcached"),
        (Workload::silo_bidding(), "silo"),
        (Workload::xapian_wiki(), "xapian"),
        (Workload::dnn_resnet(), "dnn"),
    ]
}

/// The public-dataset counterpart of each primary target (the red bars).
pub fn public_counterpart(name: &str) -> Workload {
    match name {
        "mem-fb" | "mem-twtr" => Workload::mem_public(),
        "silo" => Workload::silo_public(),
        "xapian" => Workload::xapian_public(),
        "dnn" => Workload::dnn_public(),
        other => panic!("no public counterpart for {other}"),
    }
}

/// Profiles a PerfProx-style proxy generated from `target_broadwell` (the
/// paper generates all proxies on Broadwell) on `machine`, at saturation
/// (a fixed loop has no request structure).
pub fn profile_perfprox(
    target_broadwell: &Profile,
    machine: &datamime_sim::MachineConfig,
    s: &Settings,
) -> Profile {
    use datamime_perfproxy::{CloneStats, PerfProxClone};
    let stats = CloneStats::from_profile(target_broadwell);
    datamime::profile_app(
        &move || Box::new(PerfProxClone::new(stats, 0xFF0C)),
        datamime_loadgen::WorkloadSpec::poisson(1e9),
        machine,
        &s.profiling,
    )
}
