//! A minimal TOML subset parser (std-only, no crates.io access).
//!
//! Covers exactly what `audit.toml` and the workspace `Cargo.toml`s use:
//! `[table.paths]`, bare/quoted/dotted keys, basic strings, booleans,
//! (possibly multi-line) arrays, and inline tables. Numbers and dates are
//! accepted but kept as opaque text — no audit rule reads them.
//! `[[bin]]`-style arrays of tables are flattened: every occurrence
//! re-opens the table, so `Doc::table("bin")` returns all entries of all
//! occurrences concatenated — enough for scanning target paths, where the
//! grouping does not matter. Multi-line strings are not supported
//! (rejected with an error naming the line); nothing in this workspace
//! uses them.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic or literal string.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// An array of values.
    Array(Vec<Value>),
    /// An inline table `{ k = v, … }`.
    Inline(BTreeMap<String, Value>),
    /// Anything else (numbers, dates) kept as raw text.
    Other(String),
}

impl Value {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// One `key = value` entry with the 1-based line it was defined on.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Dotted key as written (`datamime-stats.workspace` keeps the dot).
    pub key: String,
    /// The parsed value.
    pub value: Value,
    /// 1-based source line of the key.
    pub line: u32,
}

/// A parsed document: entries grouped under their table headers. The
/// top-level (pre-header) table has the empty-string name.
#[derive(Debug, Default)]
pub struct Doc {
    tables: Vec<(String, Vec<Entry>)>,
}

impl Doc {
    /// The entries of table `name` (`""` for the top level), empty if the
    /// table is absent. Concatenates re-opened tables.
    pub fn table(&self, name: &str) -> Vec<&Entry> {
        self.tables
            .iter()
            .filter(|(n, _)| n == name)
            .flat_map(|(_, entries)| entries)
            .collect()
    }

    /// Table names in definition order (deduplicated, top level excluded).
    pub fn table_names(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for (name, _) in &self.tables {
            if !name.is_empty() && !seen.contains(&name.as_str()) {
                seen.push(name);
            }
        }
        seen
    }

    /// Looks up `key` in table `name`.
    pub fn get(&self, table: &str, key: &str) -> Option<&Entry> {
        self.table(table).into_iter().find(|e| e.key == key)
    }
}

/// A parse failure with its 1-based line.
#[derive(Debug)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line of the failure.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a TOML document (see the module docs for the supported subset).
pub fn parse(src: &str) -> Result<Doc, ParseError> {
    let mut p = Parser {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut doc = Doc::default();
    let mut current = (String::new(), Vec::new());
    loop {
        p.skip_trivia();
        let Some(c) = p.peek() else { break };
        if c == '[' {
            doc.tables.push(std::mem::replace(
                &mut current,
                (p.table_header()?, Vec::new()),
            ));
        } else {
            let line = p.line;
            let key = p.dotted_key()?;
            p.skip_spaces();
            if p.peek() != Some('=') {
                return p.fail("expected `=` after key");
            }
            p.bump();
            p.skip_spaces();
            let value = p.value()?;
            current.1.push(Entry { key, value, line });
        }
    }
    doc.tables.push(current);
    Ok(doc)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn fail<T>(&self, message: &str) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.to_string(),
            line: self.line,
        })
    }

    /// Skips spaces and tabs only (not newlines).
    fn skip_spaces(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t')) {
            self.bump();
        }
    }

    /// Skips whitespace (including newlines) and `#` comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while self.peek().is_some_and(|c| c != '\n') {
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn table_header(&mut self) -> Result<String, ParseError> {
        self.bump(); // '['
        let array_of_tables = self.peek() == Some('[');
        if array_of_tables {
            self.bump(); // second '[' of `[[bin]]`
        }
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c == ']' {
                self.bump();
                if array_of_tables {
                    if self.peek() != Some(']') {
                        return self.fail("expected `]]` closing array-of-tables header");
                    }
                    self.bump();
                }
                return Ok(name.trim().to_string());
            }
            if c == '\n' {
                break;
            }
            name.push(c);
            self.bump();
        }
        self.fail("unterminated table header")
    }

    fn dotted_key(&mut self) -> Result<String, ParseError> {
        let mut key = String::new();
        loop {
            self.skip_spaces();
            key.push_str(&self.key_segment()?);
            self.skip_spaces();
            if self.peek() == Some('.') {
                self.bump();
                key.push('.');
            } else {
                return Ok(key);
            }
        }
    }

    fn key_segment(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some('"') | Some('\'') => self.quoted_string(),
            Some(c) if c.is_alphanumeric() || c == '_' || c == '-' => {
                let mut seg = String::new();
                while let Some(c) = self.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '-' {
                        seg.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(seg)
            }
            _ => self.fail("expected a key"),
        }
    }

    fn quoted_string(&mut self) -> Result<String, ParseError> {
        let quote = self.bump().expect("caller saw the quote");
        let mut s = String::new();
        while let Some(c) = self.bump() {
            if c == quote {
                return Ok(s);
            }
            if c == '\n' {
                break;
            }
            if quote == '"' && c == '\\' {
                match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some(other) => {
                        s.push('\\');
                        s.push(other);
                    }
                    None => break,
                }
            } else {
                s.push(c);
            }
        }
        self.fail("unterminated string")
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some('"') | Some('\'') => Ok(Value::Str(self.quoted_string()?)),
            Some('[') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_trivia(); // arrays may span lines
                    match self.peek() {
                        Some(']') => {
                            self.bump();
                            return Ok(Value::Array(items));
                        }
                        Some(_) => {
                            items.push(self.value()?);
                            self.skip_trivia();
                            if self.peek() == Some(',') {
                                self.bump();
                            } else if self.peek() != Some(']') {
                                return self.fail("expected `,` or `]` in array");
                            }
                        }
                        None => return self.fail("unterminated array"),
                    }
                }
            }
            Some('{') => {
                self.bump();
                let mut map = BTreeMap::new();
                loop {
                    self.skip_spaces();
                    match self.peek() {
                        Some('}') => {
                            self.bump();
                            return Ok(Value::Inline(map));
                        }
                        Some(_) => {
                            let key = self.dotted_key()?;
                            self.skip_spaces();
                            if self.peek() != Some('=') {
                                return self.fail("expected `=` in inline table");
                            }
                            self.bump();
                            self.skip_spaces();
                            let value = self.value()?;
                            map.insert(key, value);
                            self.skip_spaces();
                            if self.peek() == Some(',') {
                                self.bump();
                            } else if self.peek() != Some('}') {
                                return self.fail("expected `,` or `}` in inline table");
                            }
                        }
                        None => return self.fail("unterminated inline table"),
                    }
                }
            }
            Some(_) => {
                // Bare scalar: bool, number, date — raw text up to a
                // delimiter.
                let mut raw = String::new();
                while let Some(c) = self.peek() {
                    if c == '\n' || c == ',' || c == ']' || c == '}' || c == '#' {
                        break;
                    }
                    raw.push(c);
                    self.bump();
                }
                let raw = raw.trim().to_string();
                match raw.as_str() {
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    "" => self.fail("expected a value"),
                    _ => Ok(Value::Other(raw)),
                }
            }
            None => self.fail("expected a value"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_keys_and_values() {
        let doc = parse(
            r#"
            top = "level"
            [package]
            name = "datamime-audit"  # trailing comment
            publish = false
            [a.b]
            list = ["x", "y"]
            "#,
        )
        .unwrap();
        assert_eq!(doc.get("", "top").unwrap().value.as_str(), Some("level"));
        assert_eq!(
            doc.get("package", "name").unwrap().value.as_str(),
            Some("datamime-audit")
        );
        assert_eq!(
            doc.get("package", "publish").unwrap().value.as_bool(),
            Some(false)
        );
        assert_eq!(
            doc.get("a.b", "list")
                .unwrap()
                .value
                .as_array()
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn parses_dotted_keys_and_inline_tables() {
        let doc = parse(
            r#"
            [dependencies]
            datamime-stats.workspace = true
            other = { path = "crates/other", features = ["x"] }
            "#,
        )
        .unwrap();
        let entries = doc.table("dependencies");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].key, "datamime-stats.workspace");
        match &entries[1].value {
            Value::Inline(map) => assert_eq!(map["path"].as_str(), Some("crates/other")),
            other => panic!("expected inline table, got {other:?}"),
        }
    }

    #[test]
    fn multiline_arrays_with_comments_and_trailing_commas() {
        let doc = parse("[x]\npaths = [\n  \"a\", # one\n  \"b\",\n]\n").unwrap();
        let arr = doc
            .get("x", "paths")
            .unwrap()
            .value
            .as_array()
            .unwrap()
            .to_vec();
        assert_eq!(arr, vec![Value::Str("a".into()), Value::Str("b".into())]);
    }

    #[test]
    fn entry_lines_are_tracked() {
        let doc = parse("a = 1\n[t]\nb = 2\n").unwrap();
        assert_eq!(doc.get("", "a").unwrap().line, 1);
        assert_eq!(doc.get("t", "b").unwrap().line, 3);
    }

    #[test]
    fn arrays_of_tables_flatten_into_one_table() {
        let doc = parse(
            "[[bin]]\nname = \"a\"\npath = \"src/bin/a.rs\"\n\
             [[bin]]\nname = \"b\"\npath = \"src/bin/b.rs\"\n",
        )
        .unwrap();
        let paths: Vec<&str> = doc
            .table("bin")
            .into_iter()
            .filter(|e| e.key == "path")
            .filter_map(|e| e.value.as_str())
            .collect();
        assert_eq!(paths, vec!["src/bin/a.rs", "src/bin/b.rs"]);
    }

    #[test]
    fn errors_carry_lines() {
        let err = parse("[t]\nkey\n").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
