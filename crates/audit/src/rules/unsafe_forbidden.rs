//! Rule `unsafe-forbidden`: every crate root carries
//! `#![forbid(unsafe_code)]`, and no scanned file uses `unsafe`.
//!
//! The attribute makes the compiler the enforcer; this rule makes its
//! *presence* CI-gated, so a refactor that drops the line (or a new
//! crate that never had it) fails the audit rather than silently
//! weakening the workspace. The textual `unsafe`-use check is the
//! belt-and-braces half: it fires even on code the compiler has not
//! built (a feature-gated module, a new bin target), and it gives the
//! audit's fixtures something observable without compiling them.

use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;

/// Checks that a crate-root file declares `#![forbid(unsafe_code)]`.
pub fn check_root(src: &SourceFile) -> Option<Diagnostic> {
    let toks = &src.tokens;
    for (i, t) in toks.iter().enumerate() {
        let is_inner_attr_head = t.is_punct('#')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('['))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("forbid"))
            && toks.get(i + 4).is_some_and(|n| n.is_punct('('));
        if !is_inner_attr_head {
            continue;
        }
        // Scan the forbid argument list for `unsafe_code`.
        let mut j = i + 5;
        while let Some(n) = toks.get(j) {
            if n.is_punct(')') {
                break;
            }
            if n.is_ident("unsafe_code") {
                return None;
            }
            j += 1;
        }
    }
    Some(Diagnostic::new(
        "unsafe-forbidden",
        &src.rel_path,
        1,
        "crate root is missing `#![forbid(unsafe_code)]`",
    ))
}

/// Flags every textual use of the `unsafe` keyword outside test code.
pub fn check_unsafe_use(src: &SourceFile) -> Vec<Diagnostic> {
    src.tokens
        .iter()
        .enumerate()
        .filter(|(i, t)| t.is_ident("unsafe") && !src.is_test_code(*i))
        .map(|(_, t)| {
            Diagnostic::new(
                "unsafe-forbidden",
                &src.rel_path,
                t.line,
                "`unsafe` is forbidden workspace-wide (every invariant here is \
                 enforceable in safe Rust)",
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(Path::new("crates/x/src/lib.rs"), src)
    }

    #[test]
    fn forbid_attribute_satisfies_the_root_check() {
        let src = parse("#![forbid(unsafe_code)]\n//! Docs.\npub fn f() {}\n");
        assert!(check_root(&src).is_none());
    }

    #[test]
    fn missing_or_wrong_attribute_is_reported() {
        for text in [
            "pub fn f() {}\n",
            "#![deny(unsafe_code)]\n", // deny is overridable; forbid is not
            "#![forbid(dead_code)]\n", // wrong lint
            "#[forbid(unsafe_code)]\nfn f() {}\n", // outer attr on an item, not the crate
        ] {
            let d = check_root(&parse(text));
            assert!(d.is_some(), "{text:?} passed");
            assert_eq!(d.unwrap().line, 1);
        }
    }

    #[test]
    fn forbid_among_other_inner_attrs_is_found() {
        let src = parse("#![warn(missing_docs)]\n#![forbid(unsafe_code, dead_code)]\n");
        assert!(check_root(&src).is_none());
    }

    #[test]
    fn unsafe_use_is_flagged_outside_tests_only() {
        let src = parse(
            "fn f() { unsafe { *p } }\n\
             #[cfg(test)]\nmod tests { fn t() { unsafe {} } }\n",
        );
        let diags = check_unsafe_use(&src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 1);
    }
}
