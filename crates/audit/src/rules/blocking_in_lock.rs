//! Rule `blocking-in-lock`: no blocking I/O or sleeps while a
//! `Mutex`/`RwLock` guard is live.
//!
//! The lock-order rule catches *inversions*; this rule catches the
//! other deadlock-and-latency family: holding a guard across a call
//! that can block indefinitely (socket reads, fsyncs, `sleep`,
//! `join`). In the serve daemon one connection thread sleeping inside
//! a shared-state guard stalls every other tenant — the fairness
//! guarantees are only as good as the critical sections are short.
//!
//! Guard liveness is tracked structurally: a guard is born at
//! `let g = recv.lock()` / `.read()` / `.write()` (the zero-argument
//! acquisition forms, possibly chained through `.unwrap()`), or at
//! `let g = lock(&m)` for the configured guard-returning helper
//! functions; it dies at the end of its enclosing block or at an
//! explicit `drop(g)`. Between birth and death, any call whose name is
//! in the configured blocking list is flagged.
//!
//! Honest limits: temporary guards (`lock(&m).cancel(job)`) are not
//! tracked — the guard dies within the statement; and a blocking call
//! hidden behind a project-local helper name is invisible unless that
//! name is added to the blocking list. The condvar idiom
//! `cv.wait(guard)` is exempted when a live guard is passed as an
//! argument — handing the guard over is the correct pattern, not a
//! violation.

use crate::config::BlockingInLockConfig;
use crate::diagnostics::Diagnostic;
use crate::parser;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Checks one file (the rule is workspace-global, path-unscoped).
pub fn check(src: &SourceFile, cfg: &BlockingInLockConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &src.tokens;
    for f in parser::functions(src) {
        if src.is_test_code(f.body.0) {
            continue;
        }
        // Guard name -> (live-from token idx, live-to token idx).
        let mut guards: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for b in parser::let_bindings(toks, f.body) {
            if b.names.len() != 1 || b.init.0 > b.init.1 {
                continue;
            }
            if !init_acquires_guard(toks, b.init, cfg) {
                continue;
            }
            let mut to = parser::scope_end(toks, b.stmt_end, f.body);
            // An explicit `drop(g)` ends the guard early.
            let calls = parser::calls_in(toks, (b.stmt_end, to));
            for c in &calls {
                if c.name == "drop"
                    && !c.is_macro
                    && c.arg_idents(toks).collect::<Vec<_>>() == vec![b.names[0].as_str()]
                {
                    to = c.start;
                    break;
                }
            }
            guards.insert(b.names[0].clone(), (b.stmt_end, to));
        }
        if guards.is_empty() {
            continue;
        }
        for c in parser::calls_in(toks, (f.body.0 + 1, f.body.1.saturating_sub(1))) {
            if c.is_macro || !cfg.blocking.iter().any(|b| b == &c.name) {
                continue;
            }
            let live: Vec<&str> = guards
                .iter()
                .filter(|(_, (from, to))| c.name_idx > *from && c.name_idx < *to)
                .map(|(name, _)| name.as_str())
                .collect();
            if live.is_empty() {
                continue;
            }
            // Condvar handoff: `cv.wait(guard)` consumes the guard.
            if matches!(c.name.as_str(), "wait" | "wait_timeout" | "wait_while")
                && c.arg_idents(toks).any(|a| live.contains(&a))
            {
                continue;
            }
            if src.is_test_code(c.name_idx) {
                continue;
            }
            out.push(Diagnostic::new(
                "blocking-in-lock",
                &src.rel_path,
                c.line,
                format!(
                    "`{}` can block while guard `{}` is live (held since line {}): \
                     shorten the critical section — copy what you need out of the \
                     guard, drop it, then do the blocking work",
                    c.name,
                    live.join("`, `"),
                    toks[guards[live[0]].0.min(toks.len() - 1)].line,
                ),
            ));
        }
    }
    out
}

/// Whether the initializer's value *is* a guard: the expression's
/// trailing call is `.lock()`/`.read()`/`.write()` (zero-argument,
/// chained off a receiver; `.unwrap()`/`.expect(…)` wrappers are peeled
/// first) or a configured guard-returning helper.
///
/// Trailing-call position matters: in
/// `let v = std::mem::take(&mut *lock(&m))` or a `match` arm that locks
/// internally, the guard is a *temporary* that dies within the
/// statement — the bound name is plain data, not a guard.
fn init_acquires_guard(
    toks: &[crate::lexer::Token],
    init: (usize, usize),
    cfg: &BlockingInLockConfig,
) -> bool {
    let calls = parser::calls_in(toks, init);
    let mut end = init.1;
    loop {
        let Some(c) = calls.iter().find(|c| !c.is_macro && c.args.1 == end) else {
            return false;
        };
        let zero_args = c.args.1 == c.args.0 + 1;
        let is_method = c.name_idx > 0 && toks[c.name_idx - 1].is_punct('.');
        match c.name.as_str() {
            "unwrap" | "expect" if is_method && c.name_idx >= 2 => {
                // Peel the wrapper and look at its receiver chain, which
                // must itself end in a call.
                end = c.name_idx - 2;
                if !toks.get(end).is_some_and(|t| t.is_punct(')')) {
                    return false;
                }
            }
            "lock" | "read" | "write" if zero_args && is_method => return true,
            name => {
                return cfg.guard_fns.iter().any(|g| g == name) && c.recv.is_none() && !zero_args;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn cfg() -> BlockingInLockConfig {
        BlockingInLockConfig {
            enabled: true,
            guard_fns: vec!["lock".into()],
            blocking: vec![
                "sleep".into(),
                "write_all".into(),
                "sync_all".into(),
                "read_frame".into(),
                "join".into(),
                "wait".into(),
            ],
        }
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::parse(Path::new("f.rs"), src), &cfg())
    }

    #[test]
    fn blocking_call_under_guard_is_flagged() {
        let diags = run("fn f() {\n\
               let g = state.lock().unwrap();\n\
               std::thread::sleep(d);\n\
               use_it(&g);\n\
             }\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`sleep`"));
        assert!(diags[0].message.contains("guard `g`"));
    }

    #[test]
    fn dropping_the_guard_first_is_clean() {
        let diags = run("fn f() {\n\
               let g = state.lock().unwrap();\n\
               let want = g.want;\n\
               drop(g);\n\
               std::thread::sleep(want);\n\
             }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn inner_block_scope_ends_the_guard() {
        let diags = run("fn f() {\n\
               { let g = state.write(); g.push(1); }\n\
               out.write_all(buf)?;\n\
             }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn guard_helper_fn_counts_and_condvar_wait_is_exempt() {
        let diags = run("fn f() {\n\
               let mut g = lock(&shared.state);\n\
               g = cv.wait(g).unwrap();\n\
               handle.join();\n\
             }\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`join`"));
    }

    #[test]
    fn io_write_with_args_is_not_an_acquisition() {
        let diags = run("fn f() { let n = sock.write(buf); std::thread::sleep(d); }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn value_taken_out_of_a_temporary_guard_is_not_a_guard() {
        // The guard inside `take(&mut *lock(..))` dies at the `;` — the
        // bound Vec is plain data and joining afterwards is the correct
        // drain idiom, not a violation.
        let diags = run("fn f() {\n\
               let threads = std::mem::take(&mut *lock(&shared.threads));\n\
               for t in threads { let _ = t.join(); }\n\
             }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn lock_inside_a_match_init_is_not_a_guard() {
        let diags = run("fn f() {\n\
               let resp = match req {\n\
                 Req::List => lock(&shared.jobs).len(),\n\
                 Req::Ping => 0,\n\
               };\n\
               conn.read_frame();\n\
               send(resp);\n\
             }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
