//! Rule `durability-protocol`: the crash-safety write discipline,
//! mechanically checked.
//!
//! The serve manifest and checkpoint code promise that a crash at any
//! instruction boundary leaves a recoverable state. That promise is a
//! *protocol*: create a temp file → write it → `sync_all` → `rename`
//! into place → `sync_all` the directory (so the rename itself is
//! durable). WAL appends follow the sibling protocol: append →
//! `sync_data`/`sync_all` before acknowledging. Each step is trivial to
//! forget in a refactor and invisible to tests that don't cut power.
//!
//! This rule runs a per-function state machine over file-handle
//! dataflow in the configured durability paths:
//!
//! - A **tracked handle** is a `let` binding whose initializer creates a
//!   file (`File::create`, `File::open`, an `OpenOptions` chain). Its
//!   *path identifiers* — the idents in the creating call's arguments —
//!   tie it to later `rename` calls.
//! - **Writes** are `write_all`/`write`/`set_len` method calls on the
//!   handle and `write!`/`writeln!` macros naming it first.
//! - **Syncs** are `sync_all`/`sync_data` on the handle (`flush` is
//!   *not* a sync: it empties userspace buffers and durably promises
//!   nothing).
//!
//! Violations:
//! 1. **write-without-sync** — a locally-created handle is written,
//!    never synced, and demonstrably dropped in this function (the rule
//!    stays silent when the handle escapes — returned, stored, or
//!    passed on — because the sync obligation moves with it).
//! 2. **rename-before-sync** — a `rename` whose arguments share an
//!    identifier with a written-but-not-yet-synced handle's path: the
//!    classic torn-checkpoint bug where the rename publishes
//!    unsynced bytes.
//! 3. **rename-without-dirsync** — a `rename` with no following
//!    directory-sync call (configured `dirsync-fns`, default
//!    `sync_dir`) in the same function: the file is durable but the
//!    *name* is not.

use crate::config::DurabilityConfig;
use crate::diagnostics::Diagnostic;
use crate::parser::{self, Call};
use crate::source::SourceFile;

/// Method names that write through a handle.
const WRITES: [&str; 3] = ["write_all", "write", "set_len"];
/// Method names that make written bytes durable.
const SYNCS: [&str; 2] = ["sync_all", "sync_data"];
/// Call names that create a file handle.
const CREATES: [&str; 3] = ["create", "open", "create_new"];

#[derive(Debug)]
struct Handle {
    name: String,
    /// Identifiers in the creating call's arguments (the path
    /// expression), used to associate the handle with renames.
    path_idents: Vec<String>,
    writes: Vec<usize>,
    syncs: Vec<usize>,
    /// Token indices where the handle is mentioned outside its own
    /// write/sync/drop calls — an escape ends the analysis obligation.
    escapes: Vec<usize>,
}

/// Checks one in-scope file.
pub fn check(src: &SourceFile, cfg: &DurabilityConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &src.tokens;
    for f in parser::functions(src) {
        if src.is_test_code(f.body.0) {
            continue;
        }
        let body = (f.body.0 + 1, f.body.1.saturating_sub(1));
        if body.0 > body.1 {
            continue;
        }
        let calls = parser::calls_in(toks, body);
        let mut handles: Vec<Handle> = Vec::new();
        for b in parser::let_bindings(toks, f.body) {
            if b.names.len() != 1 || b.init.0 > b.init.1 {
                continue;
            }
            if let Some(create) = calls.iter().find(|c| {
                c.name_idx >= b.init.0
                    && c.name_idx <= b.init.1
                    && !c.is_macro
                    && CREATES.contains(&c.name.as_str())
                    && is_file_creation(c)
            }) {
                handles.push(Handle {
                    name: b.names[0].clone(),
                    path_idents: create.arg_idents(toks).map(str::to_string).collect(),
                    writes: Vec::new(),
                    syncs: Vec::new(),
                    escapes: Vec::new(),
                });
            }
        }

        let renames: Vec<&Call> = calls
            .iter()
            .filter(|c| !c.is_macro && c.name == "rename")
            .collect();
        let dirsyncs: Vec<&Call> = calls
            .iter()
            .filter(|c| cfg.dirsync_fns.iter().any(|d| d == &c.name))
            .collect();

        // Classify every mention of each handle.
        for h in &mut handles {
            for c in &calls {
                let on_handle = c.recv.as_deref() == Some(h.name.as_str());
                if on_handle && WRITES.contains(&c.name.as_str()) {
                    h.writes.push(c.name_idx);
                } else if on_handle && SYNCS.contains(&c.name.as_str()) {
                    h.syncs.push(c.name_idx);
                } else if c.is_macro
                    && matches!(c.name.as_str(), "write" | "writeln")
                    && first_arg_is(toks, c, &h.name)
                {
                    h.writes.push(c.name_idx);
                } else if on_handle && c.name == "flush" {
                    // flush on the handle: neither write nor escape.
                } else if c.name == "drop"
                    && !c.is_macro
                    && c.arg_idents(toks).collect::<Vec<_>>() == vec![h.name.as_str()]
                {
                    // drop(h): not an escape.
                } else if !on_handle && !c.is_macro && c.arg_idents(toks).any(|a| a == h.name) {
                    h.escapes.push(c.name_idx);
                }
            }
            // Mentions outside any call (return position, struct
            // literal, tuple) also count as escapes.
            let mut i = body.0;
            while i <= body.1 {
                if toks[i].is_ident(&h.name)
                    && !(i > 0 && toks[i - 1].is_punct('.'))
                    && !calls.iter().any(|c| i >= c.start && i <= c.args.1)
                {
                    h.escapes.push(i);
                }
                i += 1;
            }
        }

        for h in &handles {
            let Some(&last_write) = h.writes.iter().max() else {
                continue;
            };
            let write_line = toks[last_write].line;
            let synced_after = h.syncs.iter().any(|&s| s > last_write);
            let escaped = h.escapes.iter().any(|&e| e > last_write);
            if !synced_after && !escaped {
                out.push(Diagnostic::new(
                    "durability-protocol",
                    &src.rel_path,
                    write_line,
                    format!(
                        "file handle `{}` is written here but dropped without \
                         `sync_all`/`sync_data` in `{}`: a crash after this write \
                         can lose or tear the data (fsync before the handle drops)",
                        h.name, f.name
                    ),
                ));
            }
            for r in &renames {
                let touches = r
                    .arg_idents(toks)
                    .any(|a| h.path_idents.iter().any(|p| p == a));
                if !touches {
                    continue;
                }
                let synced_before_rename = h.syncs.iter().any(|&s| s < r.name_idx);
                let wrote_before_rename = h.writes.iter().any(|&w| w < r.name_idx);
                if wrote_before_rename && !synced_before_rename {
                    out.push(Diagnostic::new(
                        "durability-protocol",
                        &src.rel_path,
                        r.line,
                        format!(
                            "`rename` publishes `{}` before it is fsynced in `{}`: \
                             a crash can install a torn file at the final path \
                             (sync_all the handle, then rename)",
                            h.name, f.name
                        ),
                    ));
                }
            }
        }

        for r in &renames {
            if src.is_test_code(r.name_idx) {
                continue;
            }
            let dir_synced_after = dirsyncs.iter().any(|d| d.name_idx > r.name_idx);
            if !dir_synced_after {
                out.push(Diagnostic::new(
                    "durability-protocol",
                    &src.rel_path,
                    r.line,
                    format!(
                        "`rename` in `{}` is not followed by a directory fsync \
                         ({}): the new name is not durable until the parent \
                         directory is synced",
                        f.name,
                        cfg.dirsync_fns.join("/"),
                    ),
                ));
            }
        }
    }
    out
}

/// Whether a `create`/`open` call is plausibly file creation: a path
/// call through `File`/`OpenOptions` (`File::create(p)`,
/// `opts.open(p)` at the end of an `OpenOptions` chain).
fn is_file_creation(c: &Call) -> bool {
    if let Some(path) = &c.path {
        let segs: Vec<&str> = path.split("::").collect();
        let qualifier = segs.len().checked_sub(2).map(|i| segs[i]);
        return matches!(qualifier, Some("File") | Some("OpenOptions"));
    }
    // Method form: `.open(p)` — accept when the receiver chain mentions
    // OpenOptions-ish configuration or the statement mentions
    // OpenOptions; cheapest reliable signal is the method name `open`
    // with a receiver (options builders end in `.open(path)`).
    c.name == "open" && c.recv.is_some()
}

/// Whether the first macro argument (before the first `,`) is exactly
/// the ident `name`.
fn first_arg_is(toks: &[crate::lexer::Token], c: &Call, name: &str) -> bool {
    let first = toks.get(c.args.0 + 1);
    let second = toks.get(c.args.0 + 2);
    first.is_some_and(|t| t.is_ident(name))
        && second.is_some_and(|t| t.is_punct(',') || t.is_punct(')'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn cfg() -> DurabilityConfig {
        DurabilityConfig {
            paths: Vec::new(),
            dirsync_fns: vec!["sync_dir".into()],
        }
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::parse(Path::new("f.rs"), src), &cfg())
    }

    #[test]
    fn the_full_checkpoint_protocol_is_clean() {
        let diags = run(
            "fn write_checkpoint(dir: &Path, tmp: &Path, fin: &Path) -> io::Result<()> {\n\
               let mut f = File::create(tmp)?;\n\
               f.write_all(payload.as_bytes())?;\n\
               f.sync_all()?;\n\
               drop(f);\n\
               std::fs::rename(tmp, fin)?;\n\
               sync_dir(dir)?;\n\
               Ok(())\n\
             }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn missing_fsync_before_drop_is_flagged() {
        let diags = run("fn save(p: &Path) -> io::Result<()> {\n\
               let mut f = File::create(p)?;\n\
               f.write_all(b\"x\")?;\n\
               Ok(())\n\
             }\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("without `sync_all`"));
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn rename_before_sync_is_flagged() {
        let diags = run(
            "fn publish(dir: &Path, tmp: &Path, fin: &Path) -> io::Result<()> {\n\
               let mut f = File::create(tmp)?;\n\
               f.write_all(b\"x\")?;\n\
               std::fs::rename(tmp, fin)?;\n\
               f.sync_all()?;\n\
               sync_dir(dir)?;\n\
               Ok(())\n\
             }\n",
        );
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("publishes `f` before it is fsynced")),
            "{diags:?}"
        );
    }

    #[test]
    fn rename_without_dirsync_is_flagged() {
        let diags = run("fn swap(a: &Path, b: &Path) -> io::Result<()> {\n\
               std::fs::rename(a, b)?;\n\
               Ok(())\n\
             }\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("directory fsync"));
    }

    #[test]
    fn escaping_handles_transfer_the_obligation() {
        let diags = run("fn open_segment(p: &Path) -> io::Result<File> {\n\
               let mut f = File::create(p)?;\n\
               f.write_all(HEADER)?;\n\
               Ok(f)\n\
             }\n\
             fn stash(p: &Path, reg: &mut Vec<File>) -> io::Result<()> {\n\
               let mut f = OpenOptions::new().append(true).open(p)?;\n\
               f.write_all(b\"x\")?;\n\
               reg.push(f);\n\
               Ok(())\n\
             }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn wal_append_with_sync_data_is_clean() {
        let diags = run("fn append(p: &Path, line: &[u8]) -> io::Result<()> {\n\
               let mut f = OpenOptions::new().append(true).open(p)?;\n\
               f.write_all(line)?;\n\
               f.sync_data()?;\n\
               Ok(())\n\
             }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
