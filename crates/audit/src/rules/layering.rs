//! Rule `layering`: the crate dependency graph must match the declared
//! layer matrix.
//!
//! The workspace layers bottom-up (stats → sim → apps → loadgen,
//! bayesopt → runtime, everything → core). The matrix in
//! `[layering.allow]` is the whole policy: each crate lists the internal
//! crates it may depend on. A crate missing from the matrix is itself a
//! violation — new crates must state their layer — and so is a matrix
//! row naming a crate that does not exist (a typo would otherwise grant
//! an allowance nobody uses). Only `[dependencies]` and
//! `[build-dependencies]` are gated; dev-dependencies shape the test
//! graph, not the product graph.

use crate::diagnostics::Diagnostic;
use crate::workspace::CrateInfo;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Checks every crate's internal dependencies against the matrix.
pub fn check(crates: &[CrateInfo], allow: &BTreeMap<String, Vec<String>>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let internal: BTreeSet<&str> = crates.iter().map(|c| c.name.as_str()).collect();

    for c in crates {
        let Some(allowed) = allow.get(&c.name) else {
            out.push(Diagnostic::new(
                "layering",
                &c.manifest_rel,
                0,
                format!(
                    "crate `{}` is not in the layering matrix: add a \
                     `[layering.allow]` row stating which internal crates it may use",
                    c.name
                ),
            ));
            continue;
        };
        for dep in &c.deps {
            if !internal.contains(dep.name.as_str()) {
                continue; // external (vendored shim or std-adjacent) — not layered
            }
            if !allowed.contains(&dep.name) {
                out.push(Diagnostic::new(
                    "layering",
                    &c.manifest_rel,
                    dep.line,
                    format!(
                        "`{}` may not depend on `{}` (allowed: [{}])",
                        c.name,
                        dep.name,
                        allowed.join(", ")
                    ),
                ));
            }
        }
    }

    // Matrix hygiene: rows and allowances must name real crates.
    for (row, allowed) in allow {
        if !internal.contains(row.as_str()) {
            out.push(Diagnostic::new(
                "layering",
                "audit.toml",
                0,
                format!("layering matrix row `{row}` names a crate that does not exist"),
            ));
        }
        for a in allowed {
            if !internal.contains(a.as_str()) {
                out.push(Diagnostic::new(
                    "layering",
                    "audit.toml",
                    0,
                    format!(
                        "layering matrix row `{row}` allows `{a}`, which is not a workspace crate"
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::DepRef;
    use std::path::PathBuf;

    fn krate(name: &str, deps: &[(&str, u32)]) -> CrateInfo {
        CrateInfo {
            name: name.to_string(),
            rel_dir: PathBuf::from(format!("crates/{name}")),
            manifest_rel: PathBuf::from(format!("crates/{name}/Cargo.toml")),
            deps: deps
                .iter()
                .map(|(n, l)| DepRef {
                    name: n.to_string(),
                    line: *l,
                })
                .collect(),
            root_files: Vec::new(),
        }
    }

    fn matrix(rows: &[(&str, &[&str])]) -> BTreeMap<String, Vec<String>> {
        rows.iter()
            .map(|(k, v)| (k.to_string(), v.iter().map(|s| s.to_string()).collect()))
            .collect()
    }

    #[test]
    fn allowed_graph_is_clean_and_externals_are_ignored() {
        let crates = vec![
            krate("stats", &[("proptest", 9)]),
            krate("sim", &[("stats", 8)]),
        ];
        let allow = matrix(&[("stats", &[]), ("sim", &["stats"])]);
        assert!(check(&crates, &allow).is_empty());
    }

    #[test]
    fn disallowed_edge_is_reported_at_its_manifest_line() {
        let crates = vec![
            krate("stats", &[]),
            krate("sim", &[("stats", 8), ("loadgen", 9)]),
            krate("loadgen", &[]),
        ];
        let allow = matrix(&[("stats", &[]), ("sim", &["stats"]), ("loadgen", &[])]);
        let diags = check(&crates, &allow);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 9);
        assert!(diags[0].message.contains("may not depend on `loadgen`"));
    }

    #[test]
    fn crate_missing_from_matrix_is_a_violation() {
        let crates = vec![krate("newcomer", &[])];
        let diags = check(&crates, &BTreeMap::new());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("not in the layering matrix"));
    }

    #[test]
    fn matrix_typos_are_violations() {
        let crates = vec![krate("stats", &[])];
        let allow = matrix(&[("stats", &["statz"]), ("ghost", &[])]);
        let diags = check(&crates, &allow);
        assert_eq!(diags.len(), 2);
    }
}
