//! Rule `lock-order`: consistent `Mutex`/`RwLock` acquisition order.
//!
//! The runtime's executor, supervisor, and watchdog coordinate through a
//! handful of locks; a deadlock between them stalls a whole search run.
//! This rule extracts, per function, the ordered sequence of
//! `<receiver>.lock()` / `.read()` / `.write()` acquisitions (exactly
//! the zero-argument forms `Mutex::lock`, `RwLock::read`,
//! `RwLock::write` take — `io::Write::write(buf)` never matches), builds
//! a workspace-wide acquired-before graph keyed by receiver path (with a
//! leading `self.` stripped so methods and free functions agree on a
//! lock's name), and reports every pair of locks acquired in both
//! orders.
//!
//! Heuristics, stated honestly: guards are assumed held to the end of
//! the function (an early `drop(guard)` can false-positive — suppress
//! with `audit:allow(lock-order)` and a reason), and re-acquiring the
//! *same* lock in one function is *not* flagged (loops that re-lock per
//! iteration are common and correct).

use crate::diagnostics::Diagnostic;
use crate::lexer::{TokKind, Token};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// One lock acquisition site.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Normalized receiver path naming the lock (`shared.state`).
    pub lock: String,
    /// 1-based line of the acquisition.
    pub line: u32,
}

/// The ordered acquisitions of one function.
#[derive(Debug, Clone)]
pub struct FnLocks {
    /// Function name.
    pub function: String,
    /// File the function lives in (workspace-relative).
    pub file: PathBuf,
    /// Acquisitions in source order.
    pub acquisitions: Vec<Acquisition>,
}

/// Extracts per-function acquisition sequences from one file.
pub fn collect(src: &SourceFile) -> Vec<FnLocks> {
    let toks = &src.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn")
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            && !src.is_test_code(i)
        {
            let name = toks[i + 1].text.clone();
            if let Some((body_start, body_end)) = body_span(toks, i + 2) {
                let acquisitions = acquisitions_in(toks, body_start, body_end);
                if !acquisitions.is_empty() {
                    out.push(FnLocks {
                        function: name,
                        file: src.rel_path.clone(),
                        acquisitions,
                    });
                }
                // Continue scanning *inside* the body too: nested fns are
                // picked up as their own functions on later iterations.
                i = body_start + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Finds the `{ … }` body of a function whose signature starts at `i`;
/// `None` for body-less declarations (`fn f();` in traits).
fn body_span(toks: &[Token], mut i: usize) -> Option<(usize, usize)> {
    let mut paren_depth = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') {
            paren_depth += 1;
        } else if t.is_punct(')') {
            paren_depth = paren_depth.saturating_sub(1);
        } else if paren_depth == 0 {
            if t.is_punct(';') {
                return None;
            }
            if t.is_punct('{') {
                let mut depth = 0usize;
                let start = i;
                while i < toks.len() {
                    if toks[i].is_punct('{') {
                        depth += 1;
                    } else if toks[i].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            return Some((start, i));
                        }
                    }
                    i += 1;
                }
                return Some((start, toks.len()));
            }
        }
        i += 1;
    }
    None
}

/// Collects `receiver.lock()/read()/write()` acquisitions in
/// `toks[start..end]`, skipping nested `fn` bodies (they are reported as
/// their own functions).
fn acquisitions_in(toks: &[Token], start: usize, end: usize) -> Vec<Acquisition> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            if let Some((_, nested_end)) = body_span(toks, i + 2) {
                i = nested_end + 1;
                continue;
            }
        }
        let is_acquire = matches!(toks[i].text.as_str(), "lock" | "read" | "write")
            && toks[i].kind == TokKind::Ident
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(')'));
        if is_acquire {
            if let Some(lock) = receiver_path(toks, i - 2) {
                out.push(Acquisition {
                    lock,
                    line: toks[i].line,
                });
            }
        }
        i += 1;
    }
    out
}

/// Reconstructs the dotted receiver ending at token `leaf`
/// (`self.shared.state` → `shared.state`); `None` when the receiver is
/// not a plain path (e.g. `make().lock()`).
fn receiver_path(toks: &[Token], leaf: usize) -> Option<String> {
    if toks.get(leaf)?.kind != TokKind::Ident {
        return None;
    }
    let mut parts = vec![toks[leaf].text.clone()];
    let mut i = leaf;
    while i >= 2 && toks[i - 1].is_punct('.') && toks[i - 2].kind == TokKind::Ident {
        i -= 2;
        parts.push(toks[i].text.clone());
    }
    parts.reverse();
    if parts.first().is_some_and(|p| p == "self") {
        parts.remove(0);
    }
    if parts.is_empty() {
        return None;
    }
    Some(parts.join("."))
}

/// A witness that `first` was acquired before `second`.
#[derive(Debug, Clone)]
struct Edge {
    function: String,
    file: PathBuf,
    line: u32,
}

/// Builds the acquired-before graph and reports both-orders pairs.
pub fn report(functions: &[FnLocks]) -> Vec<Diagnostic> {
    // (first, second) -> first witness.
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for f in functions {
        for (a_idx, a) in f.acquisitions.iter().enumerate() {
            for b in f.acquisitions.iter().skip(a_idx + 1) {
                if a.lock == b.lock {
                    continue; // re-acquiring in a loop is not an inversion
                }
                edges
                    .entry((a.lock.clone(), b.lock.clone()))
                    .or_insert_with(|| Edge {
                        function: f.function.clone(),
                        file: f.file.clone(),
                        line: b.line,
                    });
            }
        }
    }
    let mut out = Vec::new();
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for ((a, b), fwd) in &edges {
        let key = if a < b {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        };
        if reported.contains(&key) {
            continue;
        }
        if let Some(rev) = edges.get(&(b.clone(), a.clone())) {
            reported.insert(key);
            out.push(Diagnostic::new(
                "lock-order",
                &fwd.file,
                fwd.line,
                format!(
                    "potential deadlock: `{a}` is acquired before `{b}` in `{}` \
                     ({}:{}), but `{b}` before `{a}` in `{}` ({}:{})",
                    fwd.function,
                    fwd.file.display(),
                    fwd.line,
                    rev.function,
                    rev.file.display(),
                    rev.line,
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn locks_of(src: &str) -> Vec<FnLocks> {
        collect(&SourceFile::parse(Path::new("f.rs"), src))
    }

    #[test]
    fn extracts_ordered_acquisitions_with_self_stripped() {
        let fns = locks_of(
            "impl W {\n\
               fn register(&self) {\n\
                 let a = self.shared.state.lock().unwrap();\n\
                 let b = queue.write();\n\
               }\n\
             }\n\
             fn watch(shared: &S) { let g = shared.state.lock(); }\n",
        );
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].function, "register");
        assert_eq!(fns[0].acquisitions[0].lock, "shared.state");
        assert_eq!(fns[0].acquisitions[1].lock, "queue");
        assert_eq!(fns[1].acquisitions[0].lock, "shared.state");
    }

    #[test]
    fn io_write_with_arguments_is_not_an_acquisition() {
        let fns = locks_of("fn f(w: &mut W) { w.write(buf); out.write_all(b).unwrap(); }\n");
        assert!(fns.is_empty(), "{fns:?}");
    }

    #[test]
    fn inversion_across_functions_is_reported_once() {
        let fns = locks_of(
            "fn ab() { let x = a.lock(); let y = b.lock(); }\n\
             fn ba() { let y = b.lock(); let x = a.lock(); }\n",
        );
        let diags = report(&fns);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("potential deadlock"));
        assert!(diags[0].message.contains("`ab`") && diags[0].message.contains("`ba`"));
    }

    #[test]
    fn relocking_in_a_loop_is_not_flagged() {
        let fns = locks_of("fn pump() { loop { let j = rx.lock(); drop(j); } }\n");
        let diags = report(&fns);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn consistent_order_across_functions_is_clean() {
        let fns = locks_of(
            "fn one() { let x = a.lock(); let y = b.lock(); }\n\
             fn two() { let x = a.lock(); let y = b.lock(); }\n",
        );
        assert!(report(&fns).is_empty());
    }
}
