//! Rule `wire-compat`: frame kinds, journal event kinds, and their
//! version constants, pinned by a committed lockfile.
//!
//! The dist protocol and the journal are *persistent* surfaces: frames
//! cross process boundaries between mixed binary versions, and journals
//! written months ago must replay today. Renumbering `Frame::EvalOk`,
//! reusing a retired kind byte, or adding a journal event without
//! bumping `WIRE_REVISION`/`JOURNAL_VERSION` silently breaks both — and
//! no test notices, because tests always run one binary against itself.
//!
//! This rule parses, from the configured files:
//!
//! - integer constants whose names end in `_VERSION` or `_REVISION`;
//! - string-array constants whose names end in `_EVENT_KINDS` (the
//!   registries of journal/WAL event kind strings);
//! - the `Variant => number` arms of any `fn kind` body (the dist frame
//!   kind mapping);
//!
//! and compares them against the committed `audit.wire.lock` baseline.
//! A kind change while every version constant in the same file is
//! unchanged is the headline violation: *wire surface changed without a
//! revision bump*. A version bump without a regenerated lock is the
//! lesser violation: *stale lock* (run `datamime-audit wire-lock
//! --update`). Either way the gate only opens when the revision and the
//! lockfile move together with the code — which is exactly the diff a
//! reviewer needs to see.

use crate::config::WireCompatConfig;
use crate::diagnostics::Diagnostic;
use crate::lexer::{TokKind, Token};
use crate::parser;
use crate::source::SourceFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The wire-relevant facts extracted from one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireFacts {
    /// `_VERSION`/`_REVISION` constants: name -> (value, line).
    pub versions: BTreeMap<String, (String, u32)>,
    /// `fn kind` match arms: `Type::Variant` -> (number, line).
    pub kinds: BTreeMap<String, (String, u32)>,
    /// `_EVENT_KINDS` string arrays: name -> (sorted kinds, line).
    pub kindsets: BTreeMap<String, (Vec<String>, u32)>,
}

impl WireFacts {
    /// Whether nothing wire-relevant was found (config probably points
    /// at the wrong file).
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty() && self.kinds.is_empty() && self.kindsets.is_empty()
    }
}

/// Extracts wire facts from one source file.
pub fn extract(src: &SourceFile) -> WireFacts {
    let toks = &src.tokens;
    let mut facts = WireFacts::default();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("const") && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            let name = toks[i + 1].text.clone();
            if name.ends_with("_VERSION") || name.ends_with("_REVISION") {
                if let Some(v) = const_int_value(toks, i + 2) {
                    facts.versions.insert(name, (v, toks[i + 1].line));
                }
            } else if name.ends_with("_EVENT_KINDS") {
                let kinds = const_str_array(toks, i + 2);
                if !kinds.is_empty() {
                    facts.kindsets.insert(name, (kinds, toks[i + 1].line));
                }
            }
        }
        if t.is_ident("fn") && toks.get(i + 1).is_some_and(|n| n.is_ident("kind")) {
            if let Some(body) = parser::body_span(toks, i + 2) {
                kind_arms(toks, body, &mut facts);
                i = body.1 + 1;
                continue;
            }
        }
        i += 1;
    }
    facts
}

/// The integer literal a `const NAME: ty = <int>;` assigns, scanning
/// from just after the name.
fn const_int_value(toks: &[Token], mut i: usize) -> Option<String> {
    while i < toks.len() && !toks[i].is_punct(';') {
        if parser::is_assign_eq(toks, i) {
            let v = toks.get(i + 1)?;
            if v.kind == TokKind::Literal
                && v.text.chars().next().is_some_and(|c| c.is_ascii_digit())
            {
                // Strip a type suffix (`2u32` -> `2`).
                let digits: String = v.text.chars().take_while(|c| c.is_ascii_digit()).collect();
                return Some(digits);
            }
            return None;
        }
        i += 1;
    }
    None
}

/// The string literals of a `const NAME: &[&str] = &[ … ];`, sorted.
fn const_str_array(toks: &[Token], mut i: usize) -> Vec<String> {
    let mut out = Vec::new();
    while i < toks.len() && !toks[i].is_punct(';') {
        if let Some(s) = toks[i].str_content() {
            out.push(s.to_string());
        }
        i += 1;
    }
    out.sort();
    out
}

/// Collects `Type::Variant … => <number>` arms inside a `fn kind` body.
fn kind_arms(toks: &[Token], body: (usize, usize), facts: &mut WireFacts) {
    let mut i = body.0 + 1;
    while i + 3 < body.1 {
        let is_variant = toks[i].kind == TokKind::Ident
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].kind == TokKind::Ident;
        if is_variant {
            let variant = format!("{}::{}", toks[i].text, toks[i + 3].text);
            let line = toks[i].line;
            // Skip the payload pattern (`{ .. }` / `( … )`) to `=>`.
            let mut j = i + 4;
            if toks
                .get(j)
                .is_some_and(|t| t.is_punct('{') || t.is_punct('('))
            {
                let close = if toks[j].is_punct('{') {
                    matching_brace(toks, j)
                } else {
                    parser::close_paren(toks, j)
                };
                if let Some(c) = close {
                    j = c + 1;
                }
            }
            let is_arrow = toks.get(j).is_some_and(|t| t.is_punct('='))
                && toks.get(j + 1).is_some_and(|t| t.is_punct('>'))
                && toks[j].end == toks[j + 1].start;
            if is_arrow {
                if let Some(num) = toks.get(j + 2).filter(|t| {
                    t.kind == TokKind::Literal
                        && t.text.chars().next().is_some_and(|c| c.is_ascii_digit())
                }) {
                    facts.kinds.insert(variant, (num.text.clone(), line));
                    i = j + 3;
                    continue;
                }
            }
        }
        i += 1;
    }
}

fn matching_brace(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Renders the canonical lockfile text for the extracted facts, in
/// config file order.
pub fn render_lock(files: &[(PathBuf, WireFacts)]) -> String {
    let mut out = String::from(
        "# audit.wire.lock — committed baseline of wire/journal compatibility\n\
         # surfaces: frame kinds, journal/WAL event kinds, and the version\n\
         # constants that must move when they do.\n\
         #\n\
         # Checked by `datamime-audit check` (rule: wire-compat).\n\
         # Regenerate with: cargo run -p datamime-audit -- wire-lock --update\n\
         # (which refuses to re-baseline kind changes unless the revision\n\
         # constant was bumped too).\n",
    );
    for (path, facts) in files {
        out.push_str(&format!("\nfile {}\n", path.display()));
        for (name, (value, _)) in &facts.versions {
            out.push_str(&format!("version {name} = {value}\n"));
        }
        for (variant, (num, _)) in &facts.kinds {
            out.push_str(&format!("kind {variant} = {num}\n"));
        }
        for (name, (kinds, _)) in &facts.kindsets {
            out.push_str(&format!("kindset {name} = {}\n", kinds.join(",")));
        }
    }
    out
}

/// Parses a lockfile back into per-file facts (lines are ignored: the
/// lock stores no source positions).
pub fn parse_lock(text: &str) -> BTreeMap<PathBuf, WireFacts> {
    let mut out = BTreeMap::new();
    let mut current: Option<PathBuf> = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(path) = line.strip_prefix("file ") {
            let p = PathBuf::from(path.trim());
            out.entry(p.clone()).or_insert_with(WireFacts::default);
            current = Some(p);
            continue;
        }
        let Some(cur) = current.as_ref().and_then(|p| out.get_mut(p)) else {
            continue;
        };
        if let Some(rest) = line.strip_prefix("version ") {
            if let Some((name, value)) = rest.split_once(" = ") {
                cur.versions
                    .insert(name.trim().to_string(), (value.trim().to_string(), 0));
            }
        } else if let Some(rest) = line.strip_prefix("kind ") {
            if let Some((variant, num)) = rest.split_once(" = ") {
                cur.kinds
                    .insert(variant.trim().to_string(), (num.trim().to_string(), 0));
            }
        } else if let Some(rest) = line.strip_prefix("kindset ") {
            if let Some((name, kinds)) = rest.split_once(" = ") {
                let mut list: Vec<String> = kinds
                    .trim()
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
                list.sort();
                cur.kindsets.insert(name.trim().to_string(), (list, 0));
            }
        }
    }
    out
}

/// Compares extracted facts against the lock and reports violations.
/// `lock_text` is `None` when the lockfile does not exist.
pub fn check_against_lock(
    current: &[(PathBuf, WireFacts)],
    lock_text: Option<&str>,
    cfg: &WireCompatConfig,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(lock_text) = lock_text else {
        out.push(Diagnostic::new(
            "wire-compat",
            &cfg.lock,
            0,
            format!(
                "wire lockfile `{}` is missing: run `datamime-audit wire-lock --update` \
                 and commit it",
                cfg.lock.display()
            ),
        ));
        return out;
    };
    let locked = parse_lock(lock_text);
    for (path, facts) in current {
        if facts.is_empty() {
            out.push(Diagnostic::new(
                "wire-compat",
                path,
                0,
                "configured as a wire surface but no version constants, \
                 `fn kind` arms, or `_EVENT_KINDS` registries were found \
                 (fix [wire-compat] files or restore the constants)",
            ));
            continue;
        }
        let Some(lock) = locked.get(path) else {
            out.push(Diagnostic::new(
                "wire-compat",
                path,
                0,
                format!(
                    "not present in `{}` (stale lock): run `datamime-audit \
                     wire-lock --update`",
                    cfg.lock.display()
                ),
            ));
            continue;
        };
        let versions_changed = keys_and_values(&facts.versions) != keys_and_values(&lock.versions);
        let mut kind_diffs: Vec<(String, u32)> = Vec::new();
        diff_map(&facts.kinds, &lock.kinds, "frame kind", &mut kind_diffs);
        diff_sets(&facts.kindsets, &lock.kindsets, &mut kind_diffs);
        if !kind_diffs.is_empty() && !versions_changed {
            for (what, line) in &kind_diffs {
                out.push(Diagnostic::new(
                    "wire-compat",
                    path,
                    *line,
                    format!(
                        "{what} without a revision bump: old readers/writers will \
                         misparse this surface — bump the `_REVISION`/`_VERSION` \
                         constant here and run `datamime-audit wire-lock --update`"
                    ),
                ));
            }
        } else if versions_changed || !kind_diffs.is_empty() {
            let line = facts.versions.values().map(|(_, l)| *l).min().unwrap_or(0);
            out.push(Diagnostic::new(
                "wire-compat",
                path,
                line,
                format!(
                    "wire surface changed and `{}` is stale: run `datamime-audit \
                     wire-lock --update` and commit the new baseline",
                    cfg.lock.display()
                ),
            ));
        }
    }
    for path in locked.keys() {
        if !current.iter().any(|(p, _)| p == path) {
            out.push(Diagnostic::new(
                "wire-compat",
                &cfg.lock,
                0,
                format!(
                    "`{}` is locked but no longer configured in [wire-compat] \
                     files: run `datamime-audit wire-lock --update`",
                    path.display()
                ),
            ));
        }
    }
    out
}

fn keys_and_values(m: &BTreeMap<String, (String, u32)>) -> Vec<(&str, &str)> {
    m.iter()
        .map(|(k, (v, _))| (k.as_str(), v.as_str()))
        .collect()
}

/// Describes additions, removals, and renumberings between two maps.
fn diff_map(
    cur: &BTreeMap<String, (String, u32)>,
    lock: &BTreeMap<String, (String, u32)>,
    what: &str,
    out: &mut Vec<(String, u32)>,
) {
    for (k, (v, line)) in cur {
        match lock.get(k) {
            None => out.push((format!("{what} `{k}` (= {v}) added"), *line)),
            Some((lv, _)) if lv != v => {
                out.push((format!("{what} `{k}` renumbered {lv} -> {v}"), *line));
            }
            _ => {}
        }
    }
    for (k, (v, _)) in lock {
        if !cur.contains_key(k) {
            out.push((format!("{what} `{k}` (= {v}) removed"), 0));
        }
    }
}

fn diff_sets(
    cur: &BTreeMap<String, (Vec<String>, u32)>,
    lock: &BTreeMap<String, (Vec<String>, u32)>,
    out: &mut Vec<(String, u32)>,
) {
    for (name, (kinds, line)) in cur {
        match lock.get(name) {
            None => out.push((format!("event-kind registry `{name}` added"), *line)),
            Some((locked, _)) => {
                for k in kinds {
                    if !locked.contains(k) {
                        out.push((format!("event kind `{k}` added to `{name}`"), *line));
                    }
                }
                for k in locked {
                    if !kinds.contains(k) {
                        out.push((format!("event kind `{k}` removed from `{name}`"), *line));
                    }
                }
            }
        }
    }
    for name in lock.keys() {
        if !cur.contains_key(name) {
            out.push((format!("event-kind registry `{name}` removed"), 0));
        }
    }
}

/// Loads the configured wire files directly from disk and extracts
/// their facts — used by both the engine (when a file is outside the
/// scan roots) and the `wire-lock` subcommand.
pub fn extract_configured(
    root: &Path,
    cfg: &WireCompatConfig,
) -> Result<Vec<(PathBuf, WireFacts)>, String> {
    let mut out = Vec::new();
    for rel in &cfg.files {
        let text = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read wire file {}: {e}", rel.display()))?;
        let src = SourceFile::parse(rel, &text);
        out.push((rel.clone(), extract(&src)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROTO: &str = "\
pub const PROTOCOL_VERSION: u16 = 1;
pub const WIRE_REVISION: u32 = 2;
impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::EvalOk { .. } => 4,
            Frame::Shutdown => 8,
        }
    }
}
pub const WAL_EVENT_KINDS: &[&str] = &[\"submit\", \"done\", \"gc\"];
";

    fn facts() -> WireFacts {
        extract(&SourceFile::parse(Path::new("p.rs"), PROTO))
    }

    #[test]
    fn extraction_finds_versions_kinds_and_kindsets() {
        let f = facts();
        assert_eq!(f.versions["PROTOCOL_VERSION"].0, "1");
        assert_eq!(f.versions["WIRE_REVISION"].0, "2");
        assert_eq!(f.kinds["Frame::Hello"].0, "1");
        assert_eq!(f.kinds["Frame::EvalOk"].0, "4");
        assert_eq!(f.kinds["Frame::Shutdown"].0, "8");
        assert_eq!(
            f.kindsets["WAL_EVENT_KINDS"].0,
            vec!["done", "gc", "submit"]
        );
    }

    #[test]
    fn lock_round_trips_through_render_and_parse() {
        let files = vec![(PathBuf::from("p.rs"), facts())];
        let text = render_lock(&files);
        let parsed = parse_lock(&text);
        let stripped = |f: &WireFacts| {
            let mut f = f.clone();
            for v in f.versions.values_mut() {
                v.1 = 0;
            }
            for v in f.kinds.values_mut() {
                v.1 = 0;
            }
            for v in f.kindsets.values_mut() {
                v.1 = 0;
            }
            f
        };
        assert_eq!(parsed[Path::new("p.rs")], stripped(&files[0].1));
    }

    fn wire_cfg() -> WireCompatConfig {
        WireCompatConfig {
            files: vec![PathBuf::from("p.rs")],
            lock: PathBuf::from("audit.wire.lock"),
        }
    }

    #[test]
    fn unchanged_surface_matches_its_lock() {
        let files = vec![(PathBuf::from("p.rs"), facts())];
        let lock = render_lock(&files);
        let diags = check_against_lock(&files, Some(&lock), &wire_cfg());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn kind_added_without_revision_bump_is_flagged() {
        let files = vec![(PathBuf::from("p.rs"), facts())];
        let lock = render_lock(&files);
        let modified = PROTO.replace(
            "Frame::Shutdown => 8,",
            "Frame::Shutdown => 8,\n            Frame::NewThing { .. } => 19,",
        );
        let cur = vec![(
            PathBuf::from("p.rs"),
            extract(&SourceFile::parse(Path::new("p.rs"), &modified)),
        )];
        let diags = check_against_lock(&cur, Some(&lock), &wire_cfg());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`Frame::NewThing` (= 19) added"));
        assert!(diags[0].message.contains("revision bump"));
    }

    #[test]
    fn kind_change_with_bump_wants_a_lock_update() {
        let files = vec![(PathBuf::from("p.rs"), facts())];
        let lock = render_lock(&files);
        let modified = PROTO
            .replace("WIRE_REVISION: u32 = 2", "WIRE_REVISION: u32 = 3")
            .replace("Frame::Shutdown => 8,", "Frame::Shutdown => 9,");
        let cur = vec![(
            PathBuf::from("p.rs"),
            extract(&SourceFile::parse(Path::new("p.rs"), &modified)),
        )];
        let diags = check_against_lock(&cur, Some(&lock), &wire_cfg());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("stale"));
    }

    #[test]
    fn missing_lock_is_a_violation() {
        let files = vec![(PathBuf::from("p.rs"), facts())];
        let diags = check_against_lock(&files, None, &wire_cfg());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("missing"));
    }

    #[test]
    fn event_kind_removal_without_bump_is_flagged() {
        let files = vec![(PathBuf::from("p.rs"), facts())];
        let lock = render_lock(&files);
        let modified = PROTO.replace("\"submit\", ", "");
        let cur = vec![(
            PathBuf::from("p.rs"),
            extract(&SourceFile::parse(Path::new("p.rs"), &modified)),
        )];
        let diags = check_against_lock(&cur, Some(&lock), &wire_cfg());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`submit` removed"));
    }
}
