//! Rule `determinism`: no unordered containers, wall clocks, or ambient
//! entropy in code declared deterministic.
//!
//! Datamime's reproducibility contract — bit-identical search outcomes
//! across worker counts and journal replays — holds only if the flagged
//! paths never iterate a `HashMap`/`HashSet` (randomized order feeds the
//! objective), never read `Instant::now`/`SystemTime::now`, and never
//! draw from `thread_rng`/`from_entropy`/`DefaultHasher` (ambient
//! entropy). The rule flags the *use* of these names, not just
//! iteration: a `HashMap` that is only probed is one refactor away from
//! being iterated, and `BTreeMap` costs nothing here.

use crate::config::DeterminismConfig;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Checks one in-scope file.
pub fn check(src: &SourceFile, cfg: &DeterminismConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &src.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || src.is_test_code(i) {
            continue;
        }
        if cfg.deny_idents.contains(&t.text) {
            out.push(Diagnostic::new(
                "determinism",
                &src.rel_path,
                t.line,
                format!(
                    "`{}` in a deterministic path: unordered/entropic state can leak \
                     into results (use BTreeMap/BTreeSet or a seeded RNG)",
                    t.text
                ),
            ));
            continue;
        }
        // `Type::method` call paths, e.g. `Instant::now`.
        for call in &cfg.deny_calls {
            if matches_call_path(toks, i, call) {
                out.push(Diagnostic::new(
                    "determinism",
                    &src.rel_path,
                    t.line,
                    format!(
                        "`{call}` in a deterministic path: wall-clock reads are not \
                         replayable (thread timing budgets through config, not ambient time)"
                    ),
                ));
            }
        }
    }
    out
}

/// Whether the tokens starting at `i` spell `call` (segments separated by
/// `::`), e.g. `Instant :: now` for `"Instant::now"`.
fn matches_call_path(toks: &[crate::lexer::Token], i: usize, call: &str) -> bool {
    let mut j = i;
    for (n, seg) in call.split("::").enumerate() {
        if n > 0 {
            if !(toks.get(j).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':')))
            {
                return false;
            }
            j += 2;
        }
        if !toks.get(j).is_some_and(|t| t.is_ident(seg)) {
            return false;
        }
        j += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn cfg() -> DeterminismConfig {
        DeterminismConfig {
            paths: Vec::new(),
            deny_idents: vec!["HashMap".into(), "thread_rng".into()],
            deny_calls: vec!["Instant::now".into(), "SystemTime::now".into()],
        }
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::parse(Path::new("f.rs"), src), &cfg())
    }

    #[test]
    fn flags_idents_and_call_paths() {
        let diags = run("use std::collections::HashMap;\n\
             fn f() { let t = Instant::now(); let m: HashMap<u8, u8> = HashMap::new(); }\n");
        assert_eq!(diags.len(), 4);
        assert_eq!(diags[0].line, 1);
        assert!(diags[1].message.contains("Instant::now"));
    }

    #[test]
    fn ignores_strings_comments_and_test_code() {
        let diags = run("// HashMap is fine in a comment\n\
             fn f() { let s = \"Instant::now\"; }\n\
             #[cfg(test)]\nmod tests { use std::collections::HashMap; }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn instant_alone_is_not_a_call_match() {
        // `Instant` by itself (e.g. a type in a signature) is fine; only
        // `Instant::now` reads the clock.
        let diags = run("fn f(deadline: Instant) {}\n");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
