//! Rule `panic-safety`: no panicking shortcuts on the supervised
//! evaluation path.
//!
//! The runtime supervisor contains evaluation panics with
//! `catch_unwind` and penalizes them — but containment is the net, not
//! the policy. Code on the evaluation path (`instantiate → profile →
//! error`) must degrade gracefully: a stray `unwrap()` turns a
//! recoverable condition (a cancelled profile, a non-finite sample)
//! into a `FailureKind::Panic` verdict with a misleading payload, burns
//! the retry budget, and — under `FailPolicy::Abort` — kills the whole
//! run. The rule flags `.unwrap()` / `.expect(…)` method calls and
//! unconditionally-panicking macros in the configured paths.

use crate::config::PanicSafetyConfig;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Checks one in-scope file.
pub fn check(src: &SourceFile, cfg: &PanicSafetyConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &src.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || src.is_test_code(i) {
            continue;
        }
        // `.method(` — a call, not a definition or path mention.
        let is_method_call =
            i > 0 && toks[i - 1].is_punct('.') && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if is_method_call && cfg.deny_methods.contains(&t.text) {
            out.push(Diagnostic::new(
                "panic-safety",
                &src.rel_path,
                t.line,
                format!(
                    "`.{}(…)` on the supervised evaluation path: return the error \
                     (or a penalized verdict) instead of panicking into catch_unwind",
                    t.text
                ),
            ));
            continue;
        }
        // `macro!(` / `macro!{` / `macro![`.
        let is_macro = toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.is_punct('(') || n.is_punct('{') || n.is_punct('['));
        if is_macro && cfg.deny_macros.contains(&t.text) {
            out.push(Diagnostic::new(
                "panic-safety",
                &src.rel_path,
                t.line,
                format!(
                    "`{}!` on the supervised evaluation path: panics here masquerade \
                     as evaluation faults and can abort the run under FailPolicy::Abort",
                    t.text
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn cfg() -> PanicSafetyConfig {
        PanicSafetyConfig {
            paths: Vec::new(),
            deny_methods: vec!["unwrap".into(), "expect".into()],
            deny_macros: vec!["panic".into(), "todo".into()],
        }
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::parse(Path::new("f.rs"), src), &cfg())
    }

    #[test]
    fn flags_unwrap_expect_and_panic_macros() {
        let diags = run("fn f() {\n\
               let a = x.unwrap();\n\
               let b = y.expect(\"msg\");\n\
               panic!(\"boom\");\n\
               todo!();\n\
             }\n");
        assert_eq!(diags.len(), 4);
        assert_eq!(diags[1].line, 3);
    }

    #[test]
    fn definitions_mentions_and_cousins_are_not_calls() {
        let diags = run("fn unwrap() {}\n\
             fn g() { let a = x.unwrap_or_else(|| 3); let p = Self::unwrap; }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn test_code_may_panic() {
        let diags = run("#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); panic!(); }\n}\n");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
