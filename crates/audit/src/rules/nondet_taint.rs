//! Rule `nondet-taint`: nondeterminism must not *flow* into journaled,
//! objective, or wire surfaces.
//!
//! The predecessor rule (`determinism`, PR 3) denied whole identifiers
//! per file: any `Instant::now` in a listed path was a violation, which
//! kept the listed paths small and sprouted `audit:allow` comments on
//! every telemetry timestamp. This rule replaces it with flow-sensitive
//! taint tracking, which changes the question from "does this file
//! mention a clock?" to "does a clock value *reach* a replayed
//! surface?" — the actual invariant. That precision is what lets the
//! covered paths widen from a hand-picked file list to entire crates.
//!
//! Mechanics, per function (intra-procedural, statement-ordered):
//!
//! - **Sources** (configured): `Instant::now()`, `SystemTime::now()`,
//!   `thread_rng()`, `from_entropy()`, hasher constructions. A call
//!   expression containing a source is tainted.
//! - **Propagation**: `let x = <tainted>` taints `x`; `x = <tainted>`
//!   re-taints; any expression mentioning a tainted name is tainted.
//! - **Sinks** (configured): journal record constructors/appenders,
//!   frame writes, objective observations. A sink call with a tainted
//!   argument — or a source called directly in its arguments — is a
//!   violation.
//!
//! Two honest limits, by design: flows through `self` fields and across
//! function boundaries are not tracked (the journal/wire layer's own
//! narrow APIs keep those paths short), and *control*-flow taint (a
//! branch on a clock deciding *whether* to journal) is out of scope —
//! timing-dependent control flow is sanctioned policy for quotas and
//! watchdogs.
//!
//! On the configured `strict-paths` (the original deterministic core:
//! sim kernels, stats, the search loop) the old ident denylist still
//! applies to *unordered containers* — `HashMap` iteration order is a
//! type-level hazard no flow analysis can see past.

use crate::config::NondetTaintConfig;
use crate::diagnostics::Diagnostic;
use crate::lexer::{TokKind, Token};
use crate::parser::{self};
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Checks one file. `strict` additionally applies the container ident
/// denylist (the file is under `strict-paths`).
pub fn check(src: &SourceFile, cfg: &NondetTaintConfig, strict: bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if strict {
        deny_idents(src, cfg, &mut out);
    }
    let toks = &src.tokens;
    for f in parser::functions(src) {
        if src.is_test_code(f.body.0) {
            continue;
        }
        let body = (f.body.0 + 1, f.body.1.saturating_sub(1));
        if body.0 > body.1 {
            continue;
        }
        let calls = parser::calls_in(toks, body);
        let lets = parser::let_bindings(toks, f.body);

        // Ordered worklist of (token position, action).
        enum Action<'a> {
            Bind(&'a parser::LetBinding),
            Assign { lhs: String, rhs: (usize, usize) },
            Sink(&'a parser::Call),
        }
        let mut actions: Vec<(usize, Action)> = Vec::new();
        for b in &lets {
            actions.push((b.stmt_end, Action::Bind(b)));
        }
        for (pos, lhs, rhs) in assignments(toks, body, &lets) {
            actions.push((pos, Action::Assign { lhs, rhs }));
        }
        for c in &calls {
            if !c.is_macro && cfg.sinks.iter().any(|s| s == &c.name) {
                actions.push((c.name_idx, Action::Sink(c)));
            }
        }
        actions.sort_by_key(|(pos, _)| *pos);

        // Tainted name -> originating source description.
        let mut tainted: BTreeMap<String, String> = BTreeMap::new();
        for (_, action) in actions {
            match action {
                Action::Bind(b) => {
                    if let Some(origin) = range_taint(toks, b.init, cfg, &tainted) {
                        for n in &b.names {
                            tainted.insert(n.clone(), origin.clone());
                        }
                    }
                }
                Action::Assign { lhs, rhs } => {
                    if let Some(origin) = range_taint(toks, rhs, cfg, &tainted) {
                        tainted.insert(lhs, origin);
                    }
                }
                Action::Sink(c) => {
                    if src.is_test_code(c.name_idx) {
                        continue;
                    }
                    let arg_range = (c.args.0 + 1, c.args.1.saturating_sub(1));
                    if let Some(origin) = range_taint(toks, arg_range, cfg, &tainted) {
                        out.push(Diagnostic::new(
                            "nondet-taint",
                            &src.rel_path,
                            c.line,
                            format!(
                                "nondeterministic value (from `{origin}`) flows into \
                                 `{}` in `{}`: journaled/wire surfaces must be \
                                 replayable — derive this argument from config, \
                                 seeds, or recorded state instead",
                                c.name, f.name
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// If the token range is tainted, the human-readable origin: a source
/// called inside the range, or the source behind a mentioned tainted
/// name.
fn range_taint(
    toks: &[Token],
    range: (usize, usize),
    cfg: &NondetTaintConfig,
    tainted: &BTreeMap<String, String>,
) -> Option<String> {
    if range.0 > range.1 {
        return None;
    }
    for i in range.0..=range.1.min(toks.len() - 1) {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        for s in &cfg.sources {
            if s.split("::").next() == Some(toks[i].text.as_str())
                && parser::matches_call_path(toks, i, s)
            {
                // Require it to actually be a call: the path is followed
                // by `(` (possibly after `::<…>`).
                let end = i + 3 * (s.matches("::").count());
                if toks.get(end + 1).is_some_and(|t| t.is_punct('(')) {
                    return Some(s.clone());
                }
            }
        }
        if let Some(origin) = tainted.get(&toks[i].text) {
            // A field access `x.y` only taints via its root `x`; any
            // mention of a tainted root counts.
            return Some(origin.clone());
        }
    }
    None
}

/// Top-level re-assignments `x = expr;` (or `x.field = expr;`, which
/// taints the root `x`) in the body, excluding the `=` of `let`
/// statements. Returns (position, lhs root name, rhs token range).
fn assignments(
    toks: &[Token],
    body: (usize, usize),
    lets: &[parser::LetBinding],
) -> Vec<(usize, String, (usize, usize))> {
    let mut out = Vec::new();
    for i in body.0..=body.1 {
        if !parser::is_assign_eq(toks, i) {
            continue;
        }
        // Skip `=` that belongs to a let (pattern or init — struct
        // literal field inits inside a let are covered by the binding).
        if lets.iter().any(|b| i >= b.let_idx && i < b.stmt_end) {
            continue;
        }
        // lhs: walk back over an ident/dot path; root is the first ident.
        let mut j = i;
        let mut root = None;
        while j >= 1 {
            let t = &toks[j - 1];
            if t.kind == TokKind::Ident {
                root = Some(t.text.clone());
                if j >= 2 && toks[j - 2].is_punct('.') {
                    j -= 2;
                    continue;
                }
            }
            break;
        }
        let Some(root) = root else { continue };
        // rhs: to the `;` at depth 0.
        let (mut paren, mut bracket, mut brace) = (0i32, 0i32, 0i32);
        let mut k = i + 1;
        let mut end = None;
        while k <= body.1 {
            let t = &toks[k];
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket -= 1;
            } else if t.is_punct('{') {
                brace += 1;
            } else if t.is_punct('}') {
                brace -= 1;
            } else if paren == 0 && bracket == 0 && brace == 0 && t.is_punct(';') {
                end = Some(k - 1);
                break;
            }
            if paren < 0 || bracket < 0 || brace < 0 {
                break;
            }
            k += 1;
        }
        if let Some(end) = end {
            out.push((i, root, (i + 1, end)));
        }
    }
    out
}

/// The strict-path container denylist (`HashMap`, `HashSet`, hasher
/// types): unordered iteration is a hazard wherever the type appears.
fn deny_idents(src: &SourceFile, cfg: &NondetTaintConfig, out: &mut Vec<Diagnostic>) {
    for (i, t) in src.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || src.is_test_code(i) {
            continue;
        }
        if cfg.deny_idents.contains(&t.text) {
            out.push(Diagnostic::new(
                "nondet-taint",
                &src.rel_path,
                t.line,
                format!(
                    "`{}` in a strict deterministic path: unordered/entropic \
                     state can leak into results (use BTreeMap/BTreeSet or a \
                     seeded RNG)",
                    t.text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn cfg() -> NondetTaintConfig {
        NondetTaintConfig {
            paths: Vec::new(),
            strict_paths: Vec::new(),
            deny_idents: vec!["HashMap".into(), "HashSet".into()],
            sources: vec![
                "Instant::now".into(),
                "SystemTime::now".into(),
                "thread_rng".into(),
            ],
            sinks: vec!["eval".into(), "write_frame".into(), "observe".into()],
        }
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::parse(Path::new("f.rs"), src), &cfg(), false)
    }

    #[test]
    fn direct_flow_from_clock_to_sink_is_flagged() {
        let diags = run("fn f(j: &mut Journal) {\n\
               let started = Instant::now();\n\
               let elapsed = started.elapsed().as_micros();\n\
               j.eval(elapsed);\n\
             }\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("Instant::now"));
        assert!(diags[0].message.contains("`eval`"));
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn source_called_directly_in_sink_args_is_flagged() {
        let diags = run("fn f(c: &mut Conn) { c.write_frame(stamp(SystemTime::now())); }\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn clock_that_never_reaches_a_sink_is_clean() {
        let diags = run("fn f(j: &mut Journal, t: &Telemetry) {\n\
               let started = Instant::now();\n\
               t.record(started.elapsed());\n\
               j.eval(seeded_value);\n\
             }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn reassignment_propagates_taint() {
        let diags = run("fn f(j: &mut Journal) {\n\
               let mut stamp = 0u64;\n\
               stamp = clock_us(Instant::now());\n\
               j.eval(stamp);\n\
             }\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn strict_paths_still_deny_unordered_containers() {
        let diags = check(
            &SourceFile::parse(
                Path::new("f.rs"),
                "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = make(); }\n",
            ),
            &cfg(),
            true,
        );
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags[0].message.contains("strict deterministic path"));
    }

    #[test]
    fn wide_paths_do_not_deny_mere_mentions() {
        // The whole point of the taint rewrite: a clock used for
        // telemetry in a widened path is not a violation.
        let diags = run("fn f(t: &Telemetry) { let s = Instant::now(); t.record(s.elapsed()); }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
