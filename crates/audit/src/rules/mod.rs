//! The audit rules.
//!
//! Each rule consumes lexed [`SourceFile`](crate::source::SourceFile)s
//! or parsed manifests and emits [`Diagnostic`](crate::diagnostics::Diagnostic)s;
//! the engine in [`crate::run_check`] owns scoping (which files a rule
//! sees) and the `audit:allow` suppression pass.

pub mod determinism;
pub mod layering;
pub mod lock_order;
pub mod panic_safety;
pub mod unsafe_forbidden;

/// Every rule identifier an `audit:allow(...)` comment may name.
pub const RULES: [&str; 5] = [
    "determinism",
    "panic-safety",
    "lock-order",
    "layering",
    "unsafe-forbidden",
];
