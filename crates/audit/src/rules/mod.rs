//! The audit rules.
//!
//! Each rule consumes lexed [`SourceFile`](crate::source::SourceFile)s
//! (most now via the structural [`parser`](crate::parser)) or parsed
//! manifests and emits [`Diagnostic`](crate::diagnostics::Diagnostic)s;
//! the engine in [`crate::run_check`] owns scoping (which files a rule
//! sees), parallelism, caching, and the `audit:allow` suppression pass.

pub mod blocking_in_lock;
pub mod durability;
pub mod layering;
pub mod lock_order;
pub mod nondet_taint;
pub mod panic_safety;
pub mod swallowed_result;
pub mod unsafe_forbidden;
pub mod wire_compat;

/// Every rule identifier an `audit:allow(...)` comment may name.
/// (`nondet-taint` superseded PR 3's `determinism`; the flow-aware
/// families landed with the audit-v2 engine.)
pub const RULES: [&str; 9] = [
    "nondet-taint",
    "panic-safety",
    "lock-order",
    "layering",
    "unsafe-forbidden",
    "durability-protocol",
    "swallowed-result",
    "blocking-in-lock",
    "wire-compat",
];

/// Looks up the `'static` rule name for a string (used when
/// deserializing cached diagnostics).
pub fn rule_name(name: &str) -> Option<&'static str> {
    RULES.iter().find(|r| **r == name).copied()
}
