//! Rule `swallowed-result`: durability and IPC errors must not be
//! silently discarded.
//!
//! A dropped `Result` from `sync_all`, `rename`, or a frame send is how
//! a "crash-safe" system quietly stops being one: the operation failed,
//! nothing was logged, and replay diverges later with no breadcrumb.
//! This rule flags three discard shapes applied to calls into the
//! *configured* API list (only those — `let _ = join_handle` idioms on
//! unrelated calls stay legal):
//!
//! - `let _ = file.sync_all();` — bound to the wildcard pattern;
//! - `file.sync_all().ok();` — `.ok()` immediately chained onto the
//!   call, discarding the error branch;
//! - `file.sync_all();` — the call in statement position with its
//!   `Result` unread (no `?`, no binding, no match).
//!
//! Sites that are *intentionally* best-effort (cleanup on shutdown
//! paths, second-chance repair where the first error is already being
//!  reported) carry `// audit:allow(swallowed-result): reason` — the
//! reason is the point: it forces the "why is dropping this error
//! correct?" argument into the source.

use crate::config::SwallowedResultConfig;
use crate::diagnostics::Diagnostic;
use crate::parser::{self, Call};
use crate::source::SourceFile;

/// Checks one in-scope file.
pub fn check(src: &SourceFile, cfg: &SwallowedResultConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &src.tokens;
    for f in parser::functions(src) {
        if src.is_test_code(f.body.0) {
            continue;
        }
        let body = (f.body.0 + 1, f.body.1.saturating_sub(1));
        if body.0 > body.1 {
            continue;
        }
        let calls = parser::calls_in(toks, body);
        // `let _ = …` bindings whose initializer calls a configured API.
        for b in parser::let_bindings(toks, f.body) {
            if !b.is_wildcard {
                continue;
            }
            for c in &calls {
                if c.name_idx >= b.init.0
                    && c.name_idx <= b.init.1
                    && is_api(c, cfg)
                    && !src.is_test_code(c.name_idx)
                {
                    out.push(diag(src, c, "discarded with `let _ =`"));
                }
            }
        }
        for c in &calls {
            if !is_api(c, cfg) || src.is_test_code(c.name_idx) {
                continue;
            }
            let after = c.args.1 + 1;
            // `call(…).ok()` — chained discard.
            if toks.get(after).is_some_and(|t| t.is_punct('.'))
                && toks.get(after + 1).is_some_and(|t| t.is_ident("ok"))
                && toks.get(after + 2).is_some_and(|t| t.is_punct('('))
                && toks.get(after + 3).is_some_and(|t| t.is_punct(')'))
            {
                out.push(diag(src, c, "discarded with `.ok()`"));
                continue;
            }
            // `call(…);` in statement position — unread Result.
            let stmt_start = c.start > 0
                && (toks[c.start - 1].is_punct(';')
                    || toks[c.start - 1].is_punct('{')
                    || toks[c.start - 1].is_punct('}'));
            if stmt_start && toks.get(after).is_some_and(|t| t.is_punct(';')) {
                out.push(diag(src, c, "called as a statement with its Result unread"));
            }
        }
    }
    out
}

fn is_api(c: &Call, cfg: &SwallowedResultConfig) -> bool {
    !c.is_macro && cfg.apis.iter().any(|a| a == &c.name)
}

fn diag(src: &SourceFile, c: &Call, how: &str) -> Diagnostic {
    Diagnostic::new(
        "swallowed-result",
        &src.rel_path,
        c.line,
        format!(
            "`{}` is a durability/IPC call and its Result is {how}: handle the \
             error (log, mark failed, or propagate) or annotate why dropping it \
             is safe with audit:allow(swallowed-result)",
            c.name
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn cfg() -> SwallowedResultConfig {
        SwallowedResultConfig {
            paths: Vec::new(),
            apis: vec![
                "sync_all".into(),
                "rename".into(),
                "write_frame".into(),
                "set_read_timeout".into(),
            ],
        }
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::parse(Path::new("f.rs"), src), &cfg())
    }

    #[test]
    fn all_three_discard_shapes_are_flagged() {
        let diags = run("fn f() {\n\
               let _ = file.sync_all();\n\
               std::fs::rename(a, b).ok();\n\
               conn.write_frame(&frame);\n\
             }\n");
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags[0].message.contains("let _ ="));
        assert!(diags[1].message.contains(".ok()"));
        assert!(diags[2].message.contains("unread"));
    }

    #[test]
    fn handled_results_are_clean() {
        let diags = run("fn f() -> io::Result<()> {\n\
               file.sync_all()?;\n\
               if let Err(e) = std::fs::rename(a, b) { log(e); }\n\
               let n = stream.set_read_timeout(Some(t));\n\
               n.map_err(drop)?;\n\
               match conn.write_frame(&frame) { Ok(()) => {}, Err(e) => fail(e) }\n\
               Ok(())\n\
             }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unconfigured_calls_may_be_discarded() {
        let diags = run("fn f() { let _ = handle.join(); tx.send(1).ok(); }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let diags = run("#[cfg(test)]\nmod t { fn f() { let _ = file.sync_all(); } }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
