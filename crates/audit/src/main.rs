//! The `datamime-audit` command-line interface.
//!
//! ```text
//! cargo run -p datamime-audit -- check [--root DIR] [--config FILE]
//!                                      [--format human|json] [--quiet]
//! cargo run -p datamime-audit -- rules
//! ```
//!
//! Exit codes: `0` — clean; `1` — violations found; `2` — usage,
//! configuration, or scan error. Without `--root`/`--config`, the
//! workspace root is located by walking up from the current directory to
//! the nearest `audit.toml`.

#![forbid(unsafe_code)]

use datamime_audit::config::AuditConfig;
use datamime_audit::{diagnostics, run_check};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
datamime-audit: static-analysis gates for the Datamime workspace

USAGE:
    datamime-audit check [--root DIR] [--config FILE] [--format human|json] [--quiet]
    datamime-audit rules

OPTIONS:
    --root DIR       Workspace root (default: nearest ancestor with audit.toml)
    --config FILE    Configuration file (default: <root>/audit.toml)
    --format KIND    Output format: human (default) or json
    --quiet          Suppress the summary line on success
";

enum Format {
    Human,
    Json,
}

struct Options {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    format: Format,
    quiet: bool,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    match command.as_str() {
        "rules" => {
            for rule in datamime_audit::rules::RULES {
                println!("{rule}");
            }
            ExitCode::SUCCESS
        }
        "check" => match parse_options(args) {
            Ok(opts) => check(&opts),
            Err(msg) => {
                eprintln!("datamime-audit: {msg}");
                eprint!("{USAGE}");
                ExitCode::from(2)
            }
        },
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("datamime-audit: unknown command `{other}`");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn parse_options(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        config: None,
        format: Format::Human,
        quiet: false,
    };
    while let Some(arg) = args.next() {
        // Accept both `--flag value` and `--flag=value`.
        let (flag, mut inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg, None),
        };
        let takes_value = matches!(flag.as_str(), "--root" | "--config" | "--format");
        let value = if takes_value {
            match inline.take() {
                Some(v) => v,
                None => args
                    .next()
                    .ok_or_else(|| format!("`{flag}` needs a value"))?,
            }
        } else {
            String::new()
        };
        match flag.as_str() {
            "--root" => opts.root = Some(PathBuf::from(value)),
            "--config" => opts.config = Some(PathBuf::from(value)),
            "--format" => {
                opts.format = match value.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--quiet" | "-q" => opts.quiet = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn check(opts: &Options) -> ExitCode {
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => match find_root() {
            Some(r) => r,
            None => {
                eprintln!(
                    "datamime-audit: no audit.toml found here or in any parent \
                     directory (pass --root or --config)"
                );
                return ExitCode::from(2);
            }
        },
    };
    let config_path = opts
        .config
        .clone()
        .unwrap_or_else(|| root.join("audit.toml"));
    let cfg = match AuditConfig::load(&config_path) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("datamime-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match run_check(&root, &cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("datamime-audit: {e}");
            return ExitCode::from(2);
        }
    };
    match opts.format {
        Format::Json => print!("{}", diagnostics::to_json(&report.diagnostics)),
        Format::Human => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            if !report.clean() {
                eprintln!(
                    "datamime-audit: {} violation(s) across {} file(s) in {} crate(s)",
                    report.diagnostics.len(),
                    report.files_scanned,
                    report.crates_scanned
                );
            } else if !opts.quiet {
                eprintln!(
                    "datamime-audit: clean ({} files, {} crates)",
                    report.files_scanned, report.crates_scanned
                );
            }
        }
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walks up from the current directory to the nearest `audit.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("audit.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
