//! The `datamime-audit` command-line interface.
//!
//! ```text
//! cargo run -p datamime-audit -- check [--root DIR] [--config FILE]
//!                                      [--format human|json|sarif]
//!                                      [--no-cache] [--quiet]
//! cargo run -p datamime-audit -- wire-lock [--update] [--force]
//!                                          [--root DIR] [--config FILE]
//! cargo run -p datamime-audit -- rules
//! ```
//!
//! Exit codes: `0` — clean; `1` — violations found (or a stale
//! wire-lock); `2` — usage, configuration, or scan error. Without
//! `--root`/`--config`, the workspace root is located by walking up
//! from the current directory to the nearest `audit.toml`.
//!
//! `check` keeps a per-file facts cache under `<root>/target/audit-cache`
//! (disable with `--no-cache`); the summary line reports hit counts and
//! wall time so CI logs show whether the cache is doing its job.

#![forbid(unsafe_code)]

use datamime_audit::config::AuditConfig;
use datamime_audit::rules::wire_compat;
use datamime_audit::{diagnostics, run_check_with, sarif, CheckOptions};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
datamime-audit: static-analysis gates for the Datamime workspace

USAGE:
    datamime-audit check [--root DIR] [--config FILE] [--format human|json|sarif]
                         [--no-cache] [--quiet]
    datamime-audit wire-lock [--update] [--force] [--root DIR] [--config FILE]
    datamime-audit rules

OPTIONS:
    --root DIR       Workspace root (default: nearest ancestor with audit.toml)
    --config FILE    Configuration file (default: <root>/audit.toml)
    --format KIND    Output format: human (default), json, or sarif
    --no-cache       Skip the per-file facts cache under target/audit-cache
    --quiet          Suppress the summary line on success
    --update         (wire-lock) Rewrite the lockfile from current sources
    --force          (wire-lock) Re-baseline even when kinds changed without
                     a revision bump (normally refused)
";

enum Format {
    Human,
    Json,
    Sarif,
}

struct Options {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    format: Format,
    quiet: bool,
    no_cache: bool,
    update: bool,
    force: bool,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    match command.as_str() {
        "rules" => {
            for rule in datamime_audit::rules::RULES {
                println!("{rule}");
            }
            ExitCode::SUCCESS
        }
        "check" => match parse_options(args) {
            Ok(opts) => check(&opts),
            Err(msg) => {
                eprintln!("datamime-audit: {msg}");
                eprint!("{USAGE}");
                ExitCode::from(2)
            }
        },
        "wire-lock" => match parse_options(args) {
            Ok(opts) => wire_lock(&opts),
            Err(msg) => {
                eprintln!("datamime-audit: {msg}");
                eprint!("{USAGE}");
                ExitCode::from(2)
            }
        },
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("datamime-audit: unknown command `{other}`");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn parse_options(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        config: None,
        format: Format::Human,
        quiet: false,
        no_cache: false,
        update: false,
        force: false,
    };
    while let Some(arg) = args.next() {
        // Accept both `--flag value` and `--flag=value`.
        let (flag, mut inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg, None),
        };
        let takes_value = matches!(flag.as_str(), "--root" | "--config" | "--format");
        let value = if takes_value {
            match inline.take() {
                Some(v) => v,
                None => args
                    .next()
                    .ok_or_else(|| format!("`{flag}` needs a value"))?,
            }
        } else {
            String::new()
        };
        match flag.as_str() {
            "--root" => opts.root = Some(PathBuf::from(value)),
            "--config" => opts.config = Some(PathBuf::from(value)),
            "--format" => {
                opts.format = match value.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--quiet" | "-q" => opts.quiet = true,
            "--no-cache" => opts.no_cache = true,
            "--update" => opts.update = true,
            "--force" => opts.force = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// Resolves the workspace root and loads the config, or prints the
/// error and returns the exit code.
fn load(opts: &Options) -> Result<(PathBuf, AuditConfig), ExitCode> {
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => match find_root() {
            Some(r) => r,
            None => {
                eprintln!(
                    "datamime-audit: no audit.toml found here or in any parent \
                     directory (pass --root or --config)"
                );
                return Err(ExitCode::from(2));
            }
        },
    };
    let config_path = opts
        .config
        .clone()
        .unwrap_or_else(|| root.join("audit.toml"));
    match AuditConfig::load(&config_path) {
        Ok(cfg) => Ok((root, cfg)),
        Err(e) => {
            eprintln!("datamime-audit: {e}");
            Err(ExitCode::from(2))
        }
    }
}

fn check(opts: &Options) -> ExitCode {
    let (root, cfg) = match load(opts) {
        Ok(rc) => rc,
        Err(code) => return code,
    };
    let check_opts = CheckOptions {
        cache_dir: (!opts.no_cache).then(|| root.join("target").join("audit-cache")),
        jobs: None,
    };
    let started = Instant::now();
    let report = match run_check_with(&root, &cfg, &check_opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("datamime-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed_ms = started.elapsed().as_millis();
    match opts.format {
        Format::Json => print!("{}", diagnostics::to_json(&report.diagnostics)),
        Format::Sarif => print!("{}", sarif::to_sarif(&report.diagnostics)),
        Format::Human => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            if !report.clean() {
                eprintln!(
                    "datamime-audit: {} violation(s) across {} file(s) in {} crate(s) \
                     ({}/{} cached, {elapsed_ms} ms)",
                    report.diagnostics.len(),
                    report.files_scanned,
                    report.crates_scanned,
                    report.cache_hits,
                    report.files_scanned,
                );
            } else if !opts.quiet {
                eprintln!(
                    "datamime-audit: clean ({} files, {} crates, {}/{} cached, \
                     {elapsed_ms} ms)",
                    report.files_scanned,
                    report.crates_scanned,
                    report.cache_hits,
                    report.files_scanned,
                );
            }
        }
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `wire-lock`: show or refresh the committed wire-compat baseline.
///
/// Without `--update`, reports whether the lockfile matches current
/// sources (exit 1 when it does not). With `--update`, rewrites it —
/// unless kinds changed while every version constant stayed put, which
/// is exactly the regression the rule exists to catch; that re-baseline
/// is refused without `--force`.
fn wire_lock(opts: &Options) -> ExitCode {
    let (root, cfg) = match load(opts) {
        Ok(rc) => rc,
        Err(code) => return code,
    };
    if cfg.wire_compat.files.is_empty() {
        eprintln!("datamime-audit: no [wire-compat] files configured in audit.toml");
        return ExitCode::from(2);
    }
    let current = match wire_compat::extract_configured(&root, &cfg.wire_compat) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("datamime-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let lock_path = root.join(&cfg.wire_compat.lock);
    let existing = std::fs::read_to_string(&lock_path).ok();
    let diags = wire_compat::check_against_lock(&current, existing.as_deref(), &cfg.wire_compat);

    if !opts.update {
        if diags.is_empty() {
            if !opts.quiet {
                eprintln!(
                    "datamime-audit: {} is up to date ({} wire file(s))",
                    cfg.wire_compat.lock.display(),
                    current.len()
                );
            }
            return ExitCode::SUCCESS;
        }
        for d in &diags {
            println!("{d}");
        }
        eprintln!(
            "datamime-audit: {} is out of date (run `wire-lock --update`)",
            cfg.wire_compat.lock.display()
        );
        return ExitCode::FAILURE;
    }

    let unbumped: Vec<_> = diags
        .iter()
        .filter(|d| d.message.contains("without a revision bump"))
        .collect();
    if !unbumped.is_empty() && !opts.force {
        for d in &unbumped {
            println!("{d}");
        }
        eprintln!(
            "datamime-audit: refusing to re-baseline: wire kinds changed but no \
             revision constant moved — bump the revision (or pass --force if the \
             old numbering truly never shipped)"
        );
        return ExitCode::FAILURE;
    }
    let rendered = wire_compat::render_lock(&current);
    if let Err(e) = std::fs::write(&lock_path, &rendered) {
        eprintln!(
            "datamime-audit: cannot write {}: {e}",
            cfg.wire_compat.lock.display()
        );
        return ExitCode::from(2);
    }
    if !opts.quiet {
        eprintln!(
            "datamime-audit: wrote {} ({} wire file(s))",
            cfg.wire_compat.lock.display(),
            current.len()
        );
    }
    ExitCode::SUCCESS
}

/// Walks up from the current directory to the nearest `audit.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("audit.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
