//! Content-hash incremental cache for per-file analysis.
//!
//! Lexing + parsing + rule evaluation dominates audit wall time, and on
//! a typical edit almost every file is byte-identical to the previous
//! run. The cache stores each file's [`FileFacts`] —
//! raw diagnostics, lock acquisitions, allows, wire facts — keyed by a
//! 64-bit FNV-1a hash of everything the analysis depends on: the file
//! bytes, its workspace-relative path, whether it is a crate root, the
//! full `audit.toml` text, and the engine version. Any of those
//! changing misses cleanly; nothing else can change the analysis of a
//! single file (cross-file rules — lock-order graphs, layering,
//! wire-lock comparison, allow bookkeeping — run after the per-file
//! phase every time, on the cached facts).
//!
//! Entries are one-file-per-source under `target/audit-cache/`, written
//! via temp-file + rename so a crashed run never leaves a torn entry.
//! (No fsync: this is a *cache* — losing it costs a re-analysis, not
//! correctness.) The format is a versioned line protocol with
//! tab-escaping; any parse hiccup is treated as a miss.

use crate::diagnostics::Diagnostic;
use crate::rules::lock_order::{Acquisition, FnLocks};
use crate::rules::wire_compat::WireFacts;
use crate::source::{Allow, BadAllow};
use crate::FileFacts;
use std::path::{Path, PathBuf};

/// Bumped whenever rule logic changes in a way that invalidates cached
/// per-file results.
pub const ENGINE_VERSION: &str = "audit-v2";

/// 64-bit FNV-1a.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cache key for one file's analysis.
pub fn file_key(cfg_text: &str, rel_path: &Path, is_root: bool, content: &str) -> u64 {
    let mut buf = Vec::new();
    for part in [
        ENGINE_VERSION,
        cfg_text,
        &rel_path.display().to_string(),
        if is_root { "root" } else { "leaf" },
        content,
    ] {
        buf.extend_from_slice(part.as_bytes());
        buf.push(0);
    }
    fnv64(&buf)
}

/// The entry file for a source path (keyed by path only; the full key
/// is embedded in the entry and checked on load).
fn entry_path(dir: &Path, rel_path: &Path) -> PathBuf {
    dir.join(format!(
        "{:016x}.facts",
        fnv64(rel_path.display().to_string().as_bytes())
    ))
}

/// Attempts to load cached facts; `None` on miss, key mismatch, or any
/// decode problem.
pub fn load(dir: &Path, rel_path: &Path, key: u64) -> Option<FileFacts> {
    let text = std::fs::read_to_string(entry_path(dir, rel_path)).ok()?;
    decode(&text, key, rel_path)
}

/// Stores facts; failures are silent (a cache that cannot be written is
/// just a cache that misses).
pub fn store(dir: &Path, rel_path: &Path, key: u64, facts: &FileFacts) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let final_path = entry_path(dir, rel_path);
    let tmp = final_path.with_extension(format!("tmp{}", std::process::id()));
    if std::fs::write(&tmp, encode(key, facts)).is_ok() {
        // A failed publish just means a re-analysis next run.
        let _ = std::fs::rename(&tmp, &final_path);
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => out.push(other),
            None => break,
        }
    }
    out
}

fn encode(key: u64, facts: &FileFacts) -> String {
    let mut out = format!("audit-cache {key:016x}\n");
    for d in &facts.diags {
        out.push_str(&format!("D\t{}\t{}\t{}\n", d.rule, d.line, esc(&d.message)));
    }
    for a in &facts.allows {
        out.push_str(&format!(
            "A\t{}\t{}\t{}\n",
            esc(&a.rule),
            a.line,
            esc(&a.reason)
        ));
    }
    for b in &facts.bad_allows {
        out.push_str(&format!("B\t{}\t{}\n", b.line, esc(&b.problem)));
    }
    for f in &facts.lock_fns {
        out.push_str(&format!("F\t{}\n", esc(&f.function)));
        for a in &f.acquisitions {
            out.push_str(&format!("Q\t{}\t{}\n", esc(&a.lock), a.line));
        }
    }
    if let Some(w) = &facts.wire {
        out.push_str("W!\n");
        for (name, (value, line)) in &w.versions {
            out.push_str(&format!("WV\t{}\t{}\t{}\n", esc(name), esc(value), line));
        }
        for (variant, (num, line)) in &w.kinds {
            out.push_str(&format!("WK\t{}\t{}\t{}\n", esc(variant), esc(num), line));
        }
        for (name, (kinds, line)) in &w.kindsets {
            out.push_str(&format!(
                "WS\t{}\t{}\t{}\n",
                esc(name),
                line,
                kinds.iter().map(|k| esc(k)).collect::<Vec<_>>().join(",")
            ));
        }
    }
    out
}

fn decode(text: &str, want_key: u64, rel_path: &Path) -> Option<FileFacts> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let key_hex = header.strip_prefix("audit-cache ")?;
    if u64::from_str_radix(key_hex, 16).ok()? != want_key {
        return None;
    }
    let mut facts = FileFacts {
        rel_path: rel_path.to_path_buf(),
        diags: Vec::new(),
        lock_fns: Vec::new(),
        allows: Vec::new(),
        bad_allows: Vec::new(),
        wire: None,
    };
    for line in lines {
        let mut parts = line.split('\t');
        match parts.next()? {
            "D" => {
                let rule = crate::rules::rule_name(parts.next()?)?;
                let line_no: u32 = parts.next()?.parse().ok()?;
                let message = unesc(parts.next()?);
                facts
                    .diags
                    .push(Diagnostic::new(rule, rel_path, line_no, message));
            }
            "A" => {
                let rule = unesc(parts.next()?);
                let line_no: u32 = parts.next()?.parse().ok()?;
                let reason = unesc(parts.next()?);
                facts.allows.push(Allow {
                    rule,
                    reason,
                    line: line_no,
                });
            }
            "B" => {
                let line_no: u32 = parts.next()?.parse().ok()?;
                let problem = unesc(parts.next()?);
                facts.bad_allows.push(BadAllow {
                    problem,
                    line: line_no,
                });
            }
            "F" => {
                facts.lock_fns.push(FnLocks {
                    function: unesc(parts.next()?),
                    file: rel_path.to_path_buf(),
                    acquisitions: Vec::new(),
                });
            }
            "Q" => {
                let lock = unesc(parts.next()?);
                let line_no: u32 = parts.next()?.parse().ok()?;
                facts.lock_fns.last_mut()?.acquisitions.push(Acquisition {
                    lock,
                    line: line_no,
                });
            }
            "W!" => {
                facts.wire = Some(WireFacts::default());
            }
            "WV" => {
                let name = unesc(parts.next()?);
                let value = unesc(parts.next()?);
                let line_no: u32 = parts.next()?.parse().ok()?;
                facts.wire.as_mut()?.versions.insert(name, (value, line_no));
            }
            "WK" => {
                let variant = unesc(parts.next()?);
                let num = unesc(parts.next()?);
                let line_no: u32 = parts.next()?.parse().ok()?;
                facts.wire.as_mut()?.kinds.insert(variant, (num, line_no));
            }
            "WS" => {
                let name = unesc(parts.next()?);
                let line_no: u32 = parts.next()?.parse().ok()?;
                let kinds: Vec<String> = parts
                    .next()?
                    .split(',')
                    .filter(|k| !k.is_empty())
                    .map(unesc)
                    .collect();
                facts.wire.as_mut()?.kindsets.insert(name, (kinds, line_no));
            }
            _ => return None,
        }
    }
    Some(facts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_facts() -> FileFacts {
        let rel = PathBuf::from("crates/x/src/lib.rs");
        let mut wire = WireFacts::default();
        wire.versions
            .insert("WIRE_REVISION".into(), ("2".into(), 4));
        wire.kinds.insert("Frame::Hello".into(), ("1".into(), 10));
        wire.kindsets.insert(
            "WAL_EVENT_KINDS".into(),
            (vec!["done".into(), "gc".into()], 20),
        );
        FileFacts {
            rel_path: rel.clone(),
            diags: vec![Diagnostic::new(
                "panic-safety",
                &rel,
                7,
                "line with\ttab and\nnewline",
            )],
            lock_fns: vec![FnLocks {
                function: "f".into(),
                file: rel.clone(),
                acquisitions: vec![Acquisition {
                    lock: "shared.state".into(),
                    line: 9,
                }],
            }],
            allows: vec![Allow {
                rule: "lock-order".into(),
                reason: "re-lock per iteration".into(),
                line: 12,
            }],
            bad_allows: vec![BadAllow {
                problem: "missing reason".into(),
                line: 30,
            }],
            wire: Some(wire),
        }
    }

    #[test]
    fn round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("audit-cache-test-{}", std::process::id()));
        let rel = PathBuf::from("crates/x/src/lib.rs");
        let facts = sample_facts();
        store(&dir, &rel, 42, &facts);
        let back = load(&dir, &rel, 42).expect("hit");
        assert_eq!(back.diags.len(), 1);
        assert_eq!(back.diags[0].rule, "panic-safety");
        assert_eq!(back.diags[0].message, "line with\ttab and\nnewline");
        assert_eq!(back.lock_fns[0].acquisitions[0].lock, "shared.state");
        assert_eq!(back.allows[0].reason, "re-lock per iteration");
        assert_eq!(back.bad_allows[0].line, 30);
        let wire = back.wire.expect("wire facts survive");
        assert_eq!(wire.kinds["Frame::Hello"].0, "1");
        assert_eq!(wire.kindsets["WAL_EVENT_KINDS"].0, vec!["done", "gc"]);
        // Wrong key misses.
        assert!(load(&dir, &rel, 43).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn keys_cover_every_analysis_input() {
        let rel = Path::new("a.rs");
        let base = file_key("cfg", rel, false, "body");
        assert_ne!(base, file_key("cfg2", rel, false, "body"), "config text");
        assert_ne!(
            base,
            file_key("cfg", Path::new("b.rs"), false, "body"),
            "path"
        );
        assert_ne!(base, file_key("cfg", rel, true, "body"), "root flag");
        assert_ne!(base, file_key("cfg", rel, false, "body2"), "content");
    }

    #[test]
    fn garbage_entries_are_misses() {
        assert!(decode("not a cache file", 1, Path::new("a.rs")).is_none());
        assert!(decode("audit-cache zzzz\n", 1, Path::new("a.rs")).is_none());
        assert!(decode(
            "audit-cache 0000000000000001\nX\tjunk\n",
            1,
            Path::new("a.rs")
        )
        .is_none());
    }
}
