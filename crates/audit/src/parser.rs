//! A lightweight structural parser over the token stream.
//!
//! The flow-aware rules (durability-protocol, blocking-in-lock,
//! nondet-taint, swallowed-result) need more than token matching: they
//! reason about *functions* (brace-matched bodies), *`let` bindings*
//! (which names a statement introduces and from what initializer),
//! *call sites* (method calls with reconstructed receiver paths, and
//! free/path calls), and *scopes* (where a binding stops being live).
//! This module recovers exactly that much structure — and no more — from
//! the lexer's tokens. It is not a Rust parser: expressions stay flat
//! token ranges, types are skipped by bracket matching, and macros are
//! opaque except for their argument tokens.
//!
//! Heuristics are byte-span assisted: `>=`/`=>`/`==` are distinguished
//! from a bare assignment `=` by checking whether adjacent punctuation
//! tokens touch in the source, which the lexer's spans make exact.

use crate::lexer::{TokKind, Token};
use crate::source::SourceFile;

/// One `fn` item (including nested fns, which also appear as their own
/// entries) in non-test code.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token indices of the body braces: `toks[body.0]` is `{`,
    /// `toks[body.1]` is the matching `}`.
    pub body: (usize, usize),
}

/// Finds every named `fn` with a body outside `#[cfg(test)]` code.
pub fn functions(src: &SourceFile) -> Vec<Function> {
    let toks = &src.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn")
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            && !src.is_test_code(i)
        {
            if let Some(body) = body_span(toks, i + 2) {
                out.push(Function {
                    name: toks[i + 1].text.clone(),
                    line: toks[i].line,
                    body,
                });
                // Step inside: nested fns become their own entries.
                i = body.0 + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Finds the `{ … }` body of a function whose signature starts at token
/// `i`; `None` for body-less declarations (`fn f();` in traits). Returns
/// the indices of the opening and closing braces.
pub fn body_span(toks: &[Token], mut i: usize) -> Option<(usize, usize)> {
    let mut paren_depth = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') {
            paren_depth += 1;
        } else if t.is_punct(')') {
            paren_depth = paren_depth.saturating_sub(1);
        } else if paren_depth == 0 {
            if t.is_punct(';') {
                return None;
            }
            if t.is_punct('{') {
                let start = i;
                let mut depth = 0usize;
                while i < toks.len() {
                    if toks[i].is_punct('{') {
                        depth += 1;
                    } else if toks[i].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            return Some((start, i));
                        }
                    }
                    i += 1;
                }
                return Some((start, toks.len().saturating_sub(1)));
            }
        }
        i += 1;
    }
    None
}

/// Reconstructs the dotted receiver path ending at token `leaf`
/// (`self.shared.state` → `shared.state`); `None` when the receiver is
/// not a plain ident path (e.g. `make().lock()`).
pub fn receiver_path(toks: &[Token], leaf: usize) -> Option<String> {
    receiver_span(toks, leaf).map(|(start, _)| {
        let mut parts: Vec<&str> = (start..=leaf)
            .step_by(2)
            .map(|i| toks[i].text.as_str())
            .collect();
        if parts.first() == Some(&"self") && parts.len() > 1 {
            parts.remove(0);
        }
        parts.join(".")
    })
}

/// The token span `(start, leaf)` of the dotted ident path ending at
/// `leaf` (both inclusive; every other token is a `.`).
fn receiver_span(toks: &[Token], leaf: usize) -> Option<(usize, usize)> {
    if toks.get(leaf)?.kind != TokKind::Ident {
        return None;
    }
    let mut i = leaf;
    while i >= 2 && toks[i - 1].is_punct('.') && toks[i - 2].kind == TokKind::Ident {
        i -= 2;
    }
    Some((i, leaf))
}

/// Whether the tokens starting at `i` spell `path` (segments separated
/// by `::`), e.g. `Instant :: now` for `"Instant::now"`. A single-segment
/// `path` matches a bare ident.
pub fn matches_call_path(toks: &[Token], i: usize, path: &str) -> bool {
    let mut j = i;
    for (n, seg) in path.split("::").enumerate() {
        if n > 0 {
            if !(toks.get(j).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':')))
            {
                return false;
            }
            j += 2;
        }
        if !toks.get(j).is_some_and(|t| t.is_ident(seg)) {
            return false;
        }
        j += 1;
    }
    true
}

/// Whether punct token `i` and punct token `j` touch in the source —
/// i.e. they form one multi-character operator (`==`, `=>`, `>=`…).
fn touching(toks: &[Token], i: usize, j: usize) -> bool {
    toks[i].end == toks[j].start
}

/// Whether token `i` is a *bare assignment* `=`: a `=` punct that is not
/// glued to a neighbor forming `==`, `=>`, `<=`, `>=`, `!=`, `+=` etc.
pub fn is_assign_eq(toks: &[Token], i: usize) -> bool {
    if !toks[i].is_punct('=') {
        return false;
    }
    if let Some(n) = toks.get(i + 1) {
        if (n.is_punct('=') || n.is_punct('>')) && touching(toks, i, i + 1) {
            return false;
        }
    }
    if i > 0 {
        let p = &toks[i - 1];
        let compound = ["=", "!", "<", ">", "+", "-", "*", "/", "%", "&", "|", "^"]
            .iter()
            .any(|c| p.kind == TokKind::Punct && p.text == *c);
        if compound && touching(toks, i - 1, i) {
            return false;
        }
    }
    true
}

/// One `let` binding statement.
#[derive(Debug, Clone)]
pub struct LetBinding {
    /// Lower-case-ish names the pattern introduces (`let (a, b) = …` →
    /// `["a", "b"]`; enum/struct constructors in the pattern are skipped
    /// by their leading capital).
    pub names: Vec<String>,
    /// Whether the pattern is exactly the wildcard `_`.
    pub is_wildcard: bool,
    /// Token index of the `let` keyword.
    pub let_idx: usize,
    /// Token range `(first, last)` of the initializer expression, both
    /// inclusive. Empty (`first > last`) for `let x;`.
    pub init: (usize, usize),
    /// Token index one past the end of the statement (past the `;`, or
    /// past the `else { … }` block of a let-else).
    pub stmt_end: usize,
    /// 1-based line of the `let`.
    pub line: u32,
}

/// Extracts the `let` bindings in the body span `(open, close)` (brace
/// token indices, exclusive of the braces themselves). Bindings inside
/// nested blocks are included; bindings inside nested `fn` items are
/// not (those fns are analyzed separately).
pub fn let_bindings(toks: &[Token], body: (usize, usize)) -> Vec<LetBinding> {
    let mut out = Vec::new();
    let mut i = body.0 + 1;
    while i < body.1 {
        if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            if let Some((_, nested_close)) = body_span(toks, i + 2) {
                i = nested_close + 1;
                continue;
            }
        }
        // `if let` / `while let` are pattern matches, not bindings with
        // an initializer statement; skip the `let` keyword itself (the
        // scrutinee is ordinary expression tokens, still visible to
        // token-level scans).
        if toks[i].is_ident("let")
            && !(i > body.0 + 1 && (toks[i - 1].is_ident("if") || toks[i - 1].is_ident("while")))
        {
            if let Some(b) = parse_let(toks, i, body.1) {
                // Keep scanning from just past the `let` keyword, not
                // from `stmt_end`: block-valued initializers (`let r =
                // match … { … };`) can contain further `let` statements
                // of their own.
                out.push(b);
            }
        }
        i += 1;
    }
    out
}

/// Parses one `let` statement starting at the `let` keyword index.
fn parse_let(toks: &[Token], let_idx: usize, limit: usize) -> Option<LetBinding> {
    // Find the assignment `=` at bracket depth 0 (angle-depth aware for
    // type annotations like `let x: Map<K, V> = …`).
    let mut j = let_idx + 1;
    let (mut paren, mut bracket, mut brace, mut angle) = (0i32, 0i32, 0i32, 0i32);
    let mut eq = None;
    while j < limit {
        let t = &toks[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            brace -= 1;
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            // `->` in an fn-pointer type annotation is not a closer.
            let arrow = j > 0 && toks[j - 1].is_punct('-') && touching(toks, j - 1, j);
            if !arrow && angle > 0 {
                angle -= 1;
            }
        } else if paren <= 0 && bracket <= 0 && brace <= 0 {
            if t.is_punct(';') {
                // `let x;` — no initializer.
                let names = pattern_names(toks, let_idx + 1, j);
                return Some(LetBinding {
                    is_wildcard: names.1,
                    names: names.0,
                    let_idx,
                    init: (j, j.saturating_sub(1)), // empty range
                    stmt_end: j + 1,
                    line: toks[let_idx].line,
                });
            }
            if angle <= 0 && is_assign_eq(toks, j) {
                eq = Some(j);
                break;
            }
        }
        if paren < 0 || brace < 0 || bracket < 0 {
            return None; // ran off the enclosing block — malformed
        }
        j += 1;
    }
    let eq = eq?;
    // Initializer runs to the `;` at depth 0 (or the `else` of let-else).
    let mut k = eq + 1;
    let (mut paren, mut bracket, mut brace) = (0i32, 0i32, 0i32);
    while k < limit {
        let t = &toks[k];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            brace -= 1;
        } else if paren == 0 && bracket == 0 && brace == 0 {
            if t.is_punct(';') {
                let names = pattern_names(toks, let_idx + 1, eq);
                return Some(LetBinding {
                    is_wildcard: names.1,
                    names: names.0,
                    let_idx,
                    init: (eq + 1, k - 1),
                    stmt_end: k + 1,
                    line: toks[let_idx].line,
                });
            }
            if t.is_ident("else") {
                // let-else: the diverging block ends the statement.
                if let Some((_, close)) = body_span(toks, k + 1) {
                    let names = pattern_names(toks, let_idx + 1, eq);
                    return Some(LetBinding {
                        is_wildcard: names.1,
                        names: names.0,
                        let_idx,
                        init: (eq + 1, k - 1),
                        stmt_end: close + 1,
                        line: toks[let_idx].line,
                    });
                }
            }
        }
        if paren < 0 || brace < 0 || bracket < 0 {
            break;
        }
        k += 1;
    }
    None
}

/// Names bound by the pattern tokens in `[start, end)`, plus whether the
/// pattern is exactly `_`. The type annotation after a top-level `:` is
/// excluded; capitalized idents (enum variants, structs, types) and
/// pattern keywords are skipped.
fn pattern_names(toks: &[Token], start: usize, end: usize) -> (Vec<String>, bool) {
    // Cut the pattern at the top-level `:` (type annotation).
    let mut depth = 0i32;
    let mut pat_end = end;
    for i in start..end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.is_punct(':') {
            // `::` in a variant path is two touching colons.
            let double = toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && touching(toks, i, i + 1)
                || i > start && toks[i - 1].is_punct(':') && touching(toks, i - 1, i);
            if !double {
                pat_end = i;
                break;
            }
        }
    }
    let pat: Vec<&Token> = toks[start..pat_end].iter().collect();
    let is_wildcard = pat.len() == 1 && pat[0].is_ident("_");
    let mut names = Vec::new();
    for (off, t) in pat.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        if name == "_" || matches!(name, "mut" | "ref" | "box") {
            continue;
        }
        if name.chars().next().is_some_and(char::is_uppercase) {
            continue; // Some / Ok / a struct name in a pattern
        }
        // A path segment (`mod::name`) names a constant, not a binding.
        let i = start + off;
        let after_colons = i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
        if after_colons {
            continue;
        }
        names.push(name.to_string());
    }
    (names, is_wildcard)
}

/// The token index one past the matching `)` for the `(` at `open`.
pub fn close_paren(toks: &[Token], open: usize) -> Option<usize> {
    if !toks.get(open)?.is_punct('(') {
        return None;
    }
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// One call site: a method call (`recv.path.method(args)`), a free or
/// path call (`rename(a, b)`, `std::fs::rename(a, b)`), or a macro
/// invocation (`write!(out, …)`).
#[derive(Debug, Clone)]
pub struct Call {
    /// Final name: the method, the last path segment, or the macro name.
    pub name: String,
    /// For method calls, the reconstructed dotted receiver path (leading
    /// `self.` stripped); `None` for free calls, macros, and method
    /// calls on non-path receivers (`make().lock()`).
    pub recv: Option<String>,
    /// Full `::`-joined path for path calls (`std::fs::rename`); equals
    /// `name` for bare calls; `None` for method calls.
    pub path: Option<String>,
    /// Token index where the whole call expression starts (first
    /// receiver/path token, or the macro name).
    pub start: usize,
    /// Token index of the call's name token.
    pub name_idx: usize,
    /// Token indices of the argument parens/brackets: `args.0` opens,
    /// `args.1` closes.
    pub args: (usize, usize),
    /// Whether this is a macro invocation (`name!`).
    pub is_macro: bool,
    /// 1-based line of the name token.
    pub line: u32,
}

impl Call {
    /// All identifier texts appearing in the argument list.
    pub fn arg_idents<'t>(&self, toks: &'t [Token]) -> impl Iterator<Item = &'t str> {
        toks[self.args.0 + 1..self.args.1]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
    }
}

/// Extracts every call site in `toks[range.0..=range.1]` in source
/// order. Nested `fn` bodies are skipped (they are analyzed as their
/// own functions).
pub fn calls_in(toks: &[Token], range: (usize, usize)) -> Vec<Call> {
    let mut out = Vec::new();
    let mut i = range.0;
    while i <= range.1 && i < toks.len() {
        if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            if let Some((_, nested_close)) = body_span(toks, i + 2) {
                i = nested_close + 1;
                continue;
            }
        }
        if toks[i].kind == TokKind::Ident {
            if let Some(call) = call_at(toks, i) {
                i = call.name_idx + 1; // args still get scanned for nested calls
                out.push(call);
                continue;
            }
        }
        i += 1;
    }
    out
}

/// If the ident at `i` is the name of a call, builds the [`Call`].
fn call_at(toks: &[Token], i: usize) -> Option<Call> {
    let next = toks.get(i + 1)?;
    // Macro: `name!(…)` / `name![…]` — brace-form macros are item-like
    // (vec of statements), skip those.
    if next.is_punct('!') {
        let open = toks.get(i + 2)?;
        if open.is_punct('(') || open.is_punct('[') {
            let close = if open.is_punct('(') {
                close_paren(toks, i + 2)?
            } else {
                close_bracket(toks, i + 2)?
            };
            return Some(Call {
                name: toks[i].text.clone(),
                recv: None,
                path: None,
                start: i,
                name_idx: i,
                args: (i + 2, close),
                is_macro: true,
                line: toks[i].line,
            });
        }
        return None;
    }
    // Possibly `name::<T>(…)` — skip the turbofish.
    let open_idx = if next.is_punct('(') {
        i + 1
    } else if next.is_punct(':')
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_punct('<'))
    {
        let mut depth = 0i32;
        let mut j = i + 3;
        loop {
            let t = toks.get(j)?;
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        if !toks.get(j + 1)?.is_punct('(') {
            return None;
        }
        j + 1
    } else {
        return None;
    };
    let close = close_paren(toks, open_idx)?;

    // Method call: preceded by `.`.
    if i >= 1 && toks[i - 1].is_punct('.') {
        let recv = if i >= 2 {
            receiver_path(toks, i - 2)
        } else {
            None
        };
        let start = if i >= 2 {
            receiver_span(toks, i - 2).map(|(s, _)| s).unwrap_or(i)
        } else {
            i
        };
        return Some(Call {
            name: toks[i].text.clone(),
            recv,
            path: None,
            start,
            name_idx: i,
            args: (open_idx, close),
            is_macro: false,
            line: toks[i].line,
        });
    }
    // Path or bare call: walk back over `seg::`.
    let mut first = i;
    while first >= 3
        && toks[first - 1].is_punct(':')
        && toks[first - 2].is_punct(':')
        && toks[first - 3].kind == TokKind::Ident
    {
        first -= 3;
    }
    let path: String = (first..=i)
        .step_by(3)
        .map(|k| toks[k].text.as_str())
        .collect::<Vec<_>>()
        .join("::");
    Some(Call {
        name: toks[i].text.clone(),
        recv: None,
        path: Some(path),
        start: first,
        name_idx: i,
        args: (open_idx, close),
        is_macro: false,
        line: toks[i].line,
    })
}

fn close_bracket(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// For a binding introduced at `stmt_end` inside `body`, the token index
/// one past the end of its lexical scope: the `}` closing the innermost
/// block that was open at the binding site (or the function's own `}`).
pub fn scope_end(toks: &[Token], from: usize, body: (usize, usize)) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i <= body.1 && i < toks.len() {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return i;
            }
        }
        i += 1;
    }
    body.1
}

/// Whether any token in `[range.0, range.1]` is the ident `name`.
pub fn range_mentions(toks: &[Token], range: (usize, usize), name: &str) -> bool {
    if range.0 > range.1 {
        return false;
    }
    toks[range.0..=(range.1).min(toks.len() - 1)]
        .iter()
        .any(|t| t.is_ident(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(Path::new("p.rs"), src)
    }

    #[test]
    fn functions_and_bodies_are_found() {
        let f = parse("fn a() { fn b() {} }\ntrait T { fn c(); }\nfn d(x: u8) -> u8 { x }\n");
        let fns = functions(&f);
        let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "d"]);
    }

    #[test]
    fn let_bindings_parse_names_inits_and_wildcards() {
        let f = parse(
            "fn f() {\n\
               let a = mk();\n\
               let (b, mut c) = pair();\n\
               let _ = file.sync_all();\n\
               let Some(d) = opt else { return; };\n\
               let e: Vec<u8> = Vec::new();\n\
               let g: std::collections::BTreeMap<K, V> = Default::default();\n\
             }\n",
        );
        let fns = functions(&f);
        let lets = let_bindings(&f.tokens, fns[0].body);
        assert_eq!(lets.len(), 6);
        assert_eq!(lets[0].names, vec!["a"]);
        assert_eq!(lets[1].names, vec!["b", "c"]);
        assert!(lets[2].is_wildcard && lets[2].names.is_empty());
        assert_eq!(lets[3].names, vec!["d"]);
        assert_eq!(lets[4].names, vec!["e"]);
        assert_eq!(lets[5].names, vec!["g"]);
        // Initializer of the wildcard binding mentions sync_all.
        assert!(range_mentions(&f.tokens, lets[2].init, "sync_all"));
        // The generic type annotation did not eat the `=`.
        assert!(range_mentions(&f.tokens, lets[5].init, "default"));
    }

    #[test]
    fn lets_nested_in_block_valued_inits_are_found() {
        // `let _ = term.trigger();` inside the match arm must be visible
        // — swallowed-result depends on it.
        let f = parse(
            "fn f() {\n\
               let reply = match cmd {\n\
                 Cmd::Stop => { let _ = term.trigger(); ok() }\n\
                 _ => err(),\n\
               };\n\
             }\n",
        );
        let fns = functions(&f);
        let lets = let_bindings(&f.tokens, fns[0].body);
        assert_eq!(lets.len(), 2, "{lets:?}");
        assert_eq!(lets[0].names, vec!["reply"]);
        assert!(lets[1].is_wildcard);
        assert!(range_mentions(&f.tokens, lets[1].init, "trigger"));
    }

    #[test]
    fn if_let_and_comparisons_are_not_bindings() {
        let f = parse(
            "fn f() {\n\
               if let Some(x) = opt { use_it(x); }\n\
               while let Ok(y) = rx.recv() {}\n\
               let ok = a <= b && c >= d && e == g;\n\
             }\n",
        );
        let fns = functions(&f);
        let lets = let_bindings(&f.tokens, fns[0].body);
        assert_eq!(lets.len(), 1, "{lets:?}");
        assert_eq!(lets[0].names, vec!["ok"]);
    }

    #[test]
    fn calls_extract_methods_paths_and_macros() {
        let f = parse(
            "fn f() {\n\
               self.out.write_all(buf)?;\n\
               std::fs::rename(tmp, fin)?;\n\
               writeln!(log, \"x\")?;\n\
               mk().lock();\n\
               bare(1);\n\
               Vec::<u8>::with_capacity(4);\n\
             }\n",
        );
        let fns = functions(&f);
        let calls = calls_in(&f.tokens, (fns[0].body.0 + 1, fns[0].body.1 - 1));
        let names: Vec<_> = calls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"write_all"));
        assert!(names.contains(&"rename"));
        assert!(names.contains(&"writeln"));
        assert!(names.contains(&"lock"));
        assert!(names.contains(&"bare"));
        let wa = calls.iter().find(|c| c.name == "write_all").unwrap();
        assert_eq!(wa.recv.as_deref(), Some("out"));
        let rn = calls.iter().find(|c| c.name == "rename").unwrap();
        assert_eq!(rn.path.as_deref(), Some("std::fs::rename"));
        assert_eq!(
            rn.arg_idents(&f.tokens).collect::<Vec<_>>(),
            vec!["tmp", "fin"]
        );
        let lk = calls.iter().find(|c| c.name == "lock").unwrap();
        assert!(lk.recv.is_none(), "chained receiver is not a path");
        let wl = calls.iter().find(|c| c.name == "writeln").unwrap();
        assert!(wl.is_macro);
    }

    #[test]
    fn assign_eq_distinguishes_operators_via_spans() {
        let f = parse("fn f() { a = 1; b == 2; c <= 3; d => 4; e += 5; }\n");
        let toks = &f.tokens;
        let eqs: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(i, t)| t.is_punct('=') && is_assign_eq(toks, *i))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(eqs.len(), 1, "only `a = 1` has a bare =");
        assert!(toks[eqs[0] - 1].is_ident("a"));
    }

    #[test]
    fn scope_end_finds_the_enclosing_close_brace() {
        let f = parse("fn f() { { let g = m.lock(); use_it(&g); } after(); }\n");
        let fns = functions(&f);
        let toks = &f.tokens;
        let lets = let_bindings(toks, fns[0].body);
        let end = scope_end(toks, lets[0].stmt_end, fns[0].body);
        // The scope ends before `after` is called.
        let after = toks.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(end < after);
    }
}
