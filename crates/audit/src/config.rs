//! `audit.toml`: which paths each rule covers and what each rule denies.
//!
//! The configuration is explicit on purpose — the deterministic surface
//! and the supervised-evaluation surface are *policy*, not something the
//! tool can infer. See the workspace `audit.toml` for the commented
//! canonical instance.

use crate::toml::{self, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Scope + deny-lists for the determinism rule.
#[derive(Debug, Clone)]
pub struct DeterminismConfig {
    /// Files/directories (workspace-relative) declared deterministic.
    pub paths: Vec<PathBuf>,
    /// Identifiers whose mere use is a hazard (`HashMap`, `thread_rng`…).
    pub deny_idents: Vec<String>,
    /// `Type::method` paths that read ambient state (`Instant::now`…).
    pub deny_calls: Vec<String>,
}

/// Scope + deny-lists for the panic-safety rule.
#[derive(Debug, Clone)]
pub struct PanicSafetyConfig {
    /// Files/directories (workspace-relative) on the supervised
    /// evaluation path.
    pub paths: Vec<PathBuf>,
    /// Method names that panic on failure (`unwrap`, `expect`).
    pub deny_methods: Vec<String>,
    /// Macro names that unconditionally panic (`panic`, `todo`…).
    pub deny_macros: Vec<String>,
}

/// The full audit configuration.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Directories under the workspace root to scan for crates.
    pub roots: Vec<PathBuf>,
    /// Workspace-relative path prefixes to skip entirely (fixture
    /// corpora, generated code).
    pub exclude: Vec<PathBuf>,
    /// Determinism rule settings.
    pub determinism: DeterminismConfig,
    /// Panic-safety rule settings.
    pub panic_safety: PanicSafetyConfig,
    /// Whether the lock-order rule runs.
    pub lock_order: bool,
    /// Whether the unsafe-forbidden rule runs.
    pub unsafe_forbidden: bool,
    /// Allowed internal dependencies per crate; a crate absent from the
    /// matrix is itself a layering violation.
    pub layering: BTreeMap<String, Vec<String>>,
}

/// A configuration failure (I/O, parse error, wrong value shape).
#[derive(Debug)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "audit configuration error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl AuditConfig {
    /// Reads and interprets an `audit.toml`.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError(format!("cannot read {}: {e}", path.display())))?;
        Self::from_toml(&text)
            .map_err(|ConfigError(msg)| ConfigError(format!("{}: {msg}", path.display())))
    }

    /// Interprets configuration text.
    pub fn from_toml(text: &str) -> Result<Self, ConfigError> {
        let doc = toml::parse(text).map_err(|e| ConfigError(e.to_string()))?;
        let layering = doc
            .table("layering.allow")
            .into_iter()
            .map(|e| Ok((e.key.clone(), string_array(&e.value, &e.key)?)))
            .collect::<Result<_, ConfigError>>()?;
        Ok(AuditConfig {
            roots: path_list(&doc, "scan", "roots", &["crates"])?,
            exclude: path_list(&doc, "scan", "exclude", &[])?,
            determinism: DeterminismConfig {
                paths: path_list(&doc, "determinism", "paths", &[])?,
                deny_idents: str_list(
                    &doc,
                    "determinism",
                    "deny-idents",
                    &[
                        "HashMap",
                        "HashSet",
                        "DefaultHasher",
                        "thread_rng",
                        "from_entropy",
                    ],
                )?,
                deny_calls: str_list(
                    &doc,
                    "determinism",
                    "deny-calls",
                    &["Instant::now", "SystemTime::now"],
                )?,
            },
            panic_safety: PanicSafetyConfig {
                paths: path_list(&doc, "panic-safety", "paths", &[])?,
                deny_methods: str_list(
                    &doc,
                    "panic-safety",
                    "deny-methods",
                    &["unwrap", "expect"],
                )?,
                deny_macros: str_list(
                    &doc,
                    "panic-safety",
                    "deny-macros",
                    &["panic", "unreachable", "todo", "unimplemented"],
                )?,
            },
            lock_order: flag(&doc, "lock-order", "enabled", true)?,
            unsafe_forbidden: flag(&doc, "unsafe-forbidden", "enabled", true)?,
            layering,
        })
    }

    /// Whether `rel` (workspace-relative) falls under any of `paths`
    /// (each either a file or a directory prefix).
    pub fn path_in_scope(rel: &Path, paths: &[PathBuf]) -> bool {
        paths.iter().any(|p| rel.starts_with(p))
    }

    /// Whether `rel` is excluded from scanning entirely.
    pub fn is_excluded(&self, rel: &Path) -> bool {
        Self::path_in_scope(rel, &self.exclude)
    }
}

fn string_array(v: &Value, what: &str) -> Result<Vec<String>, ConfigError> {
    let arr = v
        .as_array()
        .ok_or_else(|| ConfigError(format!("`{what}` must be an array of strings")))?;
    arr.iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| ConfigError(format!("`{what}` must contain only strings")))
        })
        .collect()
}

fn str_list(
    doc: &toml::Doc,
    table: &str,
    key: &str,
    default: &[&str],
) -> Result<Vec<String>, ConfigError> {
    match doc.get(table, key) {
        Some(e) => string_array(&e.value, &format!("[{table}] {key}")),
        None => Ok(default.iter().map(|s| s.to_string()).collect()),
    }
}

fn path_list(
    doc: &toml::Doc,
    table: &str,
    key: &str,
    default: &[&str],
) -> Result<Vec<PathBuf>, ConfigError> {
    Ok(str_list(doc, table, key, default)?
        .into_iter()
        .map(PathBuf::from)
        .collect())
}

fn flag(doc: &toml::Doc, table: &str, key: &str, default: bool) -> Result<bool, ConfigError> {
    match doc.get(table, key) {
        Some(e) => e
            .value
            .as_bool()
            .ok_or_else(|| ConfigError(format!("`[{table}] {key}` must be a boolean"))),
        None => Ok(default),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply_when_sections_are_absent() {
        let cfg = AuditConfig::from_toml("").unwrap();
        assert_eq!(cfg.roots, vec![PathBuf::from("crates")]);
        assert!(cfg.determinism.deny_idents.contains(&"HashMap".to_string()));
        assert!(cfg.lock_order && cfg.unsafe_forbidden);
        assert!(cfg.layering.is_empty());
    }

    #[test]
    fn full_config_round_trips() {
        let cfg = AuditConfig::from_toml(
            r#"
            [scan]
            roots = ["crates"]
            exclude = ["crates/audit/tests/fixtures"]
            [determinism]
            paths = ["crates/sim/src", "crates/core/src/search.rs"]
            deny-idents = ["HashMap"]
            deny-calls = ["Instant::now"]
            [panic-safety]
            paths = ["crates/core/src/profiler.rs"]
            [lock-order]
            enabled = false
            [layering.allow]
            datamime-stats = []
            datamime-sim = ["datamime-stats"]
            "#,
        )
        .unwrap();
        assert!(cfg.is_excluded(Path::new("crates/audit/tests/fixtures/determinism.rs")));
        assert!(AuditConfig::path_in_scope(
            Path::new("crates/sim/src/cache.rs"),
            &cfg.determinism.paths
        ));
        assert!(!AuditConfig::path_in_scope(
            Path::new("crates/sim/tests/properties.rs"),
            &cfg.determinism.paths
        ));
        assert!(!cfg.lock_order);
        assert_eq!(cfg.layering["datamime-sim"], vec!["datamime-stats"]);
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(AuditConfig::from_toml("[determinism]\npaths = \"not-a-list\"\n").is_err());
        assert!(AuditConfig::from_toml("[lock-order]\nenabled = \"yes\"\n").is_err());
    }
}
