//! `audit.toml`: which paths each rule covers and what each rule denies.
//!
//! The configuration is explicit on purpose — the deterministic surface,
//! the supervised-evaluation surface, the durability paths, and the
//! journal/wire sink lists are *policy*, not something the tool can
//! infer. See the workspace `audit.toml` for the commented canonical
//! instance.

use crate::toml::{self, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Scope + source/sink lists for the nondet-taint rule (successor of
/// PR 3's `determinism` ident denylist).
#[derive(Debug, Clone)]
pub struct NondetTaintConfig {
    /// Files/directories (workspace-relative) where taint flow from
    /// sources into sinks is checked — wide coverage, whole crates.
    pub paths: Vec<PathBuf>,
    /// The original narrow deterministic core, where unordered
    /// containers are denied outright on top of taint checking.
    pub strict_paths: Vec<PathBuf>,
    /// Identifiers denied in strict paths (`HashMap`, `HashSet`…).
    pub deny_idents: Vec<String>,
    /// Nondeterminism sources: `Type::method` call paths or bare fn
    /// names (`Instant::now`, `thread_rng`).
    pub sources: Vec<String>,
    /// Sink call names — journal record appenders, frame writes,
    /// objective observations.
    pub sinks: Vec<String>,
}

/// Scope + deny-lists for the panic-safety rule.
#[derive(Debug, Clone)]
pub struct PanicSafetyConfig {
    /// Files/directories (workspace-relative) on the supervised
    /// evaluation path.
    pub paths: Vec<PathBuf>,
    /// Method names that panic on failure (`unwrap`, `expect`).
    pub deny_methods: Vec<String>,
    /// Macro names that unconditionally panic (`panic`, `todo`…).
    pub deny_macros: Vec<String>,
}

/// Scope for the durability-protocol rule.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Files/directories holding crash-safety-critical writers.
    pub paths: Vec<PathBuf>,
    /// Call names that fsync a *directory* after a rename
    /// (project helpers like `sync_dir`).
    pub dirsync_fns: Vec<String>,
}

/// Scope + API list for the swallowed-result rule.
#[derive(Debug, Clone)]
pub struct SwallowedResultConfig {
    /// Files/directories where discards of the listed APIs are audited.
    pub paths: Vec<PathBuf>,
    /// Durability/IPC call names whose `Result` must not be silently
    /// dropped.
    pub apis: Vec<String>,
}

/// Settings for the blocking-in-lock rule (workspace-global).
#[derive(Debug, Clone)]
pub struct BlockingInLockConfig {
    /// Whether the rule runs.
    pub enabled: bool,
    /// Project helper functions that return a guard (`lock(&m)`).
    pub guard_fns: Vec<String>,
    /// Call names considered blocking while a guard is live.
    pub blocking: Vec<String>,
}

/// Settings for the wire-compat rule.
#[derive(Debug, Clone)]
pub struct WireCompatConfig {
    /// Workspace-relative files whose wire surfaces are locked. Empty
    /// disables the rule.
    pub files: Vec<PathBuf>,
    /// Workspace-relative lockfile path.
    pub lock: PathBuf,
}

/// The full audit configuration.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Directories under the workspace root to scan for crates.
    pub roots: Vec<PathBuf>,
    /// Workspace-relative path prefixes to skip entirely (fixture
    /// corpora, generated code).
    pub exclude: Vec<PathBuf>,
    /// Nondet-taint rule settings.
    pub nondet_taint: NondetTaintConfig,
    /// Panic-safety rule settings.
    pub panic_safety: PanicSafetyConfig,
    /// Durability-protocol rule settings.
    pub durability: DurabilityConfig,
    /// Swallowed-result rule settings.
    pub swallowed_result: SwallowedResultConfig,
    /// Blocking-in-lock rule settings.
    pub blocking_in_lock: BlockingInLockConfig,
    /// Wire-compat rule settings.
    pub wire_compat: WireCompatConfig,
    /// Whether the lock-order rule runs.
    pub lock_order: bool,
    /// Whether the unsafe-forbidden rule runs.
    pub unsafe_forbidden: bool,
    /// Allowed internal dependencies per crate; a crate absent from the
    /// matrix is itself a layering violation.
    pub layering: BTreeMap<String, Vec<String>>,
    /// The raw configuration text — hashed into incremental-cache keys
    /// so a policy change invalidates every cached analysis.
    pub source_text: String,
}

/// A configuration failure (I/O, parse error, wrong value shape).
#[derive(Debug)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "audit configuration error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl AuditConfig {
    /// Reads and interprets an `audit.toml`.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError(format!("cannot read {}: {e}", path.display())))?;
        Self::from_toml(&text)
            .map_err(|ConfigError(msg)| ConfigError(format!("{}: {msg}", path.display())))
    }

    /// Interprets configuration text.
    pub fn from_toml(text: &str) -> Result<Self, ConfigError> {
        let doc = toml::parse(text).map_err(|e| ConfigError(e.to_string()))?;
        let layering = doc
            .table("layering.allow")
            .into_iter()
            .map(|e| Ok((e.key.clone(), string_array(&e.value, &e.key)?)))
            .collect::<Result<_, ConfigError>>()?;
        Ok(AuditConfig {
            roots: path_list(&doc, "scan", "roots", &["crates"])?,
            exclude: path_list(&doc, "scan", "exclude", &[])?,
            nondet_taint: NondetTaintConfig {
                paths: path_list(&doc, "nondet-taint", "paths", &[])?,
                strict_paths: path_list(&doc, "nondet-taint", "strict-paths", &[])?,
                deny_idents: str_list(
                    &doc,
                    "nondet-taint",
                    "deny-idents",
                    &[
                        "HashMap",
                        "HashSet",
                        "DefaultHasher",
                        "RandomState",
                        "thread_rng",
                        "from_entropy",
                    ],
                )?,
                sources: str_list(
                    &doc,
                    "nondet-taint",
                    "sources",
                    &[
                        "Instant::now",
                        "SystemTime::now",
                        "thread_rng",
                        "from_entropy",
                        "DefaultHasher::new",
                        "RandomState::new",
                    ],
                )?,
                sinks: str_list(&doc, "nondet-taint", "sinks", &[])?,
            },
            panic_safety: PanicSafetyConfig {
                paths: path_list(&doc, "panic-safety", "paths", &[])?,
                deny_methods: str_list(
                    &doc,
                    "panic-safety",
                    "deny-methods",
                    &["unwrap", "expect"],
                )?,
                deny_macros: str_list(
                    &doc,
                    "panic-safety",
                    "deny-macros",
                    &["panic", "unreachable", "todo", "unimplemented"],
                )?,
            },
            durability: DurabilityConfig {
                paths: path_list(&doc, "durability-protocol", "paths", &[])?,
                dirsync_fns: str_list(&doc, "durability-protocol", "dirsync-fns", &["sync_dir"])?,
            },
            swallowed_result: SwallowedResultConfig {
                paths: path_list(&doc, "swallowed-result", "paths", &[])?,
                apis: str_list(
                    &doc,
                    "swallowed-result",
                    "apis",
                    &["sync_all", "sync_data", "rename", "write_frame"],
                )?,
            },
            blocking_in_lock: BlockingInLockConfig {
                enabled: flag(&doc, "blocking-in-lock", "enabled", true)?,
                guard_fns: str_list(&doc, "blocking-in-lock", "guard-fns", &[])?,
                blocking: str_list(
                    &doc,
                    "blocking-in-lock",
                    "blocking",
                    &[
                        "sleep",
                        "sync_all",
                        "sync_data",
                        "read_frame",
                        "write_frame",
                        "read_to_string",
                        "read_to_end",
                        "read_exact",
                        "connect",
                        "accept",
                        "recv",
                        "recv_timeout",
                        "join",
                        "wait",
                        "wait_timeout",
                    ],
                )?,
            },
            wire_compat: WireCompatConfig {
                files: path_list(&doc, "wire-compat", "files", &[])?,
                lock: match doc.get("wire-compat", "lock") {
                    Some(e) => PathBuf::from(e.value.as_str().ok_or_else(|| {
                        ConfigError("`[wire-compat] lock` must be a string".to_string())
                    })?),
                    None => PathBuf::from("audit.wire.lock"),
                },
            },
            lock_order: flag(&doc, "lock-order", "enabled", true)?,
            unsafe_forbidden: flag(&doc, "unsafe-forbidden", "enabled", true)?,
            layering,
            source_text: text.to_string(),
        })
    }

    /// Whether `rel` (workspace-relative) falls under any of `paths`
    /// (each either a file or a directory prefix).
    pub fn path_in_scope(rel: &Path, paths: &[PathBuf]) -> bool {
        paths.iter().any(|p| rel.starts_with(p))
    }

    /// Whether `rel` is excluded from scanning entirely.
    pub fn is_excluded(&self, rel: &Path) -> bool {
        Self::path_in_scope(rel, &self.exclude)
    }
}

fn string_array(v: &Value, what: &str) -> Result<Vec<String>, ConfigError> {
    let arr = v
        .as_array()
        .ok_or_else(|| ConfigError(format!("`{what}` must be an array of strings")))?;
    arr.iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| ConfigError(format!("`{what}` must contain only strings")))
        })
        .collect()
}

fn str_list(
    doc: &toml::Doc,
    table: &str,
    key: &str,
    default: &[&str],
) -> Result<Vec<String>, ConfigError> {
    match doc.get(table, key) {
        Some(e) => string_array(&e.value, &format!("[{table}] {key}")),
        None => Ok(default.iter().map(|s| s.to_string()).collect()),
    }
}

fn path_list(
    doc: &toml::Doc,
    table: &str,
    key: &str,
    default: &[&str],
) -> Result<Vec<PathBuf>, ConfigError> {
    Ok(str_list(doc, table, key, default)?
        .into_iter()
        .map(PathBuf::from)
        .collect())
}

fn flag(doc: &toml::Doc, table: &str, key: &str, default: bool) -> Result<bool, ConfigError> {
    match doc.get(table, key) {
        Some(e) => e
            .value
            .as_bool()
            .ok_or_else(|| ConfigError(format!("`[{table}] {key}` must be a boolean"))),
        None => Ok(default),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply_when_sections_are_absent() {
        let cfg = AuditConfig::from_toml("").unwrap();
        assert_eq!(cfg.roots, vec![PathBuf::from("crates")]);
        assert!(cfg
            .nondet_taint
            .deny_idents
            .contains(&"HashMap".to_string()));
        assert!(cfg
            .nondet_taint
            .sources
            .contains(&"Instant::now".to_string()));
        assert!(cfg.lock_order && cfg.unsafe_forbidden);
        assert!(cfg.blocking_in_lock.enabled);
        assert!(cfg.wire_compat.files.is_empty(), "wire-compat defaults off");
        assert_eq!(cfg.wire_compat.lock, PathBuf::from("audit.wire.lock"));
        assert!(cfg.layering.is_empty());
    }

    #[test]
    fn full_config_round_trips() {
        let cfg = AuditConfig::from_toml(
            r#"
            [scan]
            roots = ["crates"]
            exclude = ["crates/audit/tests/fixtures"]
            [nondet-taint]
            paths = ["crates/runtime/src"]
            strict-paths = ["crates/sim/src", "crates/core/src/search.rs"]
            deny-idents = ["HashMap"]
            sources = ["Instant::now"]
            sinks = ["eval", "write_frame"]
            [panic-safety]
            paths = ["crates/core/src/profiler.rs"]
            [durability-protocol]
            paths = ["crates/serve/src/manifest.rs"]
            dirsync-fns = ["sync_dir"]
            [swallowed-result]
            paths = ["crates/serve/src"]
            apis = ["sync_all", "rename"]
            [blocking-in-lock]
            guard-fns = ["lock"]
            blocking = ["sleep"]
            [wire-compat]
            files = ["crates/dist/src/protocol.rs"]
            lock = "audit.wire.lock"
            [lock-order]
            enabled = false
            [layering.allow]
            datamime-stats = []
            datamime-sim = ["datamime-stats"]
            "#,
        )
        .unwrap();
        assert!(cfg.is_excluded(Path::new("crates/audit/tests/fixtures/determinism.rs")));
        assert!(AuditConfig::path_in_scope(
            Path::new("crates/sim/src/cache.rs"),
            &cfg.nondet_taint.strict_paths
        ));
        assert!(!AuditConfig::path_in_scope(
            Path::new("crates/sim/tests/properties.rs"),
            &cfg.nondet_taint.strict_paths
        ));
        assert_eq!(cfg.nondet_taint.sinks, vec!["eval", "write_frame"]);
        assert_eq!(cfg.durability.paths.len(), 1);
        assert_eq!(cfg.swallowed_result.apis, vec!["sync_all", "rename"]);
        assert_eq!(cfg.blocking_in_lock.guard_fns, vec!["lock"]);
        assert_eq!(
            cfg.wire_compat.files,
            vec![PathBuf::from("crates/dist/src/protocol.rs")]
        );
        assert!(!cfg.lock_order);
        assert_eq!(cfg.layering["datamime-sim"], vec!["datamime-stats"]);
        assert!(cfg.source_text.contains("[wire-compat]"));
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(AuditConfig::from_toml("[nondet-taint]\npaths = \"not-a-list\"\n").is_err());
        assert!(AuditConfig::from_toml("[lock-order]\nenabled = \"yes\"\n").is_err());
        assert!(AuditConfig::from_toml("[swallowed-result]\napis = [1]\n").is_err());
    }
}
