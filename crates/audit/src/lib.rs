//! `datamime-audit`: a std-only static-analysis engine over the
//! Datamime workspace.
//!
//! The search runtime promises bit-identical results across worker
//! counts and journal replays, graceful degradation of supervised
//! evaluations, crash-safe durability of manifests and WAL segments,
//! and a layered crate graph. The compiler checks none of that — this
//! crate does, over a hand-rolled token stream and a lightweight
//! structural parser (no `syn`: the build environment has no crates.io
//! access, and the auditor must sit below every layer it audits). Nine
//! CI-gating rule families:
//!
//! - **`nondet-taint`** — flow-sensitive taint from nondeterminism
//!   sources (clocks, entropy) to journaled/wire sinks; strict paths
//!   additionally deny unordered containers outright.
//! - **`panic-safety`** — no `.unwrap()`/`.expect(…)`/`panic!`-family
//!   macros on the supervised evaluation path.
//! - **`lock-order`** — no two locks acquired in both orders anywhere in
//!   the workspace.
//! - **`layering`** — internal dependencies match the
//!   `[layering.allow]` matrix.
//! - **`unsafe-forbidden`** — every crate root carries
//!   `#![forbid(unsafe_code)]`, and no scanned code uses `unsafe`.
//! - **`durability-protocol`** — file handles on durability paths must
//!   follow write → fsync → rename → dir-fsync; a rename before the
//!   sync, or a dropped handle with unsynced writes, is a violation.
//! - **`swallowed-result`** — `let _ =` / `.ok()` / unread `Result`s on
//!   configured durability/IPC APIs.
//! - **`blocking-in-lock`** — no blocking I/O, sleeps, or waits while a
//!   mutex/rwlock guard is live.
//! - **`wire-compat`** — frame kinds, journal event kinds, and their
//!   version constants are locked in a committed `audit.wire.lock`;
//!   kinds cannot change without a revision bump.
//!
//! The engine analyzes files in parallel (deterministic report order:
//! results are merged in discovery order and finally sorted), and can
//! reuse per-file results across runs via a content-hash cache
//! ([`cache`]). Cross-file rules — lock-order graphs, layering, the
//! wire-lock comparison, and allow bookkeeping — always run, over the
//! (possibly cached) per-file facts.
//!
//! Intentional exceptions are written in the source as
//! `// audit:allow(rule): reason` on (or directly above) the flagged
//! line. Allows are themselves audited: a malformed allow is an
//! `allow-syntax` error and an allow that suppresses nothing is an
//! `unused-allow` error, so the escape hatch cannot rot.

#![forbid(unsafe_code)]

pub mod cache;
pub mod config;
pub mod diagnostics;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod source;
pub mod toml;
pub mod workspace;

use config::AuditConfig;
use diagnostics::Diagnostic;
use source::{Allow, BadAllow, SourceFile};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use workspace::{RawFile, Workspace, WorkspaceError};

/// Everything the per-file analysis phase learns about one source file.
/// This is the unit of caching: per-file diagnostics plus the raw
/// material the cross-file rules consume.
#[derive(Debug)]
pub struct FileFacts {
    /// Path relative to the workspace root.
    pub rel_path: PathBuf,
    /// Per-file rule violations (before `audit:allow` suppression).
    pub diags: Vec<Diagnostic>,
    /// Lock acquisition sequences, for the cross-file lock-order graph.
    pub lock_fns: Vec<rules::lock_order::FnLocks>,
    /// Well-formed `audit:allow` comments in the file.
    pub allows: Vec<Allow>,
    /// Malformed allow comments.
    pub bad_allows: Vec<BadAllow>,
    /// Wire surface facts, when the file is configured under
    /// `[wire-compat] files`.
    pub wire: Option<rules::wire_compat::WireFacts>,
}

/// Engine knobs beyond the policy config.
#[derive(Debug, Default)]
pub struct CheckOptions {
    /// Directory for the per-file facts cache; `None` disables caching
    /// (the default — tests and one-shot runs stay hermetic).
    pub cache_dir: Option<PathBuf>,
    /// Worker thread count; `None` means available parallelism.
    pub jobs: Option<usize>,
}

/// The outcome of one `check` run.
#[derive(Debug)]
pub struct CheckReport {
    /// All violations, sorted by (file, line, rule, message).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of Rust files scanned.
    pub files_scanned: usize,
    /// Number of crates discovered.
    pub crates_scanned: usize,
    /// Files whose analysis was served from the cache.
    pub cache_hits: usize,
}

impl CheckReport {
    /// Whether the workspace passed.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Runs every enabled rule over the workspace at `root` with default
/// options (no cache).
pub fn run_check(root: &Path, cfg: &AuditConfig) -> Result<CheckReport, WorkspaceError> {
    run_check_with(root, cfg, &CheckOptions::default())
}

/// Runs every enabled rule over the workspace at `root` and applies the
/// `audit:allow` suppression pass.
pub fn run_check_with(
    root: &Path,
    cfg: &AuditConfig,
    opts: &CheckOptions,
) -> Result<CheckReport, WorkspaceError> {
    let ws = Workspace::discover(root, cfg)?;
    let roots = ws.crate_roots();
    let is_root: Vec<bool> = ws
        .files
        .iter()
        .map(|f| roots.contains(f.rel_path.as_path()))
        .collect();

    let (facts, cache_hits) = analyze_all(&ws.files, &is_root, cfg, opts);

    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut lock_fns = Vec::new();
    for f in &facts {
        raw.extend(f.diags.iter().cloned());
        lock_fns.extend(f.lock_fns.iter().cloned());
    }
    if cfg.lock_order {
        raw.extend(rules::lock_order::report(&lock_fns));
    }
    raw.extend(rules::layering::check(&ws.crates, &cfg.layering));

    if !cfg.wire_compat.files.is_empty() {
        let mut current = Vec::new();
        for rel in &cfg.wire_compat.files {
            match facts.iter().find(|f| &f.rel_path == rel) {
                Some(f) => current.push((rel.clone(), f.wire.clone().unwrap_or_default())),
                None => raw.push(Diagnostic::new(
                    "wire-compat",
                    rel,
                    0,
                    "configured wire file was not found by the scan — check \
                     [wire-compat] files against the scan roots",
                )),
            }
        }
        let lock_text = std::fs::read_to_string(root.join(&cfg.wire_compat.lock)).ok();
        raw.extend(rules::wire_compat::check_against_lock(
            &current,
            lock_text.as_deref(),
            &cfg.wire_compat,
        ));
    }

    let mut diagnostics = apply_allows(&facts, raw);
    diagnostics.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    Ok(CheckReport {
        diagnostics,
        files_scanned: ws.files.len(),
        crates_scanned: ws.crates.len(),
        cache_hits,
    })
}

/// Runs the per-file phase over every file, in parallel, preserving
/// discovery order in the output. Returns the facts plus the cache hit
/// count.
fn analyze_all(
    files: &[RawFile],
    is_root: &[bool],
    cfg: &AuditConfig,
    opts: &CheckOptions,
) -> (Vec<FileFacts>, usize) {
    let n = files.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let jobs = opts
        .jobs
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, n);
    let cache_dir = opts.cache_dir.as_deref();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, FileFacts, bool)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = analyze_or_load(&files[i], is_root[i], cfg, cache_dir);
                results
                    .lock()
                    .expect("audit worker panicked while holding the results lock")
                    .push((i, item.0, item.1));
            });
        }
    });
    let mut slots = results
        .into_inner()
        .expect("audit worker panicked while holding the results lock");
    // Merge back into discovery order so diagnostics are deterministic
    // regardless of scheduling.
    slots.sort_by_key(|(i, _, _)| *i);
    let cache_hits = slots.iter().filter(|(_, _, hit)| *hit).count();
    (slots.into_iter().map(|(_, f, _)| f).collect(), cache_hits)
}

/// Analyzes one file, consulting the cache first when enabled. The
/// second element reports whether the result came from the cache.
fn analyze_or_load(
    raw: &RawFile,
    is_root: bool,
    cfg: &AuditConfig,
    cache_dir: Option<&Path>,
) -> (FileFacts, bool) {
    if let Some(dir) = cache_dir {
        let key = cache::file_key(&cfg.source_text, &raw.rel_path, is_root, &raw.text);
        if let Some(facts) = cache::load(dir, &raw.rel_path, key) {
            return (facts, true);
        }
        let facts = analyze_file(raw, is_root, cfg);
        cache::store(dir, &raw.rel_path, key, &facts);
        return (facts, false);
    }
    (analyze_file(raw, is_root, cfg), false)
}

/// The per-file analysis: lex + parse once, then run every rule whose
/// scope covers this file.
pub fn analyze_file(raw: &RawFile, is_root: bool, cfg: &AuditConfig) -> FileFacts {
    let src = SourceFile::parse(&raw.rel_path, &raw.text);
    let mut diags = Vec::new();

    let strict = AuditConfig::path_in_scope(&src.rel_path, &cfg.nondet_taint.strict_paths);
    let wide = AuditConfig::path_in_scope(&src.rel_path, &cfg.nondet_taint.paths);
    if strict || wide {
        diags.extend(rules::nondet_taint::check(&src, &cfg.nondet_taint, strict));
    }
    if AuditConfig::path_in_scope(&src.rel_path, &cfg.panic_safety.paths) {
        diags.extend(rules::panic_safety::check(&src, &cfg.panic_safety));
    }
    if AuditConfig::path_in_scope(&src.rel_path, &cfg.durability.paths) {
        diags.extend(rules::durability::check(&src, &cfg.durability));
    }
    if AuditConfig::path_in_scope(&src.rel_path, &cfg.swallowed_result.paths) {
        diags.extend(rules::swallowed_result::check(&src, &cfg.swallowed_result));
    }
    if cfg.blocking_in_lock.enabled {
        diags.extend(rules::blocking_in_lock::check(&src, &cfg.blocking_in_lock));
    }
    if cfg.unsafe_forbidden {
        diags.extend(rules::unsafe_forbidden::check_unsafe_use(&src));
        if is_root {
            diags.extend(rules::unsafe_forbidden::check_root(&src));
        }
    }
    let lock_fns = if cfg.lock_order {
        rules::lock_order::collect(&src)
    } else {
        Vec::new()
    };
    let wire = cfg
        .wire_compat
        .files
        .iter()
        .any(|f| f == &src.rel_path)
        .then(|| rules::wire_compat::extract(&src));

    FileFacts {
        rel_path: raw.rel_path.clone(),
        diags,
        lock_fns,
        allows: src.allows,
        bad_allows: src.bad_allows,
        wire,
    }
}

/// Suppresses diagnostics covered by a well-formed
/// `// audit:allow(rule): reason` on the same line or the line above,
/// then reports the allows that misfired: unknown rule names and allows
/// that suppressed nothing.
fn apply_allows(facts: &[FileFacts], raw: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // (file index, allow index) -> used?
    let mut used: Vec<Vec<bool>> = facts.iter().map(|f| vec![false; f.allows.len()]).collect();

    for d in raw {
        let mut suppressed = false;
        if let Some(fi) = facts.iter().position(|f| f.rel_path == d.file) {
            for (ai, allow) in facts[fi].allows.iter().enumerate() {
                if allow.rule == d.rule && (allow.line == d.line || allow.line + 1 == d.line) {
                    used[fi][ai] = true;
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            out.push(d);
        }
    }

    for (fi, f) in facts.iter().enumerate() {
        for b in &f.bad_allows {
            out.push(Diagnostic::new(
                "allow-syntax",
                &f.rel_path,
                b.line,
                b.problem.clone(),
            ));
        }
        for (ai, allow) in f.allows.iter().enumerate() {
            if !rules::RULES.contains(&allow.rule.as_str()) {
                out.push(Diagnostic::new(
                    "allow-syntax",
                    &f.rel_path,
                    allow.line,
                    format!(
                        "audit:allow names unknown rule `{}` (rules: {})",
                        allow.rule,
                        rules::RULES.join(", ")
                    ),
                ));
            } else if !used[fi][ai] {
                out.push(Diagnostic::new(
                    "unused-allow",
                    &f.rel_path,
                    allow.line,
                    format!(
                        "audit:allow({}) suppresses nothing — delete it (reason was: {})",
                        allow.rule, allow.reason
                    ),
                ));
            }
        }
    }
    out
}
