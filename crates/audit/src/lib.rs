//! `datamime-audit`: a std-only static-analysis pass over the Datamime
//! workspace.
//!
//! The search runtime promises bit-identical results across worker
//! counts and journal replays, graceful degradation of supervised
//! evaluations, and a layered crate graph. The compiler checks none of
//! that — this crate does, with four CI-gating rules over a hand-rolled
//! token stream (no `syn`: the build environment has no crates.io
//! access, and the auditor must sit below every layer it audits):
//!
//! - **`determinism`** — no `HashMap`/`HashSet`/`DefaultHasher`/
//!   `thread_rng`/`from_entropy` and no `Instant::now`/`SystemTime::now`
//!   in paths declared deterministic.
//! - **`panic-safety`** — no `.unwrap()`/`.expect(…)`/`panic!`-family
//!   macros on the supervised evaluation path.
//! - **`lock-order`** — no two locks acquired in both orders anywhere in
//!   the workspace.
//! - **`layering`** — internal dependencies match the
//!   `[layering.allow]` matrix.
//! - **`unsafe-forbidden`** — every crate root carries
//!   `#![forbid(unsafe_code)]`, and no scanned code uses `unsafe`.
//!
//! Intentional exceptions are written in the source as
//! `// audit:allow(rule): reason` on (or directly above) the flagged
//! line. Allows are themselves audited: a malformed allow is an
//! `allow-syntax` error and an allow that suppresses nothing is an
//! `unused-allow` error, so the escape hatch cannot rot.

#![forbid(unsafe_code)]

pub mod config;
pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod toml;
pub mod workspace;

use config::AuditConfig;
use diagnostics::Diagnostic;
use std::path::Path;
use workspace::{Workspace, WorkspaceError};

/// The outcome of one `check` run.
#[derive(Debug)]
pub struct CheckReport {
    /// All violations, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of Rust files scanned.
    pub files_scanned: usize,
    /// Number of crates discovered.
    pub crates_scanned: usize,
}

impl CheckReport {
    /// Whether the workspace passed.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Runs every enabled rule over the workspace at `root` and applies the
/// `audit:allow` suppression pass.
pub fn run_check(root: &Path, cfg: &AuditConfig) -> Result<CheckReport, WorkspaceError> {
    let ws = Workspace::discover(root, cfg)?;
    let mut raw: Vec<Diagnostic> = Vec::new();

    let roots = ws.crate_roots();
    let mut lock_fns = Vec::new();
    for src in &ws.files {
        if AuditConfig::path_in_scope(&src.rel_path, &cfg.determinism.paths) {
            raw.extend(rules::determinism::check(src, &cfg.determinism));
        }
        if AuditConfig::path_in_scope(&src.rel_path, &cfg.panic_safety.paths) {
            raw.extend(rules::panic_safety::check(src, &cfg.panic_safety));
        }
        if cfg.unsafe_forbidden {
            raw.extend(rules::unsafe_forbidden::check_unsafe_use(src));
            if roots.contains(src.rel_path.as_path()) {
                raw.extend(rules::unsafe_forbidden::check_root(src));
            }
        }
        if cfg.lock_order {
            lock_fns.extend(rules::lock_order::collect(src));
        }
    }
    if cfg.lock_order {
        raw.extend(rules::lock_order::report(&lock_fns));
    }
    raw.extend(rules::layering::check(&ws.crates, &cfg.layering));

    let mut diagnostics = apply_allows(&ws, raw);
    diagnostics.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    Ok(CheckReport {
        diagnostics,
        files_scanned: ws.files.len(),
        crates_scanned: ws.crates.len(),
    })
}

/// Suppresses diagnostics covered by a well-formed
/// `// audit:allow(rule): reason` on the same line or the line above,
/// then reports the allows that misfired: unknown rule names and allows
/// that suppressed nothing.
fn apply_allows(ws: &Workspace, raw: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // (file index, allow index) -> used?
    let mut used: Vec<Vec<bool>> = ws
        .files
        .iter()
        .map(|f| vec![false; f.allows.len()])
        .collect();

    for d in raw {
        let mut suppressed = false;
        if let Some(fi) = ws.files.iter().position(|f| f.rel_path == d.file) {
            for (ai, allow) in ws.files[fi].allows.iter().enumerate() {
                if allow.rule == d.rule && (allow.line == d.line || allow.line + 1 == d.line) {
                    used[fi][ai] = true;
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            out.push(d);
        }
    }

    for (fi, f) in ws.files.iter().enumerate() {
        for b in &f.bad_allows {
            out.push(Diagnostic::new(
                "allow-syntax",
                &f.rel_path,
                b.line,
                b.problem.clone(),
            ));
        }
        for (ai, allow) in f.allows.iter().enumerate() {
            if !rules::RULES.contains(&allow.rule.as_str()) {
                out.push(Diagnostic::new(
                    "allow-syntax",
                    &f.rel_path,
                    allow.line,
                    format!(
                        "audit:allow names unknown rule `{}` (rules: {})",
                        allow.rule,
                        rules::RULES.join(", ")
                    ),
                ));
            } else if !used[fi][ai] {
                out.push(Diagnostic::new(
                    "unused-allow",
                    &f.rel_path,
                    allow.line,
                    format!(
                        "audit:allow({}) suppresses nothing — delete it (reason was: {})",
                        allow.rule, allow.reason
                    ),
                ));
            }
        }
    }
    out
}
