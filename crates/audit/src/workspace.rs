//! Workspace discovery: find the crates under the configured scan
//! roots, parse their manifests, and lex their `src/` trees.
//!
//! The audit deliberately scans only each crate's `src/` tree — that is
//! the product code the invariants protect. Integration tests and
//! benches are wholly test code and may unwrap, read clocks, and lock in
//! any order they like, exactly as `#[cfg(test)]` blocks inside `src/`
//! may (the rules mask those via
//! [`SourceFile::is_test_code`](crate::source::SourceFile::is_test_code)).

use crate::config::AuditConfig;
use crate::toml;
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// One source file as read from disk. Lexing and parsing happen in the
/// per-file analysis phase (parallel, cacheable) — discovery only does
/// I/O, so the cache can skip the expensive work entirely on a hit.
#[derive(Debug)]
pub struct RawFile {
    /// Path relative to the workspace root.
    pub rel_path: PathBuf,
    /// Full file contents.
    pub text: String,
}

/// One dependency edge as written in a manifest.
#[derive(Debug, Clone)]
pub struct DepRef {
    /// Package name (`datamime-stats`), from the entry key.
    pub name: String,
    /// 1-based line of the dependency in the manifest.
    pub line: u32,
}

/// One discovered crate.
#[derive(Debug)]
pub struct CrateInfo {
    /// Package name from `[package] name`.
    pub name: String,
    /// Crate directory relative to the workspace root (`crates/sim`).
    pub rel_dir: PathBuf,
    /// Manifest path relative to the workspace root.
    pub manifest_rel: PathBuf,
    /// `[dependencies]` + `[build-dependencies]` entries. Dev-dependencies
    /// are exempt from layering: they shape the test graph, not the
    /// product graph.
    pub deps: Vec<DepRef>,
    /// Crate roots relative to the workspace root: `src/lib.rs`,
    /// `src/main.rs`, `src/bin/*.rs`, and explicit `[[bin]]` paths.
    pub root_files: Vec<PathBuf>,
}

/// The scanned workspace.
#[derive(Debug)]
pub struct Workspace {
    /// Discovered crates, sorted by name.
    pub crates: Vec<CrateInfo>,
    /// Every `src/**/*.rs` (raw text, not yet lexed), sorted by path.
    pub files: Vec<RawFile>,
}

/// A discovery failure (I/O or a manifest that does not parse).
#[derive(Debug)]
pub struct WorkspaceError(pub String);

impl fmt::Display for WorkspaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workspace scan error: {}", self.0)
    }
}

impl std::error::Error for WorkspaceError {}

impl Workspace {
    /// Scans `root` according to `cfg`.
    pub fn discover(root: &Path, cfg: &AuditConfig) -> Result<Self, WorkspaceError> {
        let mut manifests = Vec::new();
        for scan_root in &cfg.roots {
            let abs = root.join(scan_root);
            if abs.is_dir() {
                find_manifests(root, &abs, cfg, &mut manifests)?;
            }
        }
        manifests.sort();

        let mut crates = Vec::new();
        let mut files = Vec::new();
        for manifest_abs in &manifests {
            let rel_dir = manifest_abs
                .parent()
                .expect("manifest path has a parent")
                .strip_prefix(root)
                .expect("manifest found under root")
                .to_path_buf();
            let manifest_rel = rel_dir.join("Cargo.toml");
            let text = read(manifest_abs)?;
            let doc = toml::parse(&text)
                .map_err(|e| WorkspaceError(format!("{}: {e}", manifest_rel.display())))?;
            let Some(name) = doc.get("package", "name").and_then(|e| e.value.as_str()) else {
                // A virtual manifest (pure `[workspace]`) declares no
                // package; nothing to audit in it.
                continue;
            };
            let mut deps = Vec::new();
            for table in ["dependencies", "build-dependencies"] {
                for e in doc.table(table) {
                    let dep_name = e.key.split('.').next().unwrap_or(&e.key);
                    deps.push(DepRef {
                        name: dep_name.to_string(),
                        line: e.line,
                    });
                }
            }

            let mut src_files = Vec::new();
            let src_dir = manifest_abs.parent().expect("has parent").join("src");
            if src_dir.is_dir() {
                find_rust_files(root, &src_dir, cfg, &mut src_files)?;
            }
            src_files.sort();

            let mut root_files = BTreeSet::new();
            for candidate in ["src/lib.rs", "src/main.rs"] {
                let rel = rel_dir.join(candidate);
                if src_files.contains(&rel) {
                    root_files.insert(rel);
                }
            }
            for f in &src_files {
                if f.strip_prefix(rel_dir.join("src/bin")).is_ok() {
                    root_files.insert(f.clone());
                }
            }
            for e in doc.table("bin") {
                if e.key == "path" {
                    if let Some(p) = e.value.as_str() {
                        let rel = rel_dir.join(p);
                        if src_files.contains(&rel) {
                            root_files.insert(rel);
                        }
                    }
                }
            }

            for rel in &src_files {
                let text = read(&root.join(rel))?;
                files.push(RawFile {
                    rel_path: rel.clone(),
                    text,
                });
            }
            crates.push(CrateInfo {
                name: name.to_string(),
                rel_dir,
                manifest_rel,
                deps,
                root_files: root_files.into_iter().collect(),
            });
        }
        crates.sort_by(|a, b| a.name.cmp(&b.name));
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Ok(Workspace { crates, files })
    }

    /// The rel paths that are crate roots, across all crates.
    pub fn crate_roots(&self) -> BTreeSet<&Path> {
        self.crates
            .iter()
            .flat_map(|c| c.root_files.iter().map(PathBuf::as_path))
            .collect()
    }
}

fn read(path: &Path) -> Result<String, WorkspaceError> {
    std::fs::read_to_string(path)
        .map_err(|e| WorkspaceError(format!("cannot read {}: {e}", path.display())))
}

/// Recursively collects `Cargo.toml` paths under `dir`, skipping excluded
/// prefixes and `target/` build output.
fn find_manifests(
    root: &Path,
    dir: &Path,
    cfg: &AuditConfig,
    out: &mut Vec<PathBuf>,
) -> Result<(), WorkspaceError> {
    for entry in list_dir(dir)? {
        let rel = entry.strip_prefix(root).unwrap_or(&entry);
        if cfg.is_excluded(rel) {
            continue;
        }
        if entry.is_dir() {
            if entry.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            find_manifests(root, &entry, cfg, out)?;
        } else if entry.file_name().is_some_and(|n| n == "Cargo.toml") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Recursively collects workspace-relative `*.rs` paths under `dir`.
fn find_rust_files(
    root: &Path,
    dir: &Path,
    cfg: &AuditConfig,
    out: &mut Vec<PathBuf>,
) -> Result<(), WorkspaceError> {
    for entry in list_dir(dir)? {
        let rel = entry.strip_prefix(root).unwrap_or(&entry).to_path_buf();
        if cfg.is_excluded(&rel) {
            continue;
        }
        if entry.is_dir() {
            find_rust_files(root, &entry, cfg, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Reads a directory into a sorted list of absolute paths (sorted so the
/// scan order — and therefore diagnostic order — is stable across
/// filesystems).
fn list_dir(dir: &Path) -> Result<Vec<PathBuf>, WorkspaceError> {
    let rd = std::fs::read_dir(dir)
        .map_err(|e| WorkspaceError(format!("cannot read dir {}: {e}", dir.display())))?;
    let mut entries = Vec::new();
    for e in rd {
        let e = e.map_err(|err| WorkspaceError(format!("readdir {}: {err}", dir.display())))?;
        entries.push(e.path());
    }
    entries.sort();
    Ok(entries)
}
