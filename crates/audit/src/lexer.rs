//! A small hand-rolled Rust lexer.
//!
//! The build environment has no crates.io access, so `syn`/`proc-macro2`
//! are unavailable; the audit rules only need a token stream with line
//! numbers, which this module produces. The lexer understands everything
//! that can *hide* tokens from a naive text scan — nested block comments,
//! raw strings with arbitrary `#` fences, byte/char literals, raw
//! identifiers, lifetimes — so that rule patterns never fire inside a
//! string or comment and never miss real code.
//!
//! Comments are not tokens: they are collected separately so the
//! `// audit:allow(rule): reason` escape hatch can be parsed from them.

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are normalized: `r#match`
    /// lexes as `match`).
    Ident,
    /// Any literal: number, string, raw string, byte string, char, byte.
    Literal,
    /// A lifetime such as `'a` (quote included in the text).
    Lifetime,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// Source text (normalized for raw identifiers, truncated for long
    /// literals — rules only match identifiers and punctuation).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One comment (line or block) with its 1-based starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Unterminated constructs (an
/// unclosed string or block comment) consume the rest of the file rather
/// than erroring: the auditor must keep scanning a file that rustc would
/// reject, and the worst case is a missed diagnostic at the broken tail.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

/// Literal-capable prefixes: `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`,
/// `c"…"`, `cr#"…"#`.
const STRING_PREFIXES: [&str; 5] = ["r", "b", "br", "c", "cr"];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek_at(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek_at(1) == Some('*') {
                self.block_comment();
            } else if is_ident_start(c) {
                self.ident_or_prefixed_literal();
            } else if c.is_ascii_digit() {
                self.number();
            } else if c == '"' {
                self.string();
            } else if c == '\'' {
                self.lifetime_or_char();
            } else {
                let line = self.line;
                self.bump();
                self.push(TokKind::Punct, c.to_string(), line);
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek() {
            if c == '/' && self.peek_at(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek_at(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { text, line });
    }

    fn ident_text(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        text
    }

    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let text = self.ident_text();
        if STRING_PREFIXES.contains(&text.as_str()) {
            // `b"…"`, `c"…"`, `r"…"` — prefixed plain string.
            if self.peek() == Some('"') {
                self.string();
                return;
            }
            // `b'x'` — byte literal.
            if text == "b" && self.peek() == Some('\'') {
                self.char_literal();
                return;
            }
            // `r#"…"#` / `br##"…"##` — raw string; `r#ident` — raw ident.
            if text.ends_with('r') && self.peek() == Some('#') {
                let mut fence = 0;
                while self.peek_at(fence) == Some('#') {
                    fence += 1;
                }
                if self.peek_at(fence) == Some('"') {
                    self.raw_string(fence);
                    return;
                }
                if text == "r" && fence == 1 {
                    self.bump(); // the '#'
                    let raw = self.ident_text();
                    self.push(TokKind::Ident, raw, line);
                    return;
                }
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                // Fraction — but never consume `1..2`'s range dots.
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-')
                && matches!(text.chars().last(), Some('e') | Some('E'))
                && self.peek_at(1).is_some_and(|d| d.is_ascii_digit())
            {
                // Signed exponent: `1e-3`.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Literal, text, line);
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump(); // whatever is escaped, including `\"` and `\\`
            } else if c == '"' {
                break;
            }
        }
        self.push(TokKind::Literal, "\"…\"".to_string(), line);
    }

    fn raw_string(&mut self, fence: usize) {
        let line = self.line;
        for _ in 0..=fence {
            self.bump(); // the '#'s and the opening quote
        }
        while let Some(c) = self.bump() {
            if c == '"' {
                let closed = (0..fence).all(|i| self.peek_at(i) == Some('#'));
                if closed {
                    for _ in 0..fence {
                        self.bump();
                    }
                    break;
                }
            }
        }
        self.push(TokKind::Literal, "r\"…\"".to_string(), line);
    }

    fn char_literal(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == '\'' {
                break;
            }
        }
        self.push(TokKind::Literal, "'…'".to_string(), line);
    }

    fn lifetime_or_char(&mut self) {
        // A quote followed by an identifier is a lifetime — unless the
        // identifier is itself followed by a closing quote (`'a'`).
        let mut ahead = 1;
        let mut saw_ident = false;
        while self.peek_at(ahead).is_some_and(is_ident_continue) {
            saw_ident = true;
            ahead += 1;
        }
        if saw_ident
            && self.peek_at(ahead) != Some('\'')
            && self.peek_at(1).is_some_and(is_ident_start)
        {
            let line = self.line;
            self.bump(); // quote
            let name = self.ident_text();
            self.push(TokKind::Lifetime, format!("'{name}"), line);
        } else {
            self.char_literal();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_not_found_inside_strings_or_comments() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now() in a block /* nested */ comment */
            let s = "HashMap::new()";
            let r = r#"thread_rng "quoted" here"#;
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|i| *i == "HashMap").count(), 1);
        assert!(!ids.iter().any(|i| i == "thread_rng"));
        assert!(!ids.iter().any(|i| i == "Instant"));
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
    }

    #[test]
    fn raw_identifiers_normalize() {
        let ids = idents("let r#match = 1; let x = r#fn;");
        assert!(ids.contains(&"match".to_string()));
        assert!(ids.contains(&"fn".to_string()));
    }

    #[test]
    fn byte_and_raw_strings_are_single_literals() {
        let lexed = lex(r###"let a = b"bytes"; let b = br#"raw "b" # ok"#; let c = b'x';"###);
        let lits = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lits, 3);
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let src = "let x = 1; // audit:allow(determinism): reason\n// plain\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("audit:allow"));
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let lexed = lex("for i in 0..10 { let f = 1.5e-3; }");
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text == "1.5e-3"));
    }
}
