//! A small hand-rolled Rust lexer.
//!
//! The build environment has no crates.io access, so `syn`/`proc-macro2`
//! are unavailable; the audit rules only need a token stream with line
//! numbers and byte spans, which this module produces. The lexer
//! understands everything that can *hide* tokens from a naive text scan —
//! nested block comments, raw strings with arbitrary `#` fences,
//! byte/char literals, raw identifiers, lifetimes — so that rule patterns
//! never fire inside a string or comment and never miss real code.
//!
//! Every token and comment carries its `[start, end)` byte span into the
//! original source. The spans are a checked invariant, not decoration:
//! `tests/lexer_props.rs` sweeps every workspace source file and asserts
//! that spans are in order, never overlap, and partition the file down to
//! whitespace — i.e. re-concatenating the spans (plus the whitespace gaps
//! between them) reconstructs the file byte for byte.
//!
//! Comments are not tokens: they are collected separately so the
//! `// audit:allow(rule): reason` escape hatch can be parsed from them.

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are normalized: `r#match`
    /// lexes as `match`, though its span still covers the `r#`).
    Ident,
    /// Any literal: number, string, raw string, byte string, char, byte.
    Literal,
    /// A lifetime such as `'a` (quote included in the text).
    Lifetime,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
}

/// One lexed token with its 1-based source line and byte span.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// Source text. Identifiers are normalized for raw-identifier
    /// prefixes; every other kind is the exact source slice (string
    /// literals keep their quotes and escapes, so rules can read their
    /// contents).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Byte offset of the token's first byte in the source.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// For a plain string literal (`"…"` with no raw fence), the content
    /// between the quotes; `None` for every other token. Escapes are not
    /// processed — good enough for the event-kind and frame-name strings
    /// the wire-compat rule reads, which are plain ASCII words.
    pub fn str_content(&self) -> Option<&str> {
        if self.kind != TokKind::Literal {
            return None;
        }
        let t = self.text.as_str();
        if t.len() >= 2 && t.starts_with('"') && t.ends_with('"') {
            return Some(&t[1..t.len() - 1]);
        }
        None
    }
}

/// One comment (line or block) with its 1-based starting line and span.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Byte offset of the comment's first byte.
    pub start: usize,
    /// Byte offset one past the comment's last byte.
    pub end: usize,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Unterminated constructs (an
/// unclosed string or block comment) consume the rest of the file rather
/// than erroring: the auditor must keep scanning a file that rustc would
/// reject, and the worst case is a missed diagnostic at the broken tail.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        src,
        pos: 0,
        byte: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'s> {
    chars: Vec<char>,
    src: &'s str,
    pos: usize,
    /// Byte offset of `chars[pos]` in `src`.
    byte: usize,
    line: u32,
    out: Lexed,
}

/// Literal-capable prefixes: `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`,
/// `c"…"`, `cr#"…"#`.
const STRING_PREFIXES: [&str; 5] = ["r", "b", "br", "c", "cr"];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        self.byte += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek_at(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek_at(1) == Some('*') {
                self.block_comment();
            } else if is_ident_start(c) {
                self.ident_or_prefixed_literal();
            } else if c.is_ascii_digit() {
                self.number();
            } else if c == '"' {
                let (line, start) = (self.line, self.byte);
                self.string(line, start);
            } else if c == '\'' {
                self.lifetime_or_char();
            } else {
                let (line, start) = (self.line, self.byte);
                self.bump();
                self.push(TokKind::Punct, c.to_string(), line, start);
            }
        }
        self.out
    }

    /// Pushes a token ending at the current byte position.
    fn push(&mut self, kind: TokKind, text: String, line: u32, start: usize) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            start,
            end: self.byte,
        });
    }

    /// Pushes a literal whose text is the exact source slice.
    fn push_slice_literal(&mut self, line: u32, start: usize) {
        let text = self.src[start..self.byte].to_string();
        self.push(TokKind::Literal, text, line, start);
    }

    fn line_comment(&mut self) {
        let (line, start) = (self.line, self.byte);
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            text,
            line,
            start,
            end: self.byte,
        });
    }

    fn block_comment(&mut self) {
        let (line, start) = (self.line, self.byte);
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek() {
            if c == '/' && self.peek_at(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek_at(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            text,
            line,
            start,
            end: self.byte,
        });
    }

    fn ident_text(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        text
    }

    fn ident_or_prefixed_literal(&mut self) {
        let (line, start) = (self.line, self.byte);
        let text = self.ident_text();
        if STRING_PREFIXES.contains(&text.as_str()) {
            // `b"…"`, `c"…"`, `r"…"` — prefixed plain string.
            if self.peek() == Some('"') {
                self.string(line, start);
                return;
            }
            // `b'x'` — byte literal.
            if text == "b" && self.peek() == Some('\'') {
                self.char_literal(line, start);
                return;
            }
            // `r#"…"#` / `br##"…"##` — raw string; `r#ident` — raw ident.
            if text.ends_with('r') && self.peek() == Some('#') {
                let mut fence = 0;
                while self.peek_at(fence) == Some('#') {
                    fence += 1;
                }
                if self.peek_at(fence) == Some('"') {
                    self.raw_string(fence, line, start);
                    return;
                }
                if text == "r" && fence == 1 {
                    self.bump(); // the '#'
                    let raw = self.ident_text();
                    self.push(TokKind::Ident, raw, line, start);
                    return;
                }
            }
        }
        self.push(TokKind::Ident, text, line, start);
    }

    fn number(&mut self) {
        let (line, start) = (self.line, self.byte);
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                // Fraction — but never consume `1..2`'s range dots.
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-')
                && matches!(text.chars().last(), Some('e') | Some('E'))
                && self.peek_at(1).is_some_and(|d| d.is_ascii_digit())
            {
                // Signed exponent: `1e-3`.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Literal, text, line, start);
    }

    /// Lexes a plain (possibly prefixed) string literal whose opening
    /// quote is at the current position; the span starts at `start`,
    /// which precedes any already-consumed `b`/`c`/`r` prefix.
    fn string(&mut self, line: u32, start: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump(); // whatever is escaped, including `\"` and `\\`
            } else if c == '"' {
                break;
            }
        }
        self.push_slice_literal(line, start);
    }

    fn raw_string(&mut self, fence: usize, line: u32, start: usize) {
        for _ in 0..=fence {
            self.bump(); // the '#'s and the opening quote
        }
        while let Some(c) = self.bump() {
            if c == '"' {
                let closed = (0..fence).all(|i| self.peek_at(i) == Some('#'));
                if closed {
                    for _ in 0..fence {
                        self.bump();
                    }
                    break;
                }
            }
        }
        self.push_slice_literal(line, start);
    }

    fn char_literal(&mut self, line: u32, start: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == '\'' {
                break;
            }
        }
        self.push_slice_literal(line, start);
    }

    fn lifetime_or_char(&mut self) {
        // A quote followed by an identifier is a lifetime — unless the
        // identifier is itself followed by a closing quote (`'a'`).
        let mut ahead = 1;
        let mut saw_ident = false;
        while self.peek_at(ahead).is_some_and(is_ident_continue) {
            saw_ident = true;
            ahead += 1;
        }
        let (line, start) = (self.line, self.byte);
        if saw_ident
            && self.peek_at(ahead) != Some('\'')
            && self.peek_at(1).is_some_and(is_ident_start)
        {
            self.bump(); // quote
            let name = self.ident_text();
            self.push(TokKind::Lifetime, format!("'{name}"), line, start);
        } else {
            self.char_literal(line, start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_not_found_inside_strings_or_comments() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now() in a block /* nested */ comment */
            let s = "HashMap::new()";
            let r = r#"thread_rng "quoted" here"#;
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|i| *i == "HashMap").count(), 1);
        assert!(!ids.iter().any(|i| i == "thread_rng"));
        assert!(!ids.iter().any(|i| i == "Instant"));
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
    }

    #[test]
    fn raw_identifiers_normalize() {
        let ids = idents("let r#match = 1; let x = r#fn;");
        assert!(ids.contains(&"match".to_string()));
        assert!(ids.contains(&"fn".to_string()));
    }

    #[test]
    fn byte_and_raw_strings_are_single_literals() {
        let lexed = lex(r###"let a = b"bytes"; let b = br#"raw "b" # ok"#; let c = b'x';"###);
        let lits = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lits, 3);
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let src = "let x = 1; // audit:allow(determinism): reason\n// plain\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("audit:allow"));
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let lexed = lex("for i in 0..10 { let f = 1.5e-3; }");
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text == "1.5e-3"));
    }

    #[test]
    fn string_literals_keep_exact_text_and_content() {
        let lexed = lex("let a = \"eval\"; let b = r#\"raw\"#;");
        let lits: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .collect();
        assert_eq!(lits[0].text, "\"eval\"");
        assert_eq!(lits[0].str_content(), Some("eval"));
        assert_eq!(lits[1].text, "r#\"raw\"#");
        assert_eq!(lits[1].str_content(), None, "raw strings are not plain");
    }

    #[test]
    fn spans_partition_sources() {
        let src = "fn f<'a>(x: &'a str) -> u8 { let c = 'x'; b\"by\"; /* hi */ 0 } // t\n";
        let lexed = lex(src);
        let mut spans: Vec<(usize, usize)> = lexed
            .tokens
            .iter()
            .map(|t| (t.start, t.end))
            .chain(lexed.comments.iter().map(|c| (c.start, c.end)))
            .collect();
        spans.sort_unstable();
        let mut cursor = 0;
        for (s, e) in spans {
            assert!(s >= cursor, "overlap at byte {s}");
            assert!(
                src[cursor..s].chars().all(char::is_whitespace),
                "non-whitespace gap {:?}",
                &src[cursor..s]
            );
            cursor = e;
        }
        assert!(src[cursor..].chars().all(char::is_whitespace));
    }
}
