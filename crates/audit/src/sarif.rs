//! SARIF 2.1.0 output (`--format=sarif`), the interchange format code
//! hosts ingest for inline annotations.
//!
//! Deliberately minimal: one run, one tool, one result per diagnostic
//! with a `physicalLocation`. Rule metadata lists the nine policy rules
//! plus the two allow-bookkeeping rules so every emitted `ruleId`
//! resolves. SARIF requires `startLine >= 1`; file-level diagnostics
//! (line 0) are pinned to line 1.

use crate::diagnostics::Diagnostic;
use crate::rules::RULES;

/// Renders diagnostics as a SARIF 2.1.0 log.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::from(
        "{\n  \"version\": \"2.1.0\",\n  \
         \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \
         \"name\": \"datamime-audit\",\n          \"rules\": [",
    );
    let all_rules: Vec<&str> = RULES
        .iter()
        .copied()
        .chain(["allow-syntax", "unused-allow"])
        .collect();
    for (i, r) in all_rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n            {\"id\": ");
        json_str(&mut out, r);
        out.push('}');
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n        {\"ruleId\": ");
        json_str(&mut out, d.rule);
        out.push_str(", \"level\": \"error\", \"message\": {\"text\": ");
        json_str(&mut out, &d.message);
        out.push_str(
            "}, \"locations\": [{\"physicalLocation\": \
                      {\"artifactLocation\": {\"uri\": ",
        );
        json_str(&mut out, &d.file.display().to_string());
        out.push_str("}, \"region\": {\"startLine\": ");
        out.push_str(&d.line.max(1).to_string());
        out.push_str("}}}]}");
    }
    if !diags.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_structure_and_escaping() {
        let diags = vec![
            Diagnostic::new("wire-compat", "audit.wire.lock", 0, "lock is stale"),
            Diagnostic::new(
                "panic-safety",
                "crates/x/src/lib.rs",
                7,
                "`.unwrap()` with \"quotes\"",
            ),
        ];
        let s = to_sarif(&diags);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"datamime-audit\""));
        assert!(s.contains("\"ruleId\": \"wire-compat\""));
        // Line 0 diagnostics clamp to SARIF's 1-based minimum.
        assert!(s.contains("\"startLine\": 1"));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("\\\"quotes\\\""));
        // Every policy rule is declared in tool metadata.
        for r in RULES {
            assert!(s.contains(&format!("{{\"id\": \"{r}\"}}")), "{r}");
        }
    }

    #[test]
    fn empty_report_is_valid_with_no_results() {
        let s = to_sarif(&[]);
        assert!(s.contains("\"results\": []"));
    }
}
