//! Diagnostics: the violations the audit reports, with `file:line` spans
//! and two renderings (human-readable lines and `--format=json`).

use std::fmt;
use std::path::PathBuf;

/// One audit violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (`determinism`, `panic-safety`, `lock-order`,
    /// `layering`, `unsafe-forbidden`, `unused-allow`, `allow-syntax`).
    pub rule: &'static str,
    /// File the violation is in, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line (0 when the violation is file-level).
    pub line: u32,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(
        rule: &'static str,
        file: impl Into<PathBuf>,
        line: u32,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            file: file.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Renders diagnostics as a JSON array (one object per diagnostic with
/// `rule`, `file`, `line`, `message` fields), for `--format=json`.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"rule\":");
        push_json_str(&mut out, d.rule);
        out.push_str(",\"file\":");
        push_json_str(&mut out, &d.file.display().to_string());
        out.push_str(",\"line\":");
        out.push_str(&d.line.to_string());
        out.push_str(",\"message\":");
        push_json_str(&mut out, &d.message);
        out.push('}');
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_rendering_is_file_line_rule_message() {
        let d = Diagnostic::new("determinism", "crates/x/src/lib.rs", 12, "HashMap used");
        assert_eq!(
            d.to_string(),
            "crates/x/src/lib.rs:12: [determinism] HashMap used"
        );
    }

    #[test]
    fn json_escapes_and_structures() {
        let diags = vec![
            Diagnostic::new("layering", "a/Cargo.toml", 3, "dep \"x\" not allowed"),
            Diagnostic::new("lock-order", "b.rs", 9, "cycle: a -> b -> a"),
        ];
        let json = to_json(&diags);
        assert!(json.starts_with('['));
        assert!(json.contains("\"rule\":\"layering\""));
        assert!(json.contains("\\\"x\\\""));
        assert!(json.contains("\"line\":9"));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(to_json(&[]).trim(), "[]");
    }
}
