//! One scanned Rust source file: its token stream, its
//! `// audit:allow(rule): reason` escape hatches, and a mask of the
//! token ranges that only compile under `#[cfg(test)]` (audit rules skip
//! test-only code — tests may unwrap and use wall clocks freely).

use crate::lexer::{lex, Lexed, Token};
use std::path::{Path, PathBuf};

/// A parsed `// audit:allow(rule): reason` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule this allow suppresses.
    pub rule: String,
    /// The justification after the colon (never empty).
    pub reason: String,
    /// 1-based line of the comment.
    pub line: u32,
}

/// A malformed allow comment (missing rule, missing reason).
#[derive(Debug, Clone)]
pub struct BadAllow {
    /// Why the comment does not parse.
    pub problem: String,
    /// 1-based line of the comment.
    pub line: u32,
}

/// A lexed source file plus the audit-relevant views of it.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root (what diagnostics print).
    pub rel_path: PathBuf,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Well-formed allow comments.
    pub allows: Vec<Allow>,
    /// Malformed allow comments (reported by the `allow-syntax` rule).
    pub bad_allows: Vec<BadAllow>,
    /// `mask[i]` is true when token `i` is inside `#[cfg(test)]` code.
    test_mask: Vec<bool>,
}

impl SourceFile {
    /// Lexes `src` (already read from disk) into a source model.
    pub fn parse(rel_path: &Path, src: &str) -> Self {
        let Lexed { tokens, comments } = lex(src);
        let mut allows = Vec::new();
        let mut bad_allows = Vec::new();
        for c in &comments {
            match parse_allow(&c.text) {
                AllowParse::NotAnAllow => {}
                AllowParse::Ok { rule, reason } => allows.push(Allow {
                    rule,
                    reason,
                    line: c.line,
                }),
                AllowParse::Bad(problem) => bad_allows.push(BadAllow {
                    problem,
                    line: c.line,
                }),
            }
        }
        let test_mask = cfg_test_mask(&tokens);
        SourceFile {
            rel_path: rel_path.to_path_buf(),
            tokens,
            allows,
            bad_allows,
            test_mask,
        }
    }

    /// Whether token `i` is inside `#[cfg(test)]`-gated code.
    pub fn is_test_code(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }
}

enum AllowParse {
    NotAnAllow,
    Ok { rule: String, reason: String },
    Bad(String),
}

/// Parses `audit:allow(rule): reason` out of a comment body.
fn parse_allow(comment: &str) -> AllowParse {
    let body = comment.trim_start_matches(['/', '*', '!']).trim_start();
    let Some(rest) = body.strip_prefix("audit:allow") else {
        // Catch near-misses like `audit: allow` so a typo cannot silently
        // disable itself.
        if body.starts_with("audit:") && body.contains("allow") {
            return AllowParse::Bad(
                "malformed allow: expected `audit:allow(rule): reason`".to_string(),
            );
        }
        return AllowParse::NotAnAllow;
    };
    let Some(rest) = rest.strip_prefix('(') else {
        return AllowParse::Bad("missing `(rule)` after audit:allow".to_string());
    };
    let Some(close) = rest.find(')') else {
        return AllowParse::Bad("unclosed `(` in audit:allow".to_string());
    };
    let rule = rest[..close].trim().to_string();
    if rule.is_empty() {
        return AllowParse::Bad("empty rule name in audit:allow".to_string());
    }
    let tail = rest[close + 1..].trim_start();
    let Some(reason) = tail.strip_prefix(':') else {
        return AllowParse::Bad(format!("audit:allow({rule}) is missing `: reason`"));
    };
    let reason = reason.trim().trim_end_matches("*/").trim().to_string();
    if reason.is_empty() {
        return AllowParse::Bad(format!("audit:allow({rule}) has an empty reason"));
    }
    AllowParse::Ok { rule, reason }
}

/// Marks the token ranges belonging to `#[cfg(test)]`-gated items.
///
/// Recognizes `#[cfg(test)]` (and any `cfg(...)` whose argument list
/// mentions `test`, e.g. `#[cfg(all(test, unix))]`), then masks the
/// following item: subsequent attributes are skipped, and the item body
/// extends to its matching closing brace (or to the first `;` for
/// body-less items).
fn cfg_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(after_attr) = cfg_test_attr_end(tokens, i) {
            let start = i;
            let end = item_end(tokens, after_attr);
            for flag in mask.iter_mut().take(end).skip(start) {
                *flag = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
    mask
}

/// If tokens at `i` start a `#[cfg(…test…)]` attribute, returns the index
/// one past its closing `]`.
fn cfg_test_attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !(tokens.get(i)?.is_punct('#') && tokens.get(i + 1)?.is_punct('[')) {
        return None;
    }
    if !tokens.get(i + 2)?.is_ident("cfg") || !tokens.get(i + 3)?.is_punct('(') {
        return None;
    }
    let mut depth = 1usize;
    let mut saw_test = false;
    let mut j = i + 4;
    while j < tokens.len() && depth > 0 {
        let t = &tokens[j];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
        } else if t.is_ident("test") {
            saw_test = true;
        }
        j += 1;
    }
    if !saw_test || !tokens.get(j)?.is_punct(']') {
        return None;
    }
    Some(j + 1)
}

/// Returns the index one past the end of the item starting at `i`:
/// attributes are skipped, then everything up to the matching `}` of the
/// first top-level brace (or the first `;` before any brace).
fn item_end(tokens: &[Token], mut i: usize) -> usize {
    // Skip any further attributes (`#[test]`, `#[allow(…)]`, …).
    while i + 1 < tokens.len() && tokens[i].is_punct('#') && tokens[i + 1].is_punct('[') {
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < tokens.len() {
            if tokens[j].is_punct('[') {
                depth += 1;
            } else if tokens[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        i = (j + 1).min(tokens.len());
    }
    // Scan to the item's end.
    let mut j = i;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct(';') {
            return j + 1;
        }
        if t.is_punct('{') {
            let mut depth = 0usize;
            while j < tokens.len() {
                if tokens[j].is_punct('{') {
                    depth += 1;
                } else if tokens[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                j += 1;
            }
            return tokens.len();
        }
        j += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_src(src: &str) -> SourceFile {
        SourceFile::parse(Path::new("x.rs"), src)
    }

    #[test]
    fn allow_comments_parse_with_rule_and_reason() {
        let f =
            parse_src("let a = 1; // audit:allow(determinism): wall clock feeds telemetry only\n");
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, "determinism");
        assert_eq!(f.allows[0].line, 1);
        assert!(f.bad_allows.is_empty());
    }

    #[test]
    fn malformed_allows_are_reported_not_ignored() {
        for bad in [
            "// audit:allow(determinism)\n",        // no reason
            "// audit:allow: forgot the rule\n",    // no (rule)
            "// audit:allow(panic-safety):   \n",   // empty reason
            "// audit: allow(determinism): typo\n", // near-miss
        ] {
            let f = parse_src(bad);
            assert!(f.allows.is_empty(), "{bad:?} parsed as valid");
            assert_eq!(f.bad_allows.len(), 1, "{bad:?} not reported");
        }
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let f = parse_src(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n",
        );
        let unwrap_pos = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(f.is_test_code(unwrap_pos));
        let live = f.tokens.iter().position(|t| t.is_ident("live")).unwrap();
        let after = f.tokens.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(!f.is_test_code(live));
        assert!(!f.is_test_code(after));
    }

    #[test]
    fn cfg_all_test_and_item_attributes_are_masked() {
        let f = parse_src(
            "#[cfg(all(test, unix))]\n#[allow(dead_code)]\nfn helper() { y.unwrap(); }\n",
        );
        let unwrap_pos = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(f.is_test_code(unwrap_pos));
    }

    #[test]
    fn non_test_cfg_is_not_masked() {
        let f = parse_src("#[cfg(feature = \"faultinject\")]\nfn gated() { z.unwrap(); }\n");
        let unwrap_pos = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(!f.is_test_code(unwrap_pos));
    }
}
