//! Property tests for the hand-rolled lexer, run against every `.rs`
//! file in the workspace (including this one).
//!
//! Two invariants, checked per file:
//!
//! 1. **Spans partition the file.** Token and comment byte spans are
//!    strictly ordered, never overlap, and every byte between two spans
//!    (and before the first / after the last) is whitespace. Nothing in
//!    the file is silently skipped or double-lexed.
//! 2. **Round-trip identity.** Re-concatenating the gap bytes and span
//!    bytes in order reconstructs the original file exactly — the spans
//!    are honest about where each token starts and ends.
//!
//! A third, weaker check pins the token *text* to its span: for every
//! kind except identifiers (raw identifiers normalize `r#match` to
//! `match` on purpose), the token's `text` equals the source slice.

use datamime_audit::lexer::{lex, TokKind};
use std::path::{Path, PathBuf};

/// Collects every `.rs` file under the workspace's `crates/` tree,
/// including test and fixture sources — the lexer must cope with all of
/// them, fixtures most of all (they are deliberately weird).
fn workspace_rust_files() -> Vec<PathBuf> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/audit sits two levels below the root")
        .join("crates");
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(dir) = stack.pop() {
        let Ok(rd) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in rd.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Asserts both invariants for one source text; returns the number of
/// spans checked.
fn assert_partitions(path: &Path, src: &str) -> usize {
    let lexed = lex(src);
    let mut spans: Vec<(usize, usize, bool)> = lexed
        .tokens
        .iter()
        .map(|t| (t.start, t.end, t.kind == TokKind::Ident))
        .chain(lexed.comments.iter().map(|c| (c.start, c.end, true)))
        .collect();
    spans.sort_unstable();

    let mut rebuilt = String::with_capacity(src.len());
    let mut cursor = 0usize;
    for &(start, end, _) in &spans {
        assert!(
            start >= cursor,
            "{}: span [{start},{end}) overlaps previous span ending at {cursor}",
            path.display()
        );
        assert!(
            start <= end && end <= src.len(),
            "{}: span [{start},{end}) out of bounds (len {})",
            path.display(),
            src.len()
        );
        let gap = &src[cursor..start];
        assert!(
            gap.chars().all(char::is_whitespace),
            "{}: non-whitespace bytes {:?} between spans at [{cursor},{start})",
            path.display(),
            gap
        );
        rebuilt.push_str(gap);
        rebuilt.push_str(&src[start..end]);
        cursor = end;
    }
    let tail = &src[cursor..];
    assert!(
        tail.chars().all(char::is_whitespace),
        "{}: non-whitespace tail {:?}",
        path.display(),
        &tail[..tail.len().min(80)]
    );
    rebuilt.push_str(tail);
    assert_eq!(
        rebuilt,
        src,
        "{}: round-trip reconstruction differs",
        path.display()
    );

    // Text/span agreement (identifiers exempt: raw idents normalize).
    for t in &lexed.tokens {
        if t.kind != TokKind::Ident {
            assert_eq!(
                t.text,
                &src[t.start..t.end],
                "{}: token text diverges from its span at byte {}",
                path.display(),
                t.start
            );
        }
    }
    spans.len()
}

#[test]
fn spans_partition_every_workspace_source_file() {
    let files = workspace_rust_files();
    assert!(
        files.len() >= 50,
        "workspace sweep found only {} files",
        files.len()
    );
    let mut total_spans = 0usize;
    for path in &files {
        let src = std::fs::read_to_string(path).expect("source file reads");
        total_spans += assert_partitions(path, &src);
    }
    assert!(
        total_spans > 100_000,
        "suspiciously few tokens: {total_spans}"
    );
}

#[test]
fn adversarial_constructs_round_trip() {
    // Each entry is a construct that has historically confused
    // hand-rolled lexers: raw strings with fences, char-vs-lifetime,
    // nested block comments, prefixed literals, raw identifiers.
    for src in [
        "let a = r#\"raw \"quoted\" text\"#;",
        "let b = br##\"fence ## inside \"# still\"##;",
        "let c = 'x'; let d: &'static str = \"s\"; let e = '\\'';",
        "/* outer /* inner */ still outer */ fn f() {}",
        "let f = b'\\n'; let g = b\"bytes\\\"esc\";",
        "let r#match = 1; let h = r#fn;",
        "for i in 0..10 { let x = 1.5e-3 + 2.0E+7; let y = 0xFFu32; }",
        "let s = \"multi\nline\nstring\"; let t = 1;",
        "macro_rules! m { ($x:expr) => { $x + 'a' as u32 } }",
        "fn g<'a, T: Iterator<Item = &'a str>>(it: T) -> Option<&'a str> { it.last() }",
        "let u = c\"c-string\"; let v = cr#\"raw c \"q\" s\"#;",
        "let w = \"\"; let x = ''; let y = 1..=2;",
        "impl<'de> Visitor<'de> for V { fn visit(&self) -> &'de str { \"\" } }",
    ] {
        assert_partitions(Path::new("<adversarial>"), src);
    }
}
