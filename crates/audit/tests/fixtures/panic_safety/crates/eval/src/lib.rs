#![forbid(unsafe_code)]
//! Audit fixture: intentional panic-safety violations.

/// Panics three different ways on bad input.
pub fn brittle(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a + b > 100 {
        panic!("too large");
    }
    a + b
}
