#![forbid(unsafe_code)]
//! Audit fixture: a compliant crate, including one *used* allow.

use std::time::Instant;

/// Stamps an operator-facing log line.
pub fn log_stamp() -> Instant {
    // audit:allow(determinism): operator-facing log timestamp, never journaled
    Instant::now()
}
