#![forbid(unsafe_code)]
//! Audit fixture: a compliant crate, including one *used* allow.

fn observe(_sample: f64) {}

/// Journals a wall-clock duration on purpose — the allow below is what
/// keeps this fixture clean, and it must register as used.
pub fn log_stamp() {
    let started = std::time::Instant::now();
    // audit:allow(nondet-taint): fixture demonstrates a reasoned, used allow on a journaled duration
    observe(started.elapsed().as_secs_f64());
}
