//! Strict-path half: BTreeMap keeps iteration order deterministic.

use std::collections::BTreeMap;

pub fn histogram(xs: &[u32]) -> usize {
    let mut h: BTreeMap<u32, u32> = BTreeMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h.len()
}
