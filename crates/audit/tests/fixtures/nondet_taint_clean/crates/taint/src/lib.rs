#![forbid(unsafe_code)]
//! Audit fixture: the clean twin — the clock is displayed, never
//! journaled, and the strict half uses an ordered container.

mod strict;

fn observe(_sample: f64) {}

/// Times an operation for an operator-facing log line only.
pub fn measure(samples: &[f64]) -> String {
    let started = std::time::Instant::now();
    observe(samples.len() as f64);
    format!("{} ms", started.elapsed().as_millis())
}
