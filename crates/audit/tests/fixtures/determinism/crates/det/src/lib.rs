#![forbid(unsafe_code)]
//! Audit fixture: intentional determinism violations.

use std::collections::HashMap;
use std::time::Instant;

/// Iterates a randomized-order map and reads the wall clock.
pub fn hazard() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    let _t = Instant::now();
    m.len()
}
