//! Audit fixture: no `#![forbid(unsafe_code)]`, and an `unsafe` block.

/// Reads through a raw pointer.
pub fn peek(p: *const u32) -> u32 {
    unsafe { *p }
}
