#![forbid(unsafe_code)]
//! Audit fixture: allow comments that misfire.

/// Adds, under a pile of stale and broken allows.
pub fn tidy(a: u32, b: u32) -> u32 {
    // audit:allow(nondet-taint): stale — nothing below reads a clock
    let c = a.wrapping_add(b);
    // audit:allow(panic-safety)
    // audit:allow(no-such-rule): the rule name is a typo
    c
}
