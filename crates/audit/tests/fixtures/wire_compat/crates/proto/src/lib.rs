#![forbid(unsafe_code)]
//! Audit fixture: the `Retire` frame was added below WITHOUT bumping
//! `WIRE_REVISION` — exactly the regression the rule exists to catch.

pub const WIRE_REVISION: u32 = 1;

pub enum Frame {
    Hello,
    Data,
    Retire,
}

impl Frame {
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Hello => 1,
            Frame::Data => 2,
            Frame::Retire => 3,
        }
    }
}
