#![forbid(unsafe_code)]
//! Audit fixture: an intentional lock-order inversion.

use std::sync::Mutex;

/// Locks `a` then `b`.
pub fn ab(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let x = a.lock().unwrap();
    let y = b.lock().unwrap();
    *x + *y
}

/// Locks `b` then `a` — the inversion.
pub fn ba(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let y = b.lock().unwrap();
    let x = a.lock().unwrap();
    *x + *y
}
