#![forbid(unsafe_code)]
//! Audit fixture: the clean twin — results propagate with `?`, and the
//! one intentional discard carries a reasoned allow.

use std::fs::File;
use std::path::Path;

pub fn publish(f: &File, tmp: &Path, dst: &Path) -> std::io::Result<()> {
    f.sync_all()?;
    std::fs::rename(tmp, dst)?;
    // audit:allow(swallowed-result): best-effort cleanup of the staging file
    let _ = std::fs::remove_file(tmp);
    Ok(())
}
