//! Strict-path half: unordered containers are denied outright here.

use std::collections::HashMap;

pub fn histogram(xs: &[u32]) -> usize {
    let mut h: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h.len()
}
