#![forbid(unsafe_code)]
//! Audit fixture: wall-clock taint reaching a journaled sink, plus a
//! strict-path crate half that uses a denied container.

mod strict;

fn observe(_sample: f64) {}

/// Derives a "measurement" from the wall clock and journals it — the
/// taint flows through two bindings before hitting the sink.
pub fn measure() {
    let started = std::time::Instant::now();
    let elapsed = started.elapsed().as_secs_f64();
    observe(elapsed);
}
