#![forbid(unsafe_code)]
//! Audit fixture: the clean twin — `Retire` was added AND the revision
//! constant moved, and the lockfile was regenerated.

pub const WIRE_REVISION: u32 = 2;

pub enum Frame {
    Hello,
    Data,
    Retire,
}

impl Frame {
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Hello => 1,
            Frame::Data => 2,
            Frame::Retire => 3,
        }
    }
}
