#![forbid(unsafe_code)]
//! Audit fixture: a torn-write publisher — the handle is dropped
//! unsynced and the rename is never made durable.

use std::io::Write;
use std::path::Path;

pub fn publish(dst: &Path, data: &[u8]) -> std::io::Result<()> {
    let tmp = dst.with_extension("tmp");
    let mut out = std::fs::File::create(&tmp)?;
    out.write_all(data)?;
    std::fs::rename(&tmp, dst)?;
    Ok(())
}
