#![forbid(unsafe_code)]
//! Audit fixture: middle layer.
