#![forbid(unsafe_code)]
//! Audit fixture: top layer, reaching past `mid` straight to `base`.
