#![forbid(unsafe_code)]
//! Audit fixture: bottom layer.
