#![forbid(unsafe_code)]
//! Audit fixture: the full create-temp -> write -> fsync -> rename ->
//! dir-fsync publication protocol, done right.

use std::io::Write;
use std::path::Path;

pub fn publish(dst: &Path, data: &[u8]) -> std::io::Result<()> {
    let tmp = dst.with_extension("tmp");
    let mut out = std::fs::File::create(&tmp)?;
    out.write_all(data)?;
    out.sync_all()?;
    std::fs::rename(&tmp, dst)?;
    sync_dir(dst.parent().unwrap_or(Path::new(".")))?;
    Ok(())
}

/// Fsyncs a directory so a rename inside it survives a crash.
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}
