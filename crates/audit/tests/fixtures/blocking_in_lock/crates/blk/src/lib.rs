#![forbid(unsafe_code)]
//! Audit fixture: sleeping while a mutex guard is live.

use std::sync::Mutex;
use std::time::Duration;

pub fn tick(counter: &Mutex<u64>) {
    let mut held = counter.lock().unwrap();
    std::thread::sleep(Duration::from_millis(5));
    *held += 1;
}
