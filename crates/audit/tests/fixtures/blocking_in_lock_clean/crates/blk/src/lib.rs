#![forbid(unsafe_code)]
//! Audit fixture: the clean twin — the guard dies at the block close
//! before anything blocks.

use std::sync::Mutex;
use std::time::Duration;

pub fn tick(counter: &Mutex<u64>) {
    {
        let mut held = counter.lock().unwrap();
        *held += 1;
    }
    std::thread::sleep(Duration::from_millis(5));
}
