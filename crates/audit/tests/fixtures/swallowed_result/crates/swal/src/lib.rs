#![forbid(unsafe_code)]
//! Audit fixture: durability results dropped on the floor in all three
//! ways the rule knows about.

use std::fs::File;
use std::path::Path;

pub fn publish(f: &File, tmp: &Path, dst: &Path) {
    let _ = f.sync_all();
    std::fs::rename(tmp, dst).ok();
    f.sync_data();
}
