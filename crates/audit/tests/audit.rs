//! End-to-end audit runs: each fixture mini-workspace under
//! `tests/fixtures/` trips exactly its intended rule (and its clean
//! twin passes), the CLI reports violations with a non-zero exit in
//! every output format, the incremental cache round-trips, and — the
//! self-check — the live workspace passes with zero violations.

use datamime_audit::config::AuditConfig;
use datamime_audit::diagnostics::Diagnostic;
use datamime_audit::{run_check, run_check_with, CheckOptions};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn check_fixture(name: &str) -> Vec<Diagnostic> {
    let root = fixture_root(name);
    let cfg = AuditConfig::load(&root.join("audit.toml")).expect("fixture config loads");
    run_check(&root, &cfg)
        .expect("fixture scan succeeds")
        .diagnostics
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule).collect()
}

fn assert_clean(name: &str) {
    let diags = check_fixture(name);
    assert!(diags.is_empty(), "{name} should pass: {diags:?}");
}

#[test]
fn nondet_taint_fixture_flags_the_flow_and_the_strict_container() {
    let diags = check_fixture("nondet_taint");
    assert_eq!(rules_of(&diags), vec!["nondet-taint"; 4], "{diags:?}");
    // One flow diagnostic at the sink, naming source and sink…
    let flow: Vec<_> = diags
        .iter()
        .filter(|d| d.message.contains("flows into"))
        .collect();
    assert_eq!(flow.len(), 1, "{diags:?}");
    assert!(flow[0].message.contains("Instant::now"));
    assert!(flow[0].message.contains("`observe`"));
    assert!(flow[0].file.ends_with("crates/taint/src/lib.rs"));
    // …and three strict-path container mentions (use + type + new).
    let strict = diags
        .iter()
        .filter(|d| d.message.contains("strict deterministic path"))
        .count();
    assert_eq!(strict, 3, "{diags:?}");
}

#[test]
fn nondet_taint_clean_twin_passes() {
    // Same policy, but the clock feeds a log line (not the sink) and
    // the strict half uses BTreeMap.
    assert_clean("nondet_taint_clean");
}

#[test]
fn durability_fixture_flags_all_three_protocol_gaps() {
    let diags = check_fixture("durability");
    assert_eq!(
        rules_of(&diags),
        vec!["durability-protocol"; 3],
        "{diags:?}"
    );
    assert!(diags
        .iter()
        .any(|d| d.message.contains("without `sync_all`")));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("publishes `out` before it is fsynced")));
    assert!(diags.iter().any(|d| d.message.contains("directory fsync")));
}

#[test]
fn durability_clean_twin_passes() {
    // create-temp -> write -> sync_all -> rename -> sync_dir.
    assert_clean("durability_clean");
}

#[test]
fn swallowed_result_fixture_flags_every_discard_shape() {
    let diags = check_fixture("swallowed_result");
    assert_eq!(rules_of(&diags), vec!["swallowed-result"; 3], "{diags:?}");
    assert!(diags[0].message.contains("`let _ =`"), "{diags:?}");
    assert!(diags[1].message.contains("`.ok()`"), "{diags:?}");
    assert!(diags[2].message.contains("unread"), "{diags:?}");
}

#[test]
fn swallowed_result_clean_twin_passes_with_a_used_allow() {
    // `?` propagation plus one reasoned audit:allow on a best-effort
    // cleanup; an unused allow would itself be a violation.
    assert_clean("swallowed_result_clean");
}

#[test]
fn blocking_in_lock_fixture_flags_the_sleep_under_the_guard() {
    let diags = check_fixture("blocking_in_lock");
    assert_eq!(rules_of(&diags), vec!["blocking-in-lock"], "{diags:?}");
    assert!(diags[0].message.contains("`sleep`"));
    assert!(diags[0].message.contains("guard `held`"));
}

#[test]
fn blocking_in_lock_clean_twin_passes() {
    // The guard dies at its block close before the sleep.
    assert_clean("blocking_in_lock_clean");
}

#[test]
fn wire_compat_fixture_fails_a_kind_addition_without_a_revision_bump() {
    // The acceptance scenario: `Frame::Retire` exists in the source,
    // the committed lock predates it, and WIRE_REVISION never moved.
    let diags = check_fixture("wire_compat");
    assert_eq!(rules_of(&diags), vec!["wire-compat"], "{diags:?}");
    assert!(diags[0].message.contains("`Frame::Retire`"), "{diags:?}");
    assert!(diags[0].message.contains("without a revision bump"));
    assert_eq!(diags[0].line, 18, "points at the new match arm");
}

#[test]
fn wire_compat_clean_twin_passes_when_the_revision_moved_too() {
    assert_clean("wire_compat_clean");
}

#[test]
fn panic_safety_fixture_trips_only_panic_safety() {
    let diags = check_fixture("panic_safety");
    assert_eq!(rules_of(&diags), vec!["panic-safety"; 3], "{diags:?}");
    assert_eq!(diags[0].line, 6, "unwrap site");
    assert_eq!(diags[1].line, 7, "expect site");
    assert_eq!(diags[2].line, 9, "panic! site");
}

#[test]
fn lock_order_fixture_reports_the_inversion_once() {
    let diags = check_fixture("lock_order");
    assert_eq!(rules_of(&diags), vec!["lock-order"], "{diags:?}");
    assert!(diags[0].message.contains("`ab`"));
    assert!(diags[0].message.contains("`ba`"));
}

#[test]
fn layering_fixture_flags_the_skipped_layer() {
    let diags = check_fixture("layering");
    assert_eq!(rules_of(&diags), vec!["layering"], "{diags:?}");
    assert!(diags[0].file.ends_with("crates/top/Cargo.toml"));
    assert!(diags[0].message.contains("`top` may not depend on `base`"));
}

#[test]
fn unsafe_fixture_flags_missing_forbid_and_unsafe_use() {
    let diags = check_fixture("unsafe_missing");
    assert_eq!(rules_of(&diags), vec!["unsafe-forbidden"; 2], "{diags:?}");
    assert!(diags[0]
        .message
        .contains("missing `#![forbid(unsafe_code)]`"));
    assert!(diags[1].message.contains("`unsafe` is forbidden"));
}

#[test]
fn misfiring_allows_are_themselves_violations() {
    let diags = check_fixture("unused_allow");
    let mut rules = rules_of(&diags);
    rules.sort_unstable();
    assert_eq!(
        rules,
        vec!["allow-syntax", "allow-syntax", "unused-allow"],
        "{diags:?}"
    );
}

#[test]
fn clean_fixture_passes_and_its_allow_counts_as_used() {
    assert_clean("clean");
}

/// The facts cache: a cold run misses everything, a warm run hits
/// everything, and the diagnostics are byte-identical either way.
#[test]
fn cache_round_trips_and_reports_hits() {
    let root = fixture_root("swallowed_result");
    let cfg = AuditConfig::load(&root.join("audit.toml")).expect("config loads");
    let cache_dir = std::env::temp_dir().join(format!("audit-e2e-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let opts = CheckOptions {
        cache_dir: Some(cache_dir.clone()),
        jobs: None,
    };
    let cold = run_check_with(&root, &cfg, &opts).expect("cold run");
    assert_eq!(cold.cache_hits, 0, "cold run must miss");
    let warm = run_check_with(&root, &cfg, &opts).expect("warm run");
    assert_eq!(warm.cache_hits, warm.files_scanned, "warm run must hit");
    assert_eq!(
        cold.diagnostics, warm.diagnostics,
        "cache must not change results"
    );
    // A policy edit invalidates every entry (config text is in the key).
    let mut edited = cfg.clone();
    edited.source_text.push_str("\n# policy touched\n");
    let invalidated = run_check_with(&root, &edited, &opts).expect("post-edit run");
    assert_eq!(invalidated.cache_hits, 0, "config change must miss");
    let _ = std::fs::remove_dir_all(&cache_dir);
}

fn audit_cli(args: &[&str], root: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_datamime-audit"))
        .args(args)
        .arg("--root")
        .arg(root)
        .output()
        .expect("audit binary runs")
}

/// Golden-file checks: the machine formats are a contract for CI
/// consumers, so their exact bytes are pinned.
#[test]
fn json_output_matches_the_golden_file() {
    let out = audit_cli(
        &["check", "--no-cache", "--format=json"],
        &fixture_root("swallowed_result"),
    );
    assert_eq!(out.status.code(), Some(1));
    let golden = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/swallowed_result.json"),
    )
    .expect("golden json exists");
    assert_eq!(String::from_utf8_lossy(&out.stdout), golden);
}

#[test]
fn sarif_output_matches_the_golden_file() {
    let out = audit_cli(
        &["check", "--no-cache", "--format=sarif"],
        &fixture_root("swallowed_result"),
    );
    assert_eq!(out.status.code(), Some(1));
    let golden = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/swallowed_result.sarif"),
    )
    .expect("golden sarif exists");
    assert_eq!(String::from_utf8_lossy(&out.stdout), golden);
}

/// Copies a fixture into a scratch dir so a CLI test can mutate it.
fn copy_fixture(name: &str, tag: &str) -> PathBuf {
    let dst = std::env::temp_dir().join(format!("audit-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dst);
    fn walk(from: &Path, to: &Path) {
        std::fs::create_dir_all(to).expect("mkdir");
        for entry in std::fs::read_dir(from).expect("readdir") {
            let entry = entry.expect("entry");
            let target = to.join(entry.file_name());
            if entry.file_type().expect("ftype").is_dir() {
                walk(&entry.path(), &target);
            } else {
                std::fs::copy(entry.path(), &target).expect("copy");
            }
        }
    }
    walk(&fixture_root(name), &dst);
    dst
}

/// `wire-lock --update` must refuse to paper over an unbumped kind
/// change; `--force` is the explicit escape hatch.
#[test]
fn wire_lock_update_refuses_unbumped_kind_changes() {
    let scratch = copy_fixture("wire_compat", "wirelock");
    let refused = audit_cli(&["wire-lock", "--update"], &scratch);
    assert_eq!(refused.status.code(), Some(1), "unbumped update must fail");
    assert!(
        String::from_utf8_lossy(&refused.stderr).contains("refusing to re-baseline"),
        "{}",
        String::from_utf8_lossy(&refused.stderr)
    );
    let forced = audit_cli(&["wire-lock", "--update", "--force"], &scratch);
    assert_eq!(forced.status.code(), Some(0), "--force must succeed");
    let lock = std::fs::read_to_string(scratch.join("audit.wire.lock")).expect("lock rewritten");
    assert!(lock.contains("kind Frame::Retire = 3"), "{lock}");
    // After the forced re-baseline the audit is clean again.
    let clean = audit_cli(&["check", "--no-cache", "--quiet"], &scratch);
    assert_eq!(clean.status.code(), Some(0));
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn cli_exits_nonzero_on_a_fixture_and_zero_on_the_workspace() {
    let bad = audit_cli(
        &["check", "--no-cache", "--format=json"],
        &fixture_root("panic_safety"),
    );
    assert_eq!(bad.status.code(), Some(1), "fixture must fail the audit");
    let json = String::from_utf8_lossy(&bad.stdout);
    assert!(json.contains("\"rule\":\"panic-safety\""), "{json}");

    let good = audit_cli(&["check", "--no-cache"], &workspace_root());
    assert_eq!(
        good.status.code(),
        Some(0),
        "live workspace must pass: {}",
        String::from_utf8_lossy(&good.stdout)
    );
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/audit sits two levels below the root")
        .to_path_buf()
}

/// The self-check gate: the workspace this crate ships in must audit
/// clean under its own committed policy — all nine rules.
#[test]
fn live_workspace_audits_clean() {
    let root = workspace_root();
    let cfg = AuditConfig::load(&root.join("audit.toml")).expect("workspace audit.toml loads");
    let report = run_check(&root, &cfg).expect("workspace scan succeeds");
    assert!(
        report.diagnostics.is_empty(),
        "live workspace has audit violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the scan actually covered the workspace, and the policy
    // actually engages the new rule families.
    assert!(report.crates_scanned >= 10, "{}", report.crates_scanned);
    assert!(report.files_scanned >= 50, "{}", report.files_scanned);
    assert!(
        !cfg.durability.paths.is_empty(),
        "durability policy engaged"
    );
    assert!(
        !cfg.swallowed_result.paths.is_empty(),
        "swallowed-result engaged"
    );
    assert!(!cfg.wire_compat.files.is_empty(), "wire-compat engaged");
}
