//! End-to-end audit runs: each fixture mini-workspace under
//! `tests/fixtures/` trips exactly its intended rule, the CLI reports
//! violations with a non-zero exit, and — the self-check — the live
//! workspace passes with zero violations.

use datamime_audit::config::AuditConfig;
use datamime_audit::diagnostics::Diagnostic;
use datamime_audit::run_check;
use std::path::PathBuf;
use std::process::Command;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn check_fixture(name: &str) -> Vec<Diagnostic> {
    let root = fixture_root(name);
    let cfg = AuditConfig::load(&root.join("audit.toml")).expect("fixture config loads");
    run_check(&root, &cfg)
        .expect("fixture scan succeeds")
        .diagnostics
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn determinism_fixture_trips_only_determinism() {
    let diags = check_fixture("determinism");
    // `use … HashMap` + two `HashMap` in the body + one `Instant::now`.
    assert_eq!(rules_of(&diags), vec!["determinism"; 4], "{diags:?}");
    assert!(diags.iter().any(|d| d.message.contains("Instant::now")));
    assert!(diags
        .iter()
        .all(|d| d.file.ends_with("crates/det/src/lib.rs")));
}

#[test]
fn panic_safety_fixture_trips_only_panic_safety() {
    let diags = check_fixture("panic_safety");
    assert_eq!(rules_of(&diags), vec!["panic-safety"; 3], "{diags:?}");
    assert_eq!(diags[0].line, 6, "unwrap site");
    assert_eq!(diags[1].line, 7, "expect site");
    assert_eq!(diags[2].line, 9, "panic! site");
}

#[test]
fn lock_order_fixture_reports_the_inversion_once() {
    let diags = check_fixture("lock_order");
    assert_eq!(rules_of(&diags), vec!["lock-order"], "{diags:?}");
    assert!(diags[0].message.contains("`ab`"));
    assert!(diags[0].message.contains("`ba`"));
}

#[test]
fn layering_fixture_flags_the_skipped_layer() {
    let diags = check_fixture("layering");
    assert_eq!(rules_of(&diags), vec!["layering"], "{diags:?}");
    assert!(diags[0].file.ends_with("crates/top/Cargo.toml"));
    assert!(diags[0].message.contains("`top` may not depend on `base`"));
}

#[test]
fn unsafe_fixture_flags_missing_forbid_and_unsafe_use() {
    let diags = check_fixture("unsafe_missing");
    assert_eq!(rules_of(&diags), vec!["unsafe-forbidden"; 2], "{diags:?}");
    assert!(diags[0]
        .message
        .contains("missing `#![forbid(unsafe_code)]`"));
    assert!(diags[1].message.contains("`unsafe` is forbidden"));
}

#[test]
fn misfiring_allows_are_themselves_violations() {
    let diags = check_fixture("unused_allow");
    let mut rules = rules_of(&diags);
    rules.sort_unstable();
    assert_eq!(
        rules,
        vec!["allow-syntax", "allow-syntax", "unused-allow"],
        "{diags:?}"
    );
}

#[test]
fn clean_fixture_passes_and_its_allow_counts_as_used() {
    let diags = check_fixture("clean");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn cli_exits_nonzero_on_a_fixture_and_zero_on_the_workspace() {
    let bin = env!("CARGO_BIN_EXE_datamime-audit");
    let bad = Command::new(bin)
        .args(["check", "--root"])
        .arg(fixture_root("panic_safety"))
        .arg("--format=json")
        .output()
        .expect("audit binary runs");
    assert_eq!(bad.status.code(), Some(1), "fixture must fail the audit");
    let json = String::from_utf8_lossy(&bad.stdout);
    assert!(json.contains("\"rule\":\"panic-safety\""), "{json}");

    let good = Command::new(bin)
        .args(["check", "--root"])
        .arg(workspace_root())
        .output()
        .expect("audit binary runs");
    assert_eq!(
        good.status.code(),
        Some(0),
        "live workspace must pass: {}",
        String::from_utf8_lossy(&good.stdout)
    );
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/audit sits two levels below the root")
        .to_path_buf()
}

/// The self-check gate: the workspace this crate ships in must audit
/// clean under its own committed policy.
#[test]
fn live_workspace_audits_clean() {
    let root = workspace_root();
    let cfg = AuditConfig::load(&root.join("audit.toml")).expect("workspace audit.toml loads");
    let report = run_check(&root, &cfg).expect("workspace scan succeeds");
    assert!(
        report.diagnostics.is_empty(),
        "live workspace has audit violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the scan actually covered the workspace.
    assert!(report.crates_scanned >= 10, "{}", report.crates_scanned);
    assert!(report.files_scanned >= 50, "{}", report.files_scanned);
}
