//! Property-based tests of the statistical core: these invariants protect
//! the error model the whole search relies on.

use datamime_stats::dist::{Categorical, Distribution, Normal, Zipf};
use datamime_stats::emd::{
    curve_distance, curve_distance_iter, emd_area, emd_area_naive, emd_normalized, ks_statistic,
    ks_statistic_naive,
};
use datamime_stats::{Ecdf, Rng, Summary};
use proptest::prelude::*;

fn finite_samples(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..max_len)
}

fn nonneg_samples(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1e6, 1..max_len)
}

/// Samples with deliberate collisions: mixing a continuous range with small
/// integers makes duplicate values within one distribution — and exact ties
/// across the two distributions — common rather than measure-zero, which is
/// exactly where the merge-walk fast paths have to agree with the naive
/// evaluate-everywhere oracles.
fn tied_samples(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![-1e6f64..1e6, (-8i32..8).prop_map(f64::from)],
        1..max_len,
    )
}

proptest! {
    #[test]
    fn ecdf_is_monotone_and_bounded(samples in finite_samples(64), probe in -1e6f64..1e6) {
        let e = Ecdf::new(samples).unwrap();
        let y = e.eval(probe);
        prop_assert!((0.0..=1.0).contains(&y));
        prop_assert!(e.eval(probe + 1.0) >= y);
        prop_assert_eq!(e.eval(e.max()), 1.0);
    }

    #[test]
    fn ecdf_quantiles_are_monotone(samples in finite_samples(64), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let e = Ecdf::new(samples).unwrap();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(e.quantile(lo) <= e.quantile(hi));
    }

    #[test]
    fn emd_is_a_metric_on_samples(a in finite_samples(32), b in finite_samples(32), c in finite_samples(32)) {
        let (ea, eb, ec) = (Ecdf::new(a).unwrap(), Ecdf::new(b).unwrap(), Ecdf::new(c).unwrap());
        let ab = emd_area(&ea, &eb);
        // Symmetry.
        prop_assert!((ab - emd_area(&eb, &ea)).abs() < 1e-9 * (1.0 + ab));
        // Identity.
        prop_assert!(emd_area(&ea, &ea).abs() < 1e-9);
        // Non-negativity and triangle inequality.
        let ac = emd_area(&ea, &ec);
        let cb = emd_area(&ec, &eb);
        prop_assert!(ab >= 0.0);
        prop_assert!(ab <= ac + cb + 1e-6 * (1.0 + ab));
    }

    #[test]
    fn normalized_emd_bounded_for_nonnegative_metrics(a in nonneg_samples(32), b in nonneg_samples(32)) {
        let d = emd_normalized(&Ecdf::new(a).unwrap(), &Ecdf::new(b).unwrap());
        prop_assert!((0.0..=1.0 + 1e-9).contains(&d), "d = {d}");
    }

    #[test]
    fn ks_statistic_bounded(a in finite_samples(32), b in finite_samples(32)) {
        let d = ks_statistic(&Ecdf::new(a).unwrap(), &Ecdf::new(b).unwrap());
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn curve_distance_symmetric_and_bounded(pairs in prop::collection::vec((0.0f64..1e3, 0.0f64..1e3), 1..16)) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let d = curve_distance(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&d));
        prop_assert!((d - curve_distance(&b, &a)).abs() < 1e-12);
    }

    /// The merge-walk `emd_area` must reproduce the naive merged-window
    /// integration bit for bit (0 ULP) — this is the gate that lets the
    /// search hot path use the allocation-free version while the definition
    /// stays readable in `emd_area_naive`.
    #[test]
    fn emd_merge_walk_matches_naive_to_the_bit(a in tied_samples(64), b in tied_samples(64)) {
        let (ea, eb) = (Ecdf::new(a).unwrap(), Ecdf::new(b).unwrap());
        prop_assert_eq!(emd_area(&ea, &eb).to_bits(), emd_area_naive(&ea, &eb).to_bits());
        prop_assert_eq!(emd_area(&eb, &ea).to_bits(), emd_area_naive(&eb, &ea).to_bits());
    }

    /// Same 0-ULP gate for the Kolmogorov–Smirnov merge walk.
    #[test]
    fn ks_merge_walk_matches_naive_to_the_bit(a in tied_samples(64), b in tied_samples(64)) {
        let (ea, eb) = (Ecdf::new(a).unwrap(), Ecdf::new(b).unwrap());
        prop_assert_eq!(ks_statistic(&ea, &eb).to_bits(), ks_statistic_naive(&ea, &eb).to_bits());
    }

    /// And for the iterator form of `curve_distance`, which the error model
    /// uses to compare curves straight off profile rows.
    #[test]
    fn curve_distance_iter_matches_slices_to_the_bit(
        pairs in prop::collection::vec((0.0f64..1e3, 0.0f64..1e3), 1..16),
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let by_iter = curve_distance_iter(pairs.iter().map(|p| p.0), pairs.iter().map(|p| p.1));
        prop_assert_eq!(by_iter.to_bits(), curve_distance(&a, &b).to_bits());
    }

    #[test]
    fn rng_below_is_always_in_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = Rng::with_seed(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = Rng::with_seed(seed);
        let mut b = Rng::with_seed(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn normal_samples_are_finite(mu in -1e3f64..1e3, sigma in 0.0f64..1e3, seed in any::<u64>()) {
        let d = Normal::new(mu, sigma).unwrap();
        let mut rng = Rng::with_seed(seed);
        for _ in 0..64 {
            prop_assert!(d.sample(&mut rng).is_finite());
        }
    }

    #[test]
    fn zipf_ranks_in_range(n in 1usize..10_000, s in 0.0f64..2.0, seed in any::<u64>()) {
        let z = Zipf::new(n, s).unwrap();
        let mut rng = Rng::with_seed(seed);
        for _ in 0..64 {
            prop_assert!(z.sample_rank(&mut rng) < n);
        }
    }

    #[test]
    fn categorical_indices_in_range(weights in prop::collection::vec(0.0f64..100.0, 1..16), seed in any::<u64>()) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let c = Categorical::new(&weights).unwrap();
        let mut rng = Rng::with_seed(seed);
        for _ in 0..64 {
            prop_assert!(c.sample_index(&mut rng) < weights.len());
        }
    }

    #[test]
    fn summary_matches_naive_computation(samples in finite_samples(64)) {
        let mut s = Summary::new();
        for &x in &samples {
            s.add(x);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let scale = 1.0 + mean.abs();
        prop_assert!((s.mean() - mean).abs() / scale < 1e-9);
        prop_assert_eq!(s.count(), samples.len() as u64);
        prop_assert_eq!(s.min(), samples.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn shuffle_preserves_multiset(mut v in prop::collection::vec(0u32..100, 0..64), seed in any::<u64>()) {
        let mut sorted_before = v.clone();
        sorted_before.sort_unstable();
        Rng::with_seed(seed).shuffle(&mut v);
        v.sort_unstable();
        prop_assert_eq!(v, sorted_before);
    }
}
