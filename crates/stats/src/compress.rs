//! Compressibility estimation for memory snapshots.
//!
//! The paper's Sec. III-D sketches a future-work extension: to stay
//! representative for value-dependent techniques like cache/memory
//! compression, Datamime could profile the *compression ratio* of the
//! target's memory snapshots and have the dataset generator produce
//! similarly compressible data. This module provides the measurement side:
//! a Shannon byte-entropy estimate and a small LZ-style compressed-size
//! estimator (a dictionary coder's match model without the bit-packing).

/// Shannon entropy of the byte histogram, in bits per byte (`0..=8`).
///
/// # Examples
///
/// ```
/// use datamime_stats::compress::byte_entropy;
/// assert_eq!(byte_entropy(&[7u8; 1024]), 0.0);
/// let ramp: Vec<u8> = (0..=255).collect();
/// assert!((byte_entropy(&ramp) - 8.0).abs() < 1e-9);
/// ```
pub fn byte_entropy(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in data {
        counts[b as usize] += 1;
    }
    let n = data.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Estimates the compression ratio (`compressed / original`, in `(0, 1]`)
/// a dictionary coder would achieve, using an LZ77-style greedy match
/// model with a hash over 4-byte sequences.
///
/// Literals cost the histogram entropy per byte; matches cost ~3 bytes of
/// offset/length encoding. The estimate tracks real LZ compressors well
/// enough to *rank* datasets by compressibility, which is all the search
/// needs.
pub fn estimate_compression_ratio(data: &[u8]) -> f64 {
    if data.len() < 8 {
        return 1.0;
    }
    const MIN_MATCH: usize = 4;
    const TABLE_BITS: usize = 14;
    let mut table = vec![usize::MAX; 1 << TABLE_BITS];
    let hash = |w: &[u8]| -> usize {
        let v = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
        ((v.wrapping_mul(0x9E37_79B1)) >> (32 - TABLE_BITS as u32)) as usize
    };

    let mut i = 0usize;
    let mut literal_bytes = 0usize;
    let mut match_tokens = 0usize;
    while i + MIN_MATCH <= data.len() {
        let h = hash(&data[i..i + 4]);
        let cand = table[h];
        table[h] = i;
        if cand != usize::MAX && cand < i && data[cand..cand + 4] == data[i..i + 4] {
            // Extend the match greedily.
            // Overlapping matches are allowed (that is how LZ encodes
            // runs), so the source index may run past the match start.
            let mut len = 4;
            while i + len < data.len() && data[cand + len] == data[i + len] && len < 4096 {
                len += 1;
            }
            match_tokens += 1;
            i += len;
        } else {
            literal_bytes += 1;
            i += 1;
        }
    }
    literal_bytes += data.len() - i;

    // Literals cost their entropy; each match token costs ~3 bytes.
    let literal_cost = literal_bytes as f64 * (byte_entropy(data) / 8.0).max(0.05);
    let match_cost = match_tokens as f64 * 3.0;
    ((literal_cost + match_cost) / data.len() as f64).clamp(0.01, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = Rng::with_seed(seed);
        (0..n).map(|_| (rng.u64() & 0xFF) as u8).collect()
    }

    #[test]
    fn entropy_bounds() {
        assert_eq!(byte_entropy(&[]), 0.0);
        assert_eq!(byte_entropy(&[42; 4096]), 0.0);
        let e = byte_entropy(&random_bytes(1 << 16, 1));
        assert!(e > 7.9, "random data entropy {e}");
    }

    #[test]
    fn constant_data_compresses_to_almost_nothing() {
        let r = estimate_compression_ratio(&[0u8; 1 << 16]);
        assert!(r < 0.1, "ratio {r}");
    }

    #[test]
    fn random_data_is_incompressible() {
        let r = estimate_compression_ratio(&random_bytes(1 << 16, 2));
        assert!(r > 0.9, "ratio {r}");
    }

    #[test]
    fn ratio_is_monotone_in_redundancy() {
        // Mix random and repeated chunks at varying fractions.
        let mut prev = 0.0;
        for k in 0..=4 {
            let mut data = Vec::new();
            let mut rng = Rng::with_seed(3);
            for i in 0..256 {
                if (i % 4) < k {
                    data.extend_from_slice(b"the quick brown fox jumps over! ");
                } else {
                    data.extend((0..32).map(|_| (rng.u64() & 0xFF) as u8));
                }
            }
            let r = estimate_compression_ratio(&data);
            if k > 0 {
                assert!(r <= prev + 0.02, "k={k}: {r} vs prev {prev}");
            }
            prev = r;
        }
    }

    #[test]
    fn tiny_inputs_are_ratio_one() {
        assert_eq!(estimate_compression_ratio(b"abc"), 1.0);
    }

    #[test]
    fn text_like_data_lands_in_the_middle() {
        let text =
            b"SELECT name, value FROM metrics WHERE host = 'web-42' ORDER BY ts; ".repeat(64);
        let r = estimate_compression_ratio(&text);
        assert!(r < 0.5, "repetitive text ratio {r}");
    }
}
