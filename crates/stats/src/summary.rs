//! Summary statistics and fixed-bin histograms for metric samples.

use std::fmt;

/// Streaming summary statistics (Welford's algorithm): count, mean,
/// variance, min, max.
///
/// # Examples
///
/// ```
/// use datamime_stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.add(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`0` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (`0` for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.stddev(),
            self.min(),
            self.max()
        )
    }
}

/// A histogram with fixed-width bins over `[lo, hi)`, with overflow and
/// underflow captured in the edge bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins covering `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or the interval is empty/non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid interval"
        );
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Records an observation; out-of-range values land in the edge bins.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = if t < 0.0 {
            0
        } else {
            ((t * bins as f64) as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of observations in each bin (all zeros when empty).
    pub fn density(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Center value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of bounds");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mean_and_variance() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 4.0);
        assert_eq!(s.stddev(), 2.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_behaviour() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.5);
        h.add(9.99);
        h.add(-5.0); // underflow -> bin 0
        h.add(20.0); // overflow -> last bin
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn histogram_density_sums_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for i in 0..100 {
            h.add(i as f64 / 100.0);
        }
        let sum: f64 = h.density().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }
}
