//! Empirical cumulative distribution functions.
//!
//! The Datamime profiler records entire *distributions* of each metric (one
//! sample per 20 M-cycle interval), and the error model compares the
//! resulting eCDFs. This module provides the eCDF type those pieces share.

use std::fmt;

/// An empirical cumulative distribution function over `f64` samples.
///
/// Construction sorts the samples once; evaluation is `O(log n)`.
///
/// # Examples
///
/// ```
/// use datamime_stats::Ecdf;
///
/// let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(e.eval(0.0), 0.0);
/// assert_eq!(e.eval(2.0), 0.5);
/// assert_eq!(e.eval(10.0), 1.0);
/// assert_eq!(e.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

/// Error returned when an eCDF cannot be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmptySamplesError;

impl fmt::Display for EmptySamplesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot build an eCDF from zero samples or non-finite values"
        )
    }
}

impl std::error::Error for EmptySamplesError {}

impl Ecdf {
    /// Builds an eCDF from samples, taking ownership to avoid a copy.
    ///
    /// # Errors
    ///
    /// Returns an error if `samples` is empty or contains non-finite values.
    pub fn new(mut samples: Vec<f64>) -> Result<Self, EmptySamplesError> {
        if samples.is_empty() || samples.iter().any(|x| !x.is_finite()) {
            return Err(EmptySamplesError);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ok(Ecdf { sorted: samples })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the eCDF has no samples (never true after
    /// successful construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates `P(X <= x)`.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.sorted.len();
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / n as f64
    }

    /// Returns the `q`-quantile for `q` in `[0, 1]` (nearest-rank method).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// The sorted samples backing this eCDF.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Iterates over `(x, F(x))` step points, useful for plotting/export.
    pub fn iter_steps(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &x)| (x, (i + 1) as f64 / n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_nan() {
        assert!(Ecdf::new(vec![]).is_err());
        assert!(Ecdf::new(vec![1.0, f64::NAN]).is_err());
        assert!(Ecdf::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn eval_is_monotone_step() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert!((e.eval(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((e.eval(2.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.eval(3.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new((1..=100).map(f64::from).collect()).unwrap();
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(0.99), 99.0);
        assert_eq!(e.quantile(1.0), 100.0);
    }

    #[test]
    fn summary_stats() {
        let e = Ecdf::new(vec![2.0, 4.0, 6.0]).unwrap();
        assert_eq!(e.min(), 2.0);
        assert_eq!(e.max(), 6.0);
        assert_eq!(e.mean(), 4.0);
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn steps_end_at_one() {
        let e = Ecdf::new(vec![1.0, 5.0]).unwrap();
        let steps: Vec<_> = e.iter_steps().collect();
        assert_eq!(steps, vec![(1.0, 0.5), (5.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_out_of_range_panics() {
        Ecdf::new(vec![1.0]).unwrap().quantile(1.5);
    }
}
