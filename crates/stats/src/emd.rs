//! Earth Mover's Distance between one-dimensional sample distributions.
//!
//! Datamime quantifies the mismatch between a synthetic benchmark's profile
//! and the target workload's profile as the sum of pairwise EMDs over the
//! ten Table-I metrics (Eq. 1 of the paper). For one-dimensional samples
//! with uniform weights, the EMD equals the area between the two CDFs; the
//! paper additionally normalizes both axes to `[0, 1]` (Sec. V-D) so each
//! metric contributes comparably.

use crate::ecdf::Ecdf;

/// Computes the raw (un-normalized) EMD between two eCDFs: the area between
/// their CDF curves, `∫ |F(x) − G(x)| dx`.
///
/// This is the merge-walk fast path: one linear pass over the two sorted
/// sample arrays (which [`Ecdf::new`] sorted once, at construction), with no
/// allocation and no binary searches. The search loop calls it ten times per
/// candidate — once per Table-I metric — against target eCDFs built once per
/// search, so the comparison itself must be cheap. It is bit-identical
/// (0 ULP) to [`emd_area_naive`], the direct transcription of the
/// definition; `crates/stats/tests/properties.rs` asserts `to_bits`
/// equality on random inputs.
///
/// # Examples
///
/// ```
/// use datamime_stats::{Ecdf, emd::emd_area};
/// let a = Ecdf::new(vec![0.0, 1.0]).unwrap();
/// let b = Ecdf::new(vec![1.0, 2.0]).unwrap();
/// assert!((emd_area(&a, &b) - 1.0).abs() < 1e-12);
/// ```
pub fn emd_area(a: &Ecdf, b: &Ecdf) -> f64 {
    let xs_a = a.samples();
    let xs_b = b.samples();
    // Non-empty by Ecdf construction.
    let (n, m) = (xs_a.len() as f64, xs_b.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut area = 0.0;
    let mut x0 = xs_a[0].min(xs_b[0]);
    loop {
        // Consume every sample equal to the current breakpoint so that
        // `i`/`j` equal the partition points `#{x <= x0}` — the same counts
        // `Ecdf::eval` computes by binary search. Between breakpoints both
        // CDFs are constant, so each distinct-value gap contributes one
        // rectangle, in ascending order — the identical term sequence the
        // naive merged-window integration produces, which is what makes the
        // two implementations agree to the last bit.
        while i < xs_a.len() && xs_a[i] == x0 {
            i += 1;
        }
        while j < xs_b.len() && xs_b[j] == x0 {
            j += 1;
        }
        let x1 = match (xs_a.get(i), xs_b.get(j)) {
            (Some(&u), Some(&v)) => u.min(v),
            (Some(&u), None) => u,
            (None, Some(&v)) => v,
            (None, None) => break,
        };
        area += ((i as f64 / n) - (j as f64 / m)).abs() * (x1 - x0);
        x0 = x1;
    }
    area
}

/// Reference implementation of [`emd_area`]: materialize the merged
/// breakpoint list, then integrate the step-function difference window by
/// window, evaluating both CDFs by binary search at every breakpoint.
///
/// This is the shape the definition suggests — and what `emd_area` was
/// before the merge-walk rewrite. It allocates a merged `Vec` and performs
/// `O((n+m) log)` work per comparison, so the hot path no longer uses it;
/// it survives as the oracle the 0-ULP equivalence property test compares
/// against, per the hot-path rules in docs/PERFORMANCE.md.
pub fn emd_area_naive(a: &Ecdf, b: &Ecdf) -> f64 {
    let xs_a = a.samples();
    let xs_b = b.samples();
    let mut merged: Vec<f64> = Vec::with_capacity(xs_a.len() + xs_b.len());
    let (mut i, mut j) = (0, 0);
    while i < xs_a.len() && j < xs_b.len() {
        if xs_a[i] <= xs_b[j] {
            merged.push(xs_a[i]);
            i += 1;
        } else {
            merged.push(xs_b[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&xs_a[i..]);
    merged.extend_from_slice(&xs_b[j..]);

    let mut area = 0.0;
    for w in merged.windows(2) {
        let (x0, x1) = (w[0], w[1]);
        if x1 > x0 {
            // Between consecutive breakpoints, both CDFs are constant; evaluate at x0.
            area += (a.eval(x0) - b.eval(x0)).abs() * (x1 - x0);
        }
    }
    area
}

/// Computes the paper's *normalized* EMD: both axes are normalized to
/// `[0, 1]` by dividing sample values by the maximum observed across both
/// distributions (the y-axis of a CDF is already in `[0, 1]`).
///
/// A value of `0.23` means the area between the two normalized CDFs is 23%
/// of the unit square — matching the example the paper gives for `xapian`'s
/// ICache-MPKI plot.
///
/// Degenerate cases: if both distributions are identically zero the distance
/// is `0`; if only the maximum is zero on one side, the scale falls back to
/// the joint maximum (which is then positive).
pub fn emd_normalized(a: &Ecdf, b: &Ecdf) -> f64 {
    let scale = a.max().abs().max(b.max().abs());
    if scale <= 0.0 {
        // Both distributions are all-zero (non-negative metrics): identical.
        return 0.0;
    }
    emd_area(a, b) / scale
}

/// Normalized distance between two *curves* sampled on the same grid, used
/// for the LLC-MPKI-vs-cache-size and IPC-vs-cache-size curve metrics
/// (Table I, "Cache Sensitivity").
///
/// Defined as the mean absolute difference between the curves divided by the
/// maximum absolute value observed on either curve, which mirrors the
/// normalized-area definition used for eCDF metrics and likewise lies in
/// `[0, 1]` for non-negative curves.
///
/// # Panics
///
/// Panics if the curves have different lengths or are empty.
pub fn curve_distance(a: &[f64], b: &[f64]) -> f64 {
    curve_distance_iter(a.iter().copied(), b.iter().copied())
}

/// [`curve_distance`] over iterators, so callers holding curves in richer
/// structures (e.g. `core`'s `CurvePoint` rows) can compare them without
/// collecting y-values into temporary `Vec`s first. Two passes are made, so
/// the iterators must be `Clone`; both passes visit elements in the same
/// order as the slice version, keeping the result bit-identical to it.
///
/// # Panics
///
/// Panics if the curves have different lengths or are empty.
pub fn curve_distance_iter(
    a: impl Iterator<Item = f64> + Clone,
    b: impl Iterator<Item = f64> + Clone,
) -> f64 {
    let scale = a
        .clone()
        .chain(b.clone())
        .fold(0.0f64, |m, x| m.max(x.abs()));
    let (mut sum, mut n) = (0.0f64, 0usize);
    let (mut ia, mut ib) = (a, b);
    loop {
        match (ia.next(), ib.next()) {
            (Some(x), Some(y)) => {
                sum += (x - y).abs();
                n += 1;
            }
            (None, None) => break,
            // audit:allow(panic-safety): mismatched grids are a caller bug; the documented panic mirrors the slice API's assert
            _ => panic!("curves must share a grid"),
        }
    }
    assert!(n > 0, "curves must be non-empty");
    if scale <= 0.0 {
        return 0.0;
    }
    sum / n as f64 / scale
}

/// The two-sample Kolmogorov–Smirnov statistic, `max_x |F(x) − G(x)|`.
///
/// Provided as the alternative distribution distance the paper mentions
/// (Sec. III-C cites Kolmogorov–Smirnov as a viable alternative to EMD);
/// the `ablation_distance` bench compares search quality under both.
///
/// Like [`emd_area`], this is a merge walk over the two pre-sorted sample
/// arrays: allocation-free, one pass, and bit-identical to the
/// evaluate-at-every-sample reference [`ks_statistic_naive`] (the candidate
/// values at duplicate samples repeat, and `|·|` maps every candidate to a
/// non-negative with `+0.0` sign, so the running `max` is order-insensitive).
pub fn ks_statistic(a: &Ecdf, b: &Ecdf) -> f64 {
    let xs_a = a.samples();
    let xs_b = b.samples();
    let (n, m) = (xs_a.len() as f64, xs_b.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    loop {
        let x = match (xs_a.get(i), xs_b.get(j)) {
            (Some(&u), Some(&v)) => u.min(v),
            (Some(&u), None) => u,
            (None, Some(&v)) => v,
            (None, None) => break,
        };
        while i < xs_a.len() && xs_a[i] == x {
            i += 1;
        }
        while j < xs_b.len() && xs_b[j] == x {
            j += 1;
        }
        d = d.max(((i as f64 / n) - (j as f64 / m)).abs());
    }
    d
}

/// Reference implementation of [`ks_statistic`]: evaluate both CDFs by
/// binary search at every sample of both distributions and take the largest
/// gap. Kept as the oracle for the 0-ULP equivalence property test; the hot
/// path uses the merge walk.
pub fn ks_statistic_naive(a: &Ecdf, b: &Ecdf) -> f64 {
    let mut d: f64 = 0.0;
    for &x in a.samples().iter().chain(b.samples()) {
        d = d.max((a.eval(x) - b.eval(x)).abs());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ecdf(v: &[f64]) -> Ecdf {
        Ecdf::new(v.to_vec()).unwrap()
    }

    #[test]
    fn identical_distributions_have_zero_emd() {
        let a = ecdf(&[1.0, 2.0, 3.0]);
        assert_eq!(emd_area(&a, &a), 0.0);
        assert_eq!(emd_normalized(&a, &a), 0.0);
        assert_eq!(ks_statistic(&a, &a), 0.0);
    }

    #[test]
    fn point_masses_distance_is_separation() {
        let a = ecdf(&[0.0]);
        let b = ecdf(&[3.0]);
        assert!((emd_area(&a, &b) - 3.0).abs() < 1e-12);
        // Normalized by max(|3|) = 3 -> 1.0, the maximum possible.
        assert!((emd_normalized(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn emd_is_symmetric() {
        let a = ecdf(&[0.0, 1.0, 2.0, 7.0]);
        let b = ecdf(&[0.5, 0.5, 3.0]);
        assert!((emd_area(&a, &b) - emd_area(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn shifted_uniform_emd_equals_shift() {
        let a: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 0.5).collect();
        let d = emd_area(&ecdf(&a), &ecdf(&b));
        assert!((d - 0.5).abs() < 1e-9, "d = {d}");
    }

    #[test]
    fn triangle_inequality_holds_on_examples() {
        let a = ecdf(&[0.0, 1.0]);
        let b = ecdf(&[2.0, 3.0]);
        let c = ecdf(&[1.0, 2.0]);
        let ab = emd_area(&a, &b);
        let ac = emd_area(&a, &c);
        let cb = emd_area(&c, &b);
        assert!(ab <= ac + cb + 1e-12);
    }

    #[test]
    fn normalized_emd_in_unit_interval() {
        let a = ecdf(&[0.0, 5.0, 10.0]);
        let b = ecdf(&[1.0, 2.0, 9.0]);
        let d = emd_normalized(&a, &b);
        assert!((0.0..=1.0).contains(&d), "d = {d}");
    }

    #[test]
    fn all_zero_distributions_are_identical() {
        let a = ecdf(&[0.0, 0.0]);
        let b = ecdf(&[0.0]);
        assert_eq!(emd_normalized(&a, &b), 0.0);
    }

    #[test]
    fn curve_distance_basics() {
        assert_eq!(curve_distance(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        let d = curve_distance(&[0.0, 0.0], &[1.0, 1.0]);
        assert!((d - 1.0).abs() < 1e-12);
        let d = curve_distance(&[2.0, 2.0], &[1.0, 1.0]);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "curves must share a grid")]
    fn curve_distance_mismatched_lengths_panics() {
        curve_distance(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn ks_statistic_disjoint_is_one() {
        let a = ecdf(&[0.0, 1.0]);
        let b = ecdf(&[10.0, 11.0]);
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
    }
}
