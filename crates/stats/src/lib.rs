//! Statistical foundations for the Datamime reproduction.
//!
//! This crate provides the deterministic randomness and distribution
//! machinery shared by every other crate in the workspace:
//!
//! - [`Rng`]: a seedable, platform-stable xoshiro256\*\* generator;
//! - [`dist`]: parametric distributions (normal, generalized Pareto, Zipf,
//!   categorical, ...) used by dataset generators and load generators;
//! - [`Ecdf`]: empirical CDFs over profiled metric samples;
//! - [`emd`]: the Earth Mover's Distance error model from the paper
//!   (normalized area between CDFs) plus a Kolmogorov–Smirnov alternative;
//! - [`Summary`] and [`Histogram`]: streaming summaries for counters.
//!
//! # Examples
//!
//! Measure how far apart two sampled metric distributions are, exactly the
//! way Datamime's error model does:
//!
//! ```
//! use datamime_stats::{Rng, Ecdf, emd::emd_normalized, dist::{Distribution, Normal}};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng::with_seed(1);
//! let target = Normal::new(1.0, 0.1)?;
//! let synth = Normal::new(1.2, 0.1)?;
//! let a = Ecdf::new((0..500).map(|_| target.sample(&mut rng)).collect())?;
//! let b = Ecdf::new((0..500).map(|_| synth.sample(&mut rng)).collect())?;
//! let err = emd_normalized(&a, &b);
//! assert!(err > 0.05 && err < 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
pub mod dist;
mod ecdf;
pub mod emd;
mod rng;
mod summary;

pub use ecdf::{Ecdf, EmptySamplesError};
pub use rng::Rng;
pub use summary::{Histogram, Summary};
