//! Probability distributions used by dataset generators and load generators.
//!
//! The paper's dataset generators draw key/value sizes, document lengths,
//! query popularities, inter-arrival times, and so on from parameterized
//! distributions; its *target* datasets use different families (e.g.
//! generalized Pareto value sizes for the Facebook-like memcached dataset).
//! This module implements all of them on top of the crate's deterministic
//! [`Rng`].
//!
//! # Examples
//!
//! ```
//! use datamime_stats::{Rng, dist::{Distribution, Normal}};
//!
//! let mut rng = Rng::with_seed(1);
//! let d = Normal::new(100.0, 15.0).unwrap();
//! let x = d.sample(&mut rng);
//! assert!(x.is_finite());
//! ```

use crate::rng::Rng;
use std::fmt;

/// A real-valued probability distribution that can be sampled.
///
/// All distributions in this module are deterministic given the [`Rng`]
/// stream, cheap to sample, and validated at construction time so that
/// sampling itself never fails.
pub trait Distribution: fmt::Debug {
    /// Draws one sample.
    fn sample(&self, rng: &mut Rng) -> f64;

    /// The distribution's mean, if finite.
    fn mean(&self) -> Option<f64> {
        None
    }
}

/// Error returned when distribution parameters are invalid.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidParamsError {
    what: String,
}

impl InvalidParamsError {
    fn new(what: impl Into<String>) -> Self {
        InvalidParamsError { what: what.into() }
    }
}

impl fmt::Display for InvalidParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameters: {}", self.what)
    }
}

impl std::error::Error for InvalidParamsError {}

/// The uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the bounds are not finite or `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, InvalidParamsError> {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(InvalidParamsError::new(format!(
                "uniform bounds [{lo}, {hi})"
            )));
        }
        Ok(Uniform { lo, hi })
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }

    fn mean(&self) -> Option<f64> {
        Some(0.5 * (self.lo + self.hi))
    }
}

/// The normal (Gaussian) distribution, sampled via Box–Muller.
///
/// This is the family Datamime's unstructured-data generators assume for
/// key/value sizes (Sec. III-B of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution with mean `mu` and standard deviation
    /// `sigma`.
    ///
    /// # Errors
    ///
    /// Returns an error if `sigma < 0` or either parameter is not finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, InvalidParamsError> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(InvalidParamsError::new(format!(
                "normal(mu={mu}, sigma={sigma})"
            )));
        }
        Ok(Normal { mu, sigma })
    }

    /// Standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        // Box–Muller; draws u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - rng.f64();
        let u2 = rng.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mu + self.sigma * z
    }

    fn mean(&self) -> Option<f64> {
        Some(self.mu)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    inner: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution whose logarithm has mean `mu` and
    /// standard deviation `sigma`.
    ///
    /// # Errors
    ///
    /// Returns an error under the same conditions as [`Normal::new`].
    pub fn new(mu: f64, sigma: f64) -> Result<Self, InvalidParamsError> {
        Ok(LogNormal {
            inner: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.inner.sample(rng).exp()
    }

    fn mean(&self) -> Option<f64> {
        let mu = self.inner.mean()?;
        let s = self.inner.sigma();
        Some((mu + 0.5 * s * s).exp())
    }
}

/// The exponential distribution with rate `lambda`, used for Poisson
/// inter-arrival times in the load generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda`.
    ///
    /// # Errors
    ///
    /// Returns an error if `lambda` is not strictly positive and finite.
    pub fn new(lambda: f64) -> Result<Self, InvalidParamsError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(InvalidParamsError::new(format!(
                "exponential(lambda={lambda})"
            )));
        }
        Ok(Exponential { lambda })
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut Rng) -> f64 {
        -(1.0 - rng.f64()).ln() / self.lambda
    }

    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.lambda)
    }
}

/// The generalized Pareto distribution (location `mu`, scale `sigma`,
/// shape `xi`), via inverse-CDF sampling.
///
/// Atikoglu et al. (SIGMETRICS 2012) model Facebook memcached value sizes as
/// generalized Pareto; the paper's `mem-fb` target dataset uses this family,
/// deliberately outside the Gaussian family assumed by the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneralizedPareto {
    mu: f64,
    sigma: f64,
    xi: f64,
}

impl GeneralizedPareto {
    /// Creates a generalized Pareto distribution.
    ///
    /// # Errors
    ///
    /// Returns an error if `sigma <= 0` or any parameter is not finite.
    pub fn new(mu: f64, sigma: f64, xi: f64) -> Result<Self, InvalidParamsError> {
        if !mu.is_finite() || !xi.is_finite() || !sigma.is_finite() || sigma <= 0.0 {
            return Err(InvalidParamsError::new(format!(
                "generalized pareto(mu={mu}, sigma={sigma}, xi={xi})"
            )));
        }
        Ok(GeneralizedPareto { mu, sigma, xi })
    }
}

impl Distribution for GeneralizedPareto {
    fn sample(&self, rng: &mut Rng) -> f64 {
        let u = 1.0 - rng.f64(); // in (0, 1]
        if self.xi.abs() < 1e-12 {
            self.mu - self.sigma * u.ln()
        } else {
            self.mu + self.sigma * (u.powf(-self.xi) - 1.0) / self.xi
        }
    }

    fn mean(&self) -> Option<f64> {
        if self.xi < 1.0 {
            Some(self.mu + self.sigma / (1.0 - self.xi))
        } else {
            None
        }
    }
}

/// A Zipfian distribution over ranks `0..n`, used for key popularity and
/// query-term skew.
///
/// Sampling uses a precomputed cumulative table with binary search, so
/// construction is `O(n)` and sampling is `O(log n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with skew `s >= 0`
    /// (`s == 0` is uniform).
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or `s` is negative or not finite.
    pub fn new(n: usize, s: f64) -> Result<Self, InvalidParamsError> {
        if n == 0 || s.is_nan() || s.is_infinite() || s < 0.0 {
            return Err(InvalidParamsError::new(format!("zipf(n={n}, s={s})")));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Zipf { cdf })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Samples a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample_rank(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

impl Distribution for Zipf {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.sample_rank(rng) as f64
    }
}

/// A categorical distribution over arbitrary weights (e.g. the TPC-C
/// transaction mix for `silo`, or the GET/SET ratio for `memcached`).
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cdf: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution from non-negative weights.
    ///
    /// Weights are normalized internally; they need not sum to 1.
    ///
    /// # Errors
    ///
    /// Returns an error if `weights` is empty, any weight is negative or
    /// non-finite, or all weights are zero.
    pub fn new(weights: &[f64]) -> Result<Self, InvalidParamsError> {
        if weights.is_empty() {
            return Err(InvalidParamsError::new("categorical with no weights"));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(InvalidParamsError::new(
                "categorical weight negative or non-finite",
            ));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(InvalidParamsError::new("categorical weights all zero"));
        }
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        Ok(Categorical { cdf })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if there are no categories (never true for a
    /// successfully constructed value).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Samples a category index.
    pub fn sample_index(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

impl Distribution for Categorical {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.sample_index(rng) as f64
    }
}

/// Draws from `dist` but clamps the result into `[lo, hi]` and rounds to the
/// nearest integer — the common "size in bytes" shape used by the dataset
/// generators.
pub fn sample_size(dist: &dyn Distribution, rng: &mut Rng, lo: u64, hi: u64) -> u64 {
    let x = dist.sample(rng);
    let x = x.clamp(lo as f64, hi as f64);
    x.round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(d: &dyn Distribution, n: usize, seed: u64) -> f64 {
        let mut rng = Rng::with_seed(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 2.0).unwrap();
        let mut rng = Rng::with_seed(4);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn normal_rejects_negative_sigma() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(0.25).unwrap();
        let m = sample_mean(&d, 100_000, 6);
        assert!((m - 4.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn exponential_rejects_nonpositive_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
    }

    #[test]
    fn generalized_pareto_mean_matches_formula() {
        let d = GeneralizedPareto::new(15.0, 50.0, 0.2).unwrap();
        let m = sample_mean(&d, 400_000, 8);
        let expect = 15.0 + 50.0 / (1.0 - 0.2);
        assert!(
            (m - expect).abs() / expect < 0.05,
            "mean {m} expect {expect}"
        );
    }

    #[test]
    fn generalized_pareto_xi_zero_is_shifted_exponential() {
        let d = GeneralizedPareto::new(0.0, 2.0, 0.0).unwrap();
        let m = sample_mean(&d, 100_000, 9);
        assert!((m - 2.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let d = Zipf::new(1000, 1.0).unwrap();
        let mut rng = Rng::with_seed(12);
        let mut counts = vec![0usize; 1000];
        for _ in 0..50_000 {
            counts[d.sample_rank(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        assert!(counts[10] > counts[500]);
    }

    #[test]
    fn zipf_skew_zero_is_uniform() {
        let d = Zipf::new(10, 0.0).unwrap();
        let mut rng = Rng::with_seed(13);
        let mut counts = vec![0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[d.sample_rank(&mut rng)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "frac {frac}");
        }
    }

    #[test]
    fn zipf_rejects_invalid() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -0.5).is_err());
    }

    #[test]
    fn categorical_respects_weights() {
        let d = Categorical::new(&[1.0, 3.0]).unwrap();
        let mut rng = Rng::with_seed(14);
        let n = 100_000;
        let ones = (0..n).filter(|_| d.sample_index(&mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn categorical_rejects_bad_weights() {
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[0.0, 0.0]).is_err());
        assert!(Categorical::new(&[-1.0, 2.0]).is_err());
        assert!(Categorical::new(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn sample_size_clamps_and_rounds() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let mut rng = Rng::with_seed(15);
        for _ in 0..1000 {
            let s = sample_size(&d, &mut rng, 4, 6);
            assert!((4..=6).contains(&s));
        }
    }

    #[test]
    fn lognormal_positive() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        let mut rng = Rng::with_seed(16);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }
}
