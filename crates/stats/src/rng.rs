//! Deterministic pseudo-random number generation.
//!
//! Datamime's search, workload generation, and simulators must be exactly
//! reproducible from a seed, so this crate ships its own small, fast PRNG
//! ([`Rng`], a xoshiro256\*\* generator seeded through SplitMix64) instead of
//! depending on an external crate whose stream could change across versions.
//!
//! # Examples
//!
//! ```
//! use datamime_stats::Rng;
//!
//! let mut rng = Rng::with_seed(42);
//! let x = rng.f64(); // uniform in [0, 1)
//! assert!((0.0..1.0).contains(&x));
//! let mut rng2 = Rng::with_seed(42);
//! assert_eq!(rng.state_digest() != rng2.state_digest(), true);
//! ```

/// A deterministic xoshiro256\*\* pseudo-random number generator.
///
/// The generator is seeded via SplitMix64 so that any `u64` seed yields a
/// well-mixed initial state. Two generators created with the same seed
/// produce identical streams on every platform.
///
/// # Examples
///
/// ```
/// use datamime_stats::Rng;
/// let mut a = Rng::with_seed(7);
/// let mut b = Rng::with_seed(7);
/// assert_eq!(a.u64(), b.u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn with_seed(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child generator for a named sub-stream.
    ///
    /// Useful for giving each component of a simulation its own stream so
    /// that adding draws in one component does not perturb another.
    ///
    /// # Examples
    ///
    /// ```
    /// use datamime_stats::Rng;
    /// let mut root = Rng::with_seed(1);
    /// let mut caches = root.fork("caches");
    /// let mut arrivals = root.fork("arrivals");
    /// assert_ne!(caches.u64(), arrivals.u64());
    /// ```
    pub fn fork(&mut self, label: &str) -> Rng {
        // FNV-1a over the label, mixed with a fresh draw from the parent.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Rng::with_seed(h ^ self.u64())
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `u64` in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let mut x = self.u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                x = self.u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Returns a uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid range"
        );
        lo + (hi - lo) * self.f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Returns an order-insensitive digest of the internal state, for tests.
    pub fn state_digest(&self) -> u64 {
        self.s[0]
            ^ self.s[1].rotate_left(16)
            ^ self.s[2].rotate_left(32)
            ^ self.s[3].rotate_left(48)
    }
}

impl Default for Rng {
    /// Equivalent to `Rng::with_seed(0)`.
    fn default() -> Self {
        Rng::with_seed(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::with_seed(123);
        let mut b = Rng::with_seed(123);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::with_seed(1);
        let mut b = Rng::with_seed(2);
        let matches = (0..16).filter(|_| a.u64() == b.u64()).count();
        assert!(matches < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::with_seed(9);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng::with_seed(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_bounds_and_covers() {
        let mut r = Rng::with_seed(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.below(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        Rng::with_seed(0).below(0);
    }

    #[test]
    fn range_i64_inclusive() {
        let mut r = Rng::with_seed(3);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..2000 {
            let x = r.range_i64(-2, 2);
            assert!((-2..=2).contains(&x));
            hit_lo |= x == -2;
            hit_hi |= x == 2;
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut a = Rng::with_seed(77);
        let mut b = Rng::with_seed(77);
        let mut fa = a.fork("x");
        let mut fb = b.fork("x");
        assert_eq!(fa.u64(), fb.u64());
        let mut fc = a.fork("y");
        assert_ne!(fa.u64(), fc.u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::with_seed(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
