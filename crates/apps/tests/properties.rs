//! Property-based robustness tests: every dataset configuration inside the
//! documented ranges must build and serve without panicking — the safety
//! property the Bayesian optimizer relies on when exploring the cube.

use datamime_apps::{
    App, KvConfig, KvStore, Masstree, MasstreeConfig, NetSpec, SearchConfig, SearchEngine,
    SiloConfig, SiloDb, SizeDist,
};
use datamime_sim::{Machine, MachineConfig};
use datamime_stats::Rng;
use proptest::prelude::*;

fn serve_some<A: App>(mut app: A, seed: u64) -> u64 {
    let mut machine = Machine::new(MachineConfig::broadwell());
    let mut rng = Rng::with_seed(seed);
    for _ in 0..20 {
        app.serve(&mut machine, &mut rng);
    }
    machine.counters().instructions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kvstore_serves_any_valid_config(
        n_keys in 1usize..20_000,
        key_mean in 1.0f64..200.0,
        key_std in 0.0f64..64.0,
        val_mean in 1.0f64..8192.0,
        val_std in 0.0f64..4096.0,
        get_ratio in 0.0f64..1.0,
        skew in 0.0f64..1.5,
        seed in any::<u64>(),
    ) {
        let cfg = KvConfig {
            n_keys,
            key_size: SizeDist::Normal { mean: key_mean, std: key_std },
            value_size: SizeDist::Normal { mean: val_mean, std: val_std },
            get_ratio,
            popularity_skew: skew,
            networked: false,
            value_redundancy: None,
            multiget_fraction: 0.1,
            seed,
        };
        prop_assert!(serve_some(KvStore::new(cfg), seed) > 0);
    }

    #[test]
    fn silo_serves_any_valid_mix(
        warehouses in 1u32..16,
        mix in prop::collection::vec(0.001f64..1.0, 6),
        bid_items in 1u64..500_000,
        seed in any::<u64>(),
    ) {
        let cfg = SiloConfig {
            n_warehouses: warehouses,
            tx_mix: [mix[0], mix[1], mix[2], mix[3], mix[4], mix[5]],
            n_bid_items: bid_items,
            seed,
        };
        prop_assert!(serve_some(SiloDb::new(cfg), seed) > 0);
    }

    #[test]
    fn search_engine_serves_any_valid_corpus(
        n_docs in 1usize..8_000,
        n_terms in 1usize..8_000,
        doc_len in 64.0f64..16_384.0,
        skew in 0.0f64..1.5,
        cap in 0.0f64..0.9,
        seed in any::<u64>(),
    ) {
        let cfg = SearchConfig {
            n_docs,
            n_terms,
            doc_length: SizeDist::Normal { mean: doc_len, std: doc_len / 3.0 },
            query_skew: skew,
            term_freq_cap: cap,
            seed,
        };
        prop_assert!(serve_some(SearchEngine::new(cfg), seed) > 0);
    }

    #[test]
    fn dnn_builds_any_generator_point(
        n_conv in 1u32..8,
        n_strided in 0u32..4,
        n_pool in 0u32..3,
        n_fc in 0u32..3,
        first_ch in 1u32..48,
    ) {
        let spec = NetSpec::from_generator_params(n_conv, n_strided, n_pool, n_fc, first_ch);
        let app = datamime_apps::DnnApp::new(spec);
        prop_assert!(app.footprint_bytes() > 0);
        prop_assert!(app.macs_per_inference() > 0);
    }

    #[test]
    fn masstree_serves_any_config(
        n_keys in 1u64..300_000,
        value_bytes in 1u64..4096,
        get_ratio in 0.0f64..1.0,
        skew in 0.0f64..1.3,
        seed in any::<u64>(),
    ) {
        let cfg = MasstreeConfig { n_keys, value_bytes, get_ratio, popularity_skew: skew, seed };
        prop_assert!(serve_some(Masstree::new(cfg), seed) > 0);
    }

    #[test]
    fn serving_is_deterministic_for_equal_seeds(seed in any::<u64>()) {
        let cfg = KvConfig { n_keys: 500, ..KvConfig::ycsb_like() };
        let a = serve_some(KvStore::new(cfg.clone()), seed);
        let b = serve_some(KvStore::new(cfg), seed);
        prop_assert_eq!(a, b);
    }
}
