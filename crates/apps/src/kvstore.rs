//! A memcached-like in-memory key-value store.
//!
//! Structure mirrors memcached: a chained hash table of items, each item a
//! header + key + value allocated from a slab-style allocator; GET requests
//! hash the key, walk the chain comparing keys, and copy the value out;
//! SET requests replace the value (possibly reallocating into a different
//! slab class). Code paths modeled as [`CodeRegion`]s include the event-loop
//! frontend, protocol parsing, hashing, per-slab-class item handling, the
//! value memcpy loop, and the response path — so datasets with diverse
//! request types and sizes exercise a larger instruction footprint, exactly
//! the mechanism behind the paper's ICache-MPKI observations.

use crate::content::ContentModel;
use crate::dataset::SizeDist;
use crate::engine::{App, CodeLayout, CodeRegion, ServicePaths};
use datamime_sim::{Addr, Machine, Segment, SimAlloc};
use datamime_stats::dist::Zipf;
use datamime_stats::Rng;

/// Dataset + request-mix configuration for [`KvStore`].
///
/// The six tunables of the paper's Table III `memcached` generator are
/// `get_ratio` and the key/value size distributions (QPS lives in the
/// load-generator spec); the remaining fields define the fixed aspects of
/// the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct KvConfig {
    /// Number of distinct keys resident in the store.
    pub n_keys: usize,
    /// Key size distribution (bytes, clamped to `[1, 250]` as in memcached).
    pub key_size: SizeDist,
    /// Value size distribution (bytes, clamped to `[1, 1 MiB]`).
    pub value_size: SizeDist,
    /// Fraction of GET requests (the rest are SETs).
    pub get_ratio: f64,
    /// Zipf skew of key popularity.
    pub popularity_skew: f64,
    /// Whether requests traverse the modeled kernel network stack
    /// (client/server on separate machines, Sec. V-F) instead of the
    /// integrated shared-memory harness.
    pub networked: bool,
    /// Redundancy of generated value *contents* in `[0, 1]`; `None` skips
    /// content generation. Supports the Sec. III-D compressibility
    /// extension: profiles can then include a memory-snapshot compression
    /// ratio.
    pub value_redundancy: Option<f64>,
    /// Fraction of GETs issued as multigets (one request fetching 4–16
    /// keys, as Facebook's memcached clients do). Lengthens a subset of
    /// requests, widening the service-time distribution.
    pub multiget_fraction: f64,
    /// Seed for dataset construction.
    pub seed: u64,
}

impl KvConfig {
    /// A dataset representative of Facebook's memcached environment
    /// (`mem-fb` in the paper): small Gaussian keys, generalized-Pareto
    /// values, 97% GETs, mild skew, footprint well beyond the LLC.
    pub fn facebook_like() -> Self {
        KvConfig {
            n_keys: 120_000,
            key_size: SizeDist::Normal {
                mean: 31.0,
                std: 9.0,
            },
            value_size: SizeDist::GeneralizedPareto {
                mu: 15.0,
                sigma: 220.0,
                xi: 0.25,
            },
            get_ratio: 0.97,
            popularity_skew: 1.01,
            networked: false,
            value_redundancy: None,
            multiget_fraction: 0.12,
            seed: 0xFB,
        }
    }

    /// A dataset following Twitter's Twemcache trace analyses
    /// (`mem-twtr`): larger keys, moderate values, more writes, heavier
    /// skew.
    pub fn twitter_like() -> Self {
        KvConfig {
            n_keys: 200_000,
            key_size: SizeDist::Normal {
                mean: 42.0,
                std: 18.0,
            },
            value_size: SizeDist::GeneralizedPareto {
                mu: 10.0,
                sigma: 120.0,
                xi: 0.15,
            },
            get_ratio: 0.8,
            popularity_skew: 1.2,
            networked: false,
            value_redundancy: None,
            multiget_fraction: 0.05,
            seed: 0x7717,
        }
    }

    /// TailBench's default public dataset (YCSB-like): fixed-size keys and
    /// large fixed-size values, 50/50 GET/SET — the unrepresentative
    /// baseline of the paper's Fig. 1.
    pub fn ycsb_like() -> Self {
        KvConfig {
            n_keys: 30_000,
            key_size: SizeDist::Fixed(23.0),
            value_size: SizeDist::Fixed(1000.0),
            get_ratio: 0.5,
            popularity_skew: 0.99,
            networked: false,
            value_redundancy: None,
            multiget_fraction: 0.0, // YCSB issues single-key operations
            seed: 0x4C5B,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Item {
    addr: Addr,
    key_bytes: u64,
    value_bytes: u64,
}

const ITEM_HEADER_BYTES: u64 = 56;
const MAX_KEY: u64 = 250;
const MAX_VALUE: u64 = 1 << 20;

/// The memcached-like store (see module docs).
#[derive(Debug)]
pub struct KvStore {
    cfg: KvConfig,
    alloc: SimAlloc,
    items: Vec<Item>,
    buckets: Vec<Vec<u32>>,
    bucket_table: Addr,
    popularity: Zipf,
    /// Maps popularity rank -> key id, so hot keys are scattered over buckets.
    rank_to_key: Vec<u32>,
    footprint: u64,
    /// Sampled value contents for memory-snapshot profiling.
    content_sample: Vec<Vec<u8>>,
    /// Wall-clock cycle of the last LRU-reaper pass.
    last_reap_cycles: u64,
    // Code regions.
    frontend: CodeRegion,
    netstack: CodeRegion,
    parse: CodeRegion,
    hash_fn: CodeRegion,
    copy_loop: CodeRegion,
    respond: CodeRegion,
    store_path: CodeRegion,
    reaper: CodeRegion,
    slab_classes: Vec<CodeRegion>,
    aux_paths: ServicePaths,
}

/// How often the background LRU reaper (memcached's `lru_crawler`) runs,
/// in wall-clock cycles.
const REAP_INTERVAL_CYCLES: u64 = 4_000_000;
/// Items scanned per reaper pass.
const REAP_SCAN_ITEMS: usize = 192;

fn slab_class_of(bytes: u64) -> usize {
    // memcached-style geometric size classes starting at 64 B.
    let mut class = 0usize;
    let mut cap = 64u64;
    while cap < bytes && class < 15 {
        cap = cap * 3 / 2;
        class += 1;
    }
    class
}

impl KvStore {
    /// Builds and populates the store from a dataset configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero keys, invalid
    /// distributions, or a non-finite/negative skew).
    pub fn new(cfg: KvConfig) -> Self {
        assert!(cfg.n_keys > 0, "store needs at least one key");
        assert!(
            (0.0..=1.0).contains(&cfg.get_ratio),
            "get_ratio must be in [0,1]"
        );
        let mut rng = Rng::with_seed(cfg.seed);
        let mut alloc = SimAlloc::new();

        let mut layout = CodeLayout::new(&mut alloc);
        let frontend = layout.region(12 * 1024); // event loop + syscalls
        let netstack = layout.region(32 * 1024); // kernel TCP path (networked mode)
        let parse = layout.region(3 * 1024);
        let hash_fn = layout.region(1024);
        let copy_loop = layout.region_with_ilp(512, 3.0); // streaming memcpy
        let respond = layout.region(4 * 1024);
        let store_path = layout.region(12 * 1024);
        let reaper = layout.region(4 * 1024);
        let slab_classes = layout.regions(16, 2 * 1024);
        let aux_paths = ServicePaths::new(&mut layout, 16, 2 * 1024);

        let n_buckets = cfg.n_keys.next_power_of_two();
        let bucket_table = alloc
            .alloc(Segment::Heap, (n_buckets as u64) * 8)
            .expect("bucket table");

        let mut items = Vec::with_capacity(cfg.n_keys);
        let mut buckets = vec![Vec::new(); n_buckets];
        let mut footprint = (n_buckets as u64) * 8;
        for id in 0..cfg.n_keys {
            let key_bytes = cfg.key_size.sample_bytes(&mut rng, 1, MAX_KEY);
            let value_bytes = cfg.value_size.sample_bytes(&mut rng, 1, MAX_VALUE);
            let total = ITEM_HEADER_BYTES + key_bytes + value_bytes;
            let addr = alloc.alloc(Segment::Heap, total).expect("item");
            items.push(Item {
                addr,
                key_bytes,
                value_bytes,
            });
            // Bucket by a mixed hash of the id (stands in for the key hash).
            let h = (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
            buckets[(h as usize) & (n_buckets - 1)].push(id as u32);
            footprint += total;
        }

        let popularity =
            Zipf::new(cfg.n_keys, cfg.popularity_skew).expect("invalid popularity skew");
        let mut rank_to_key: Vec<u32> = (0..cfg.n_keys as u32).collect();
        rng.shuffle(&mut rank_to_key);

        // Generate value contents for a sample of items so a profiler can
        // measure the dataset's compressibility without materializing
        // every value.
        let content_sample = match cfg.value_redundancy {
            Some(red) => {
                let model = ContentModel::new(red);
                (0..192.min(items.len()))
                    .map(|_| {
                        let it = items[rng.index(items.len())];
                        model.generate(it.value_bytes as usize, &mut rng)
                    })
                    .collect()
            }
            None => Vec::new(),
        };

        KvStore {
            cfg,
            alloc,
            items,
            buckets,
            bucket_table,
            popularity,
            rank_to_key,
            footprint,
            content_sample,
            last_reap_cycles: 0,
            frontend,
            netstack,
            parse,
            hash_fn,
            copy_loop,
            respond,
            store_path,
            reaper,
            slab_classes,
            aux_paths,
        }
    }

    /// memcached's background LRU crawler: periodically scans item headers
    /// looking for expired entries — a recurring burst of pointer-chasing
    /// work that adds time-varying behaviour on top of the request stream.
    fn maybe_reap(&mut self, machine: &mut Machine, rng: &mut Rng) {
        if machine.wall_cycles() - self.last_reap_cycles < REAP_INTERVAL_CYCLES {
            return;
        }
        self.last_reap_cycles = machine.wall_cycles();
        self.reaper.call(machine, 900);
        for _ in 0..REAP_SCAN_ITEMS.min(self.items.len()) {
            let it = self.items[rng.index(self.items.len())];
            machine.load(it.addr, 64);
            // Expiry check on the header timestamp: almost never expired.
            self.reaper.branch(machine, 128, rng.bool(0.02));
        }
        self.reaper.call(machine, 400);
    }

    /// The store's configuration.
    pub fn config(&self) -> &KvConfig {
        &self.cfg
    }

    fn pick_key(&self, rng: &mut Rng) -> u32 {
        self.rank_to_key[self.popularity.sample_rank(rng)]
    }

    /// Walks the hash chain to `key`, modeling the bucket-head load, the
    /// per-entry header loads, and the data-dependent compare branches.
    fn lookup(&self, machine: &mut Machine, key: u32) -> Item {
        let n_buckets = self.buckets.len();
        let h = u64::from(key).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        let b = (h as usize) & (n_buckets - 1);
        machine.load(self.bucket_table + (b as u64) * 8, 8);
        let chain = &self.buckets[b];
        let mut found = self.items[key as usize];
        for &id in chain {
            let it = self.items[id as usize];
            // Header contains the hash + key pointer: one line.
            machine.load(it.addr, 64.min(ITEM_HEADER_BYTES + it.key_bytes));
            let is_match = id == key;
            // Compare branch: taken when we keep walking.
            self.hash_fn.branch(machine, 64, !is_match);
            if is_match {
                found = it;
                break;
            }
        }
        found
    }

    fn serve_get(&mut self, machine: &mut Machine, key: u32) {
        let it = self.lookup(machine, key);
        // Read the full key for the final compare and hash verification.
        machine.load(it.addr + ITEM_HEADER_BYTES, it.key_bytes);
        self.hash_fn.call(machine, 150 + it.key_bytes / 4);
        // Copy the value out through the memcpy loop (8 B/instr).
        machine.load(it.addr + ITEM_HEADER_BYTES + it.key_bytes, it.value_bytes);
        self.copy_loop.call(machine, 40 + it.value_bytes / 8);
        // Slab-class-specific item bookkeeping (LRU bump).
        let class = slab_class_of(ITEM_HEADER_BYTES + it.key_bytes + it.value_bytes);
        self.slab_classes[class].call(machine, 250);
        machine.store(it.addr + 16, 8); // LRU timestamp update
    }

    fn serve_set(&mut self, machine: &mut Machine, key: u32, rng: &mut Rng) {
        let old = self.lookup(machine, key);
        // New value size drawn from the dataset's distribution.
        let value_bytes = self.cfg.value_size.sample_bytes(rng, 1, MAX_VALUE);
        let old_total = ITEM_HEADER_BYTES + old.key_bytes + old.value_bytes;
        let new_total = ITEM_HEADER_BYTES + old.key_bytes + value_bytes;
        let old_class = slab_class_of(old_total);
        let new_class = slab_class_of(new_total);
        // Reallocation branch: taken when the item changes slab class.
        self.store_path.branch(machine, 128, new_class != old_class);
        let addr = if new_class != old_class {
            self.alloc.free(Segment::Heap, old.addr, old_total);
            self.footprint = self.footprint - old_total + new_total;
            self.alloc
                .alloc(Segment::Heap, new_total)
                .expect("item realloc")
        } else {
            old.addr
        };
        self.items[key as usize] = Item {
            addr,
            key_bytes: old.key_bytes,
            value_bytes,
        };
        // Store-side bookkeeping paths: LRU maintenance, eviction checks,
        // stats, logging — memcached's write path is much wider than GET.
        self.aux_paths.touch(machine, rng, 3, 300);
        // Write header + key + value.
        machine.store(addr, ITEM_HEADER_BYTES + old.key_bytes);
        machine.store(addr + ITEM_HEADER_BYTES + old.key_bytes, value_bytes);
        self.copy_loop.call(machine, 40 + value_bytes / 8);
        self.store_path.call(machine, 900);
        self.slab_classes[new_class].call(machine, 300);
    }
}

impl App for KvStore {
    fn name(&self) -> &str {
        "memcached"
    }

    fn serve(&mut self, machine: &mut Machine, rng: &mut Rng) {
        self.frontend.call(machine, 5200);
        // Connection state machine: each request runs a few of the many
        // small service functions (epoll arms, logging, stats, timeouts).
        self.aux_paths.touch(machine, rng, 4, 260);
        if self.cfg.networked {
            self.netstack.call(machine, 4200);
        }
        let key = self.pick_key(rng);
        let it = self.items[key as usize];
        self.parse.call(machine, 350 + it.key_bytes * 3);
        // Tokenizing the request: one data-dependent branch per few key
        // bytes (delimiter checks on effectively random characters).
        for b in 0..(it.key_bytes / 6).max(2) {
            self.parse.branch(machine, 300 + b * 4, rng.bool(0.3));
        }
        let is_get = rng.bool(self.cfg.get_ratio);
        // Request-type dispatch: data-dependent on the request mix.
        self.parse.branch(machine, 256, is_get);
        if is_get {
            if rng.bool(self.cfg.multiget_fraction) {
                // Multiget: one request fetching several keys.
                let n = 4 + rng.index(13);
                self.serve_get(machine, key);
                for _ in 1..n {
                    let extra = self.pick_key(rng);
                    self.parse.call_span(machine, 512, 256, 120);
                    self.serve_get(machine, extra);
                }
            } else {
                self.serve_get(machine, key);
            }
        } else {
            self.serve_set(machine, key, rng);
        }
        self.respond.call(machine, 700);
        self.maybe_reap(machine, rng);
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn memory_snapshot(&self) -> Option<Vec<u8>> {
        if self.content_sample.is_empty() {
            return None;
        }
        let mut snap = Vec::new();
        for v in &self.content_sample {
            snap.extend_from_slice(v);
            if snap.len() > 256 * 1024 {
                break;
            }
        }
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamime_sim::MachineConfig;

    fn run(cfg: KvConfig, requests: usize) -> Machine {
        let mut store = KvStore::new(cfg);
        let mut machine = Machine::new(MachineConfig::broadwell());
        let mut rng = Rng::with_seed(99);
        for _ in 0..requests {
            store.serve(&mut machine, &mut rng);
        }
        machine
    }

    #[test]
    fn serves_requests_and_counts_work() {
        let m = run(KvConfig::ycsb_like(), 200);
        let c = m.counters();
        assert!(c.instructions > 200 * 3000);
        assert!(c.busy_cycles > 0);
        assert!(c.branches > 200);
    }

    #[test]
    fn footprint_tracks_dataset_size() {
        let small = KvStore::new(KvConfig {
            n_keys: 1000,
            value_size: SizeDist::Fixed(100.0),
            ..KvConfig::ycsb_like()
        });
        let large = KvStore::new(KvConfig {
            n_keys: 1000,
            value_size: SizeDist::Fixed(10_000.0),
            ..KvConfig::ycsb_like()
        });
        assert!(large.footprint_bytes() > small.footprint_bytes() * 10);
    }

    #[test]
    fn bigger_dataset_means_more_llc_misses() {
        let small = run(
            KvConfig {
                n_keys: 2_000,
                ..KvConfig::facebook_like()
            },
            3_000,
        );
        let large = run(
            KvConfig {
                n_keys: 300_000,
                ..KvConfig::facebook_like()
            },
            3_000,
        );
        let small_mpki = small.counters().mpki(small.counters().llc_misses);
        let large_mpki = large.counters().mpki(large.counters().llc_misses);
        assert!(
            large_mpki > small_mpki * 2.0,
            "large {large_mpki} vs small {small_mpki}"
        );
    }

    #[test]
    fn higher_skew_improves_locality() {
        let flat = run(
            KvConfig {
                popularity_skew: 0.0,
                ..KvConfig::facebook_like()
            },
            3_000,
        );
        let skewed = run(
            KvConfig {
                popularity_skew: 1.4,
                ..KvConfig::facebook_like()
            },
            3_000,
        );
        let flat_mpki = flat.counters().mpki(flat.counters().llc_misses);
        let skew_mpki = skewed.counters().mpki(skewed.counters().llc_misses);
        assert!(
            skew_mpki < flat_mpki,
            "skewed {skew_mpki} vs flat {flat_mpki}"
        );
    }

    #[test]
    fn set_heavy_mix_writes_more_memory() {
        // Disable multigets so the comparison isolates the GET/SET ratio.
        let base = KvConfig {
            multiget_fraction: 0.0,
            ..KvConfig::facebook_like()
        };
        let reads = run(
            KvConfig {
                get_ratio: 1.0,
                ..base.clone()
            },
            2_000,
        );
        let writes = run(
            KvConfig {
                get_ratio: 0.0,
                ..base
            },
            2_000,
        );
        assert!(writes.counters().memory_bytes > reads.counters().memory_bytes);
    }

    #[test]
    fn multigets_lengthen_the_service_time_tail() {
        let single = run(
            KvConfig {
                multiget_fraction: 0.0,
                ..KvConfig::facebook_like()
            },
            2_000,
        );
        let multi = run(
            KvConfig {
                multiget_fraction: 0.3,
                ..KvConfig::facebook_like()
            },
            2_000,
        );
        assert!(
            multi.counters().instructions > single.counters().instructions * 23 / 20,
            "multigets must add work: {} vs {}",
            multi.counters().instructions,
            single.counters().instructions
        );
    }

    #[test]
    fn reaper_runs_periodically() {
        // Drive enough wall-clock time (requests + idle) to trigger the
        // reaper several times; its scan touches item headers.
        let mut store = KvStore::new(KvConfig {
            n_keys: 2_000,
            ..KvConfig::ycsb_like()
        });
        let mut machine = Machine::new(MachineConfig::broadwell());
        let mut rng = Rng::with_seed(3);
        for _ in 0..40 {
            store.serve(&mut machine, &mut rng);
            machine.idle(1_000_000);
        }
        // 40 M idle cycles + busy time -> at least 8 reaper passes, each
        // with REAP_SCAN_ITEMS branch checks.
        assert!(
            machine.counters().branches > 40 * 10 + 8 * 150,
            "reaper branches missing: {}",
            machine.counters().branches
        );
    }

    #[test]
    fn value_size_spread_touches_more_slab_classes() {
        let narrow = run(
            KvConfig {
                value_size: SizeDist::Normal {
                    mean: 300.0,
                    std: 1.0,
                },
                ..KvConfig::facebook_like()
            },
            2_000,
        );
        let wide = run(
            KvConfig {
                value_size: SizeDist::Normal {
                    mean: 300.0,
                    std: 2000.0,
                },
                ..KvConfig::facebook_like()
            },
            2_000,
        );
        let narrow_mpki = narrow.counters().mpki(narrow.counters().l1i_misses);
        let wide_mpki = wide.counters().mpki(wide.counters().l1i_misses);
        assert!(
            wide_mpki > narrow_mpki,
            "wide {wide_mpki} vs narrow {narrow_mpki}"
        );
    }

    #[test]
    fn networked_mode_adds_instruction_footprint() {
        let local = run(KvConfig::facebook_like(), 1_000);
        let net = run(
            KvConfig {
                networked: true,
                ..KvConfig::facebook_like()
            },
            1_000,
        );
        assert!(net.counters().instructions > local.counters().instructions);
        assert!(
            net.counters().l1i_misses > local.counters().l1i_misses,
            "network stack must add icache pressure"
        );
    }

    #[test]
    fn deterministic_given_seeds() {
        let a = run(KvConfig::facebook_like(), 500);
        let b = run(KvConfig::facebook_like(), 500);
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn slab_class_boundaries() {
        assert_eq!(slab_class_of(1), 0);
        assert_eq!(slab_class_of(64), 0);
        assert_eq!(slab_class_of(65), 1);
        assert!(slab_class_of(1 << 20) <= 15);
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn zero_keys_panics() {
        KvStore::new(KvConfig {
            n_keys: 0,
            ..KvConfig::ycsb_like()
        });
    }
}
