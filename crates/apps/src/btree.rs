//! A simulated B+tree index.
//!
//! Databases in this reproduction (silo, masstree) index their tables with
//! B+trees whose *nodes live in the simulated address space*. The tree is
//! shape-only: node addresses are computed arithmetically from the key
//! space, so a lookup descends `depth` levels, loading each node and
//! executing the data-dependent comparison branches a real binary-search
//! descent would — which is what drives cache and branch behaviour.

use crate::engine::CodeRegion;
use datamime_sim::{Addr, Machine, Segment, SimAlloc};

/// Bytes per B+tree node (four cache lines, typical of in-memory trees).
pub const NODE_BYTES: u64 = 256;

/// A B+tree over keys `0..n` with a fixed fanout.
///
/// # Examples
///
/// ```
/// use datamime_apps::BTreeIndex;
/// use datamime_sim::{Machine, MachineConfig, SimAlloc};
/// use datamime_apps::{CodeLayout, CodeRegion};
///
/// let mut alloc = SimAlloc::new();
/// let code = CodeLayout::new(&mut alloc).region(4096);
/// let idx = BTreeIndex::new(&mut alloc, 100_000, 16);
/// let mut m = Machine::new(MachineConfig::broadwell());
/// idx.lookup(&mut m, &code, 42);
/// assert!(m.counters().busy_cycles > 0);
/// assert_eq!(idx.depth(), 5); // ceil(log16(100_000)) + leaf level
/// ```
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    n: u64,
    fanout: u64,
    /// One `(base_addr, node_count)` per level, root first.
    levels: Vec<(Addr, u64)>,
}

impl BTreeIndex {
    /// Builds an index over `n` keys with the given `fanout`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `fanout < 2`.
    pub fn new(alloc: &mut SimAlloc, n: u64, fanout: u64) -> Self {
        assert!(n > 0, "index needs at least one key");
        assert!(fanout >= 2, "fanout must be at least 2");
        // Build levels bottom-up, then reverse to root-first.
        let mut counts = Vec::new();
        let mut nodes = n.div_ceil(fanout);
        loop {
            counts.push(nodes);
            if nodes == 1 {
                break;
            }
            nodes = nodes.div_ceil(fanout);
        }
        counts.reverse();
        let levels = counts
            .into_iter()
            .map(|c| {
                let base = alloc
                    .alloc(Segment::Heap, c * NODE_BYTES)
                    .expect("btree level allocation");
                (base, c)
            })
            .collect();
        BTreeIndex { n, fanout, levels }
    }

    /// Number of levels (root to leaf, inclusive).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Number of indexed keys.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Returns `true` if the index holds no keys (never true after
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Total bytes of node storage.
    pub fn footprint_bytes(&self) -> u64 {
        self.levels.iter().map(|(_, c)| c * NODE_BYTES).sum()
    }

    /// Descends root-to-leaf for `key`, loading each node and executing the
    /// binary-search comparison branches inside `code`.
    ///
    /// Keys are clamped into range so stale ids never panic.
    pub fn lookup(&self, machine: &mut Machine, code: &CodeRegion, key: u64) {
        let key = key.min(self.n - 1);
        let cmp_branches = 64 - (self.fanout - 1).leading_zeros() as u64; // log2(fanout)
        for (depth, &(base, count)) in self.levels.iter().enumerate() {
            // Which node at this level covers `key`: keys are spread evenly
            // across the level's nodes.
            let node = ((key as u128 * count as u128) / self.n as u128) as u64;
            machine.load(base + node * NODE_BYTES, NODE_BYTES);
            code.call_span(machine, 0, 512, 30 + 8 * cmp_branches);
            // Binary-search branches: outcome depends on the key bits, so
            // uniformly random keys mispredict and skewed keys do not.
            for b in 0..cmp_branches {
                let taken = (key >> b) & 1 == 1;
                code.branch(machine, 64 + depth as u64 * 8 + b, taken);
            }
        }
    }

    /// A lookup followed by a write into the leaf (index update).
    pub fn update(&self, machine: &mut Machine, code: &CodeRegion, key: u64) {
        self.lookup(machine, code, key);
        let key = key.min(self.n - 1);
        let (base, count) = *self.levels.last().expect("at least one level");
        let node = ((key as u128 * count as u128) / self.n as u128) as u64;
        machine.store(base + node * NODE_BYTES + (key * 16) % NODE_BYTES, 16);
    }
}

/// A fixed-stride record array in simulated memory (one table's tuples).
#[derive(Debug, Clone, Copy)]
pub struct RecordArray {
    base: Addr,
    record_bytes: u64,
    n: u64,
}

impl RecordArray {
    /// Allocates an array of `n` records of `record_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `record_bytes == 0`.
    pub fn new(alloc: &mut SimAlloc, n: u64, record_bytes: u64) -> Self {
        assert!(n > 0 && record_bytes > 0, "empty record array");
        // Pad records to 8-byte slots like a real row store.
        let stride = record_bytes.div_ceil(8) * 8;
        let base = alloc
            .alloc(Segment::Heap, n * stride)
            .expect("record array");
        RecordArray {
            base,
            record_bytes: stride,
            n,
        }
    }

    /// Number of records.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Returns `true` if the array has no records (never true after
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Total bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.n * self.record_bytes
    }

    /// Address of record `i` (clamped into range).
    pub fn addr(&self, i: u64) -> Addr {
        self.base + (i % self.n) * self.record_bytes
    }

    /// Reads record `i` in full.
    pub fn read(&self, machine: &mut Machine, i: u64) {
        machine.load(self.addr(i), self.record_bytes);
    }

    /// Writes `bytes` of record `i` (clamped to the record size).
    pub fn write(&self, machine: &mut Machine, i: u64, bytes: u64) {
        machine.store(self.addr(i), bytes.min(self.record_bytes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CodeLayout;
    use datamime_sim::MachineConfig;

    fn setup() -> (SimAlloc, CodeRegion) {
        let mut alloc = SimAlloc::new();
        let code = CodeLayout::new(&mut alloc).region(4096);
        (alloc, code)
    }

    #[test]
    fn depth_grows_logarithmically() {
        let (mut alloc, _) = setup();
        let small = BTreeIndex::new(&mut alloc, 16, 16);
        let large = BTreeIndex::new(&mut alloc, 1_000_000, 16);
        assert_eq!(small.depth(), 1);
        assert!(large.depth() >= 5);
        assert!(large.depth() <= 7);
    }

    #[test]
    fn lookup_touches_depth_nodes() {
        let (mut alloc, code) = setup();
        let idx = BTreeIndex::new(&mut alloc, 100_000, 16);
        let mut m = Machine::new(MachineConfig::broadwell());
        idx.lookup(&mut m, &code, 5);
        // Each level loads a 256 B node = 4 lines; first touch misses.
        assert!(m.counters().l1d_misses >= idx.depth() as u64);
    }

    #[test]
    fn random_keys_mispredict_more_than_fixed_key() {
        let (mut alloc, code) = setup();
        let idx = BTreeIndex::new(&mut alloc, 1 << 20, 16);
        let mut fixed = Machine::new(MachineConfig::broadwell());
        let mut random = Machine::new(MachineConfig::broadwell());
        let mut rng = datamime_stats::Rng::with_seed(7);
        for _ in 0..3000 {
            idx.lookup(&mut fixed, &code, 12345);
            idx.lookup(&mut random, &code, rng.below(1 << 20));
        }
        assert!(random.counters().branch_mispredicts > fixed.counters().branch_mispredicts * 3);
    }

    #[test]
    fn out_of_range_keys_are_clamped() {
        let (mut alloc, code) = setup();
        let idx = BTreeIndex::new(&mut alloc, 100, 16);
        let mut m = Machine::new(MachineConfig::broadwell());
        idx.lookup(&mut m, &code, u64::MAX);
        idx.update(&mut m, &code, u64::MAX);
    }

    #[test]
    fn record_array_addresses_are_strided() {
        let mut alloc = SimAlloc::new();
        let arr = RecordArray::new(&mut alloc, 100, 306);
        assert_eq!(arr.addr(1) - arr.addr(0), 312); // padded to 8B
        assert_eq!(arr.len(), 100);
        assert_eq!(arr.footprint_bytes(), 100 * 312);
    }

    #[test]
    fn record_array_wraps_indices() {
        let mut alloc = SimAlloc::new();
        let arr = RecordArray::new(&mut alloc, 10, 64);
        assert_eq!(arr.addr(10), arr.addr(0));
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn empty_index_panics() {
        let mut alloc = SimAlloc::new();
        BTreeIndex::new(&mut alloc, 0, 16);
    }

    #[test]
    fn footprint_scales_with_keys() {
        let (mut alloc, _) = setup();
        let small = BTreeIndex::new(&mut alloc, 1_000, 16);
        let large = BTreeIndex::new(&mut alloc, 1_000_000, 16);
        assert!(large.footprint_bytes() > small.footprint_bytes() * 100);
    }
}
