//! Shared execution infrastructure for workload applications.
//!
//! Applications in this reproduction are *real programs in structure*:
//! they maintain genuine hash tables, B-trees, posting lists, and tensors,
//! laid out in the simulator's address space, and serve requests by doing
//! the actual algorithmic work against those structures. What would be
//! machine code on real hardware is modeled by [`CodeRegion`]s: each
//! modeled function owns a span of the simulated text segment, and calling
//! it fetches that span through the I-side hierarchy and retires a
//! proportional number of instructions.

use datamime_sim::{Addr, Machine, Segment, SimAlloc};
use datamime_stats::Rng;

/// A span of simulated program text representing one function (or one
/// slab-class/specialized variant of a function).
///
/// # Examples
///
/// ```
/// use datamime_apps::{CodeRegion, CodeLayout};
/// use datamime_sim::{Machine, MachineConfig, SimAlloc};
///
/// let mut alloc = SimAlloc::new();
/// let mut layout = CodeLayout::new(&mut alloc);
/// let parse = layout.region(2048);
/// let mut m = Machine::new(MachineConfig::broadwell());
/// parse.call(&mut m, 500); // fetch 2 KB of text, retire 500 instructions
/// assert_eq!(m.counters().instructions, 500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeRegion {
    base: Addr,
    bytes: u64,
    /// Effective instruction-level parallelism of this code (dependence
    /// chains cap the sustained issue rate below the machine width).
    ilp: f64,
}

impl CodeRegion {
    /// Starting address of the region.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Size of the region in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Executes the whole region once, retiring `instrs` instructions at
    /// the region's effective ILP.
    pub fn call(&self, machine: &mut Machine, instrs: u64) {
        machine.exec_ilp(self.base, self.bytes, instrs, self.ilp);
    }

    /// Executes a sub-span of the region (e.g. one iteration of a loop that
    /// only touches part of a large function).
    ///
    /// The span is clipped to the region.
    pub fn call_span(&self, machine: &mut Machine, offset: u64, len: u64, instrs: u64) {
        let offset = offset.min(self.bytes.saturating_sub(1));
        let len = len.min(self.bytes - offset).max(1);
        machine.exec_ilp(self.base + offset, len, instrs, self.ilp);
    }

    /// Executes a data-dependent conditional branch attributed to this
    /// region, at byte offset `site`.
    pub fn branch(&self, machine: &mut Machine, site: u64, taken: bool) {
        machine.branch(self.base + site % self.bytes.max(1), taken);
    }
}

/// Allocates [`CodeRegion`]s from the simulated text segment.
#[derive(Debug)]
pub struct CodeLayout<'a> {
    alloc: &'a mut SimAlloc,
}

impl<'a> CodeLayout<'a> {
    /// Wraps an allocator for code-region allocation.
    pub fn new(alloc: &'a mut SimAlloc) -> Self {
        CodeLayout { alloc }
    }

    /// Allocates a region of `bytes` bytes of text.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn region(&mut self, bytes: u64) -> CodeRegion {
        // Typical branchy server code sustains ~1.6 IPC of useful ILP.
        self.region_with_ilp(bytes, 1.6)
    }

    /// Allocates a region whose code sustains `ilp` instructions per cycle
    /// (e.g. vectorized dense kernels approach the machine width).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or `ilp` is not positive.
    pub fn region_with_ilp(&mut self, bytes: u64, ilp: f64) -> CodeRegion {
        assert!(ilp > 0.0, "ilp must be positive");
        let base = self
            .alloc
            .alloc(Segment::Code, bytes)
            .expect("code region size must be positive");
        CodeRegion { base, bytes, ilp }
    }

    /// Allocates `n` same-sized sibling regions (e.g. per-slab-class
    /// specializations of a function).
    pub fn regions(&mut self, n: usize, bytes: u64) -> Vec<CodeRegion> {
        (0..n).map(|_| self.region(bytes)).collect()
    }
}

/// A set of auxiliary service functions (connection handling, logging,
/// state-machine arms, ...) of which each request exercises a random
/// subset — the code-path diversity that gives server workloads their
/// instruction-cache pressure.
#[derive(Debug, Clone)]
pub struct ServicePaths {
    regions: Vec<CodeRegion>,
}

impl ServicePaths {
    /// Allocates `n` auxiliary functions of `bytes` each.
    pub fn new(layout: &mut CodeLayout<'_>, n: usize, bytes: u64) -> Self {
        ServicePaths {
            regions: layout.regions(n, bytes),
        }
    }

    /// Executes `k` randomly chosen functions, `instrs_each` instructions
    /// apiece (`k` is clamped to the number of functions).
    pub fn touch(&self, machine: &mut Machine, rng: &mut Rng, k: usize, instrs_each: u64) {
        for _ in 0..k.min(self.regions.len()) {
            let r = self.regions[rng.index(self.regions.len())];
            r.call(machine, instrs_each);
        }
    }

    /// Total code bytes across the auxiliary functions.
    pub fn bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes()).sum()
    }
}

/// A request-serving application driven by the load generator.
///
/// `serve` performs one complete request against the machine: the
/// application decides the request type (from its configured mix), executes
/// its code paths, and touches its data structures. All randomness comes
/// from the supplied [`Rng`] so runs are reproducible.
pub trait App {
    /// Short identifier, e.g. `"memcached"`.
    fn name(&self) -> &str;

    /// Serves one request.
    fn serve(&mut self, machine: &mut Machine, rng: &mut Rng);

    /// Approximate resident data footprint in bytes (used by tests and by
    /// dataset-generation sanity checks).
    fn footprint_bytes(&self) -> u64;

    /// A sample of the application's resident data bytes, for
    /// value-dependent profiling such as the compressibility extension
    /// (paper Sec. III-D). `None` (the default) means the application does
    /// not model value contents.
    fn memory_snapshot(&self) -> Option<Vec<u8>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamime_sim::MachineConfig;

    #[test]
    fn regions_are_disjoint() {
        let mut alloc = SimAlloc::new();
        let mut layout = CodeLayout::new(&mut alloc);
        let a = layout.region(4096);
        let b = layout.region(4096);
        assert!(b.base() >= a.base() + a.bytes());
    }

    #[test]
    fn call_span_clips() {
        let mut alloc = SimAlloc::new();
        let mut layout = CodeLayout::new(&mut alloc);
        let r = layout.region(128);
        let mut m = Machine::new(MachineConfig::broadwell());
        r.call_span(&mut m, 1000, 50, 10); // offset beyond region: clipped
        assert_eq!(m.counters().instructions, 10);
    }

    #[test]
    fn repeated_calls_hit_icache() {
        let mut alloc = SimAlloc::new();
        let mut layout = CodeLayout::new(&mut alloc);
        let r = layout.region(4096);
        let mut m = Machine::new(MachineConfig::broadwell());
        r.call(&mut m, 100);
        let cold = m.counters().l1i_misses;
        for _ in 0..100 {
            r.call(&mut m, 100);
        }
        assert_eq!(m.counters().l1i_misses, cold, "warm region must not miss");
    }

    #[test]
    fn sibling_regions_create_icache_pressure() {
        let mut alloc = SimAlloc::new();
        let mut layout = CodeLayout::new(&mut alloc);
        // 64 x 4 KB = 256 KB of text: far beyond a 32 KB L1I.
        let regions = layout.regions(64, 4096);
        let mut m = Machine::new(MachineConfig::broadwell());
        let mut rng = Rng::with_seed(1);
        for _ in 0..5_000 {
            regions[rng.index(regions.len())].call(&mut m, 1000);
        }
        let mpki = m.counters().mpki(m.counters().l1i_misses);
        assert!(mpki > 5.0, "expected heavy icache pressure, mpki {mpki}");
    }
}
