//! A xapian-like search engine serving one leaf node.
//!
//! Mirrors the structure of a search leaf: an inverted index mapping terms
//! to posting lists, per-document metadata, and document text for snippet
//! generation. A query stems its term, probes the term dictionary, streams
//! the posting list while scoring (with data-dependent top-k heap
//! branches), and then touches the top documents' content. The
//! dataset-generator parameters (Table III) are the Zipf skew of the query
//! distribution, the term-frequency cap on which terms are queried, and the
//! average document length.

use crate::dataset::SizeDist;
use crate::engine::{App, CodeLayout, CodeRegion, ServicePaths};
use datamime_sim::{Addr, Machine, Segment, SimAlloc};
use datamime_stats::dist::Zipf;
use datamime_stats::Rng;

/// Dataset configuration for [`SearchEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Number of indexed documents.
    pub n_docs: usize,
    /// Number of distinct terms in the dictionary.
    pub n_terms: usize,
    /// Document length distribution (bytes, clamped to `[64, 64 KiB]`).
    pub doc_length: SizeDist,
    /// Zipf skew of the query-term distribution.
    pub query_skew: f64,
    /// Fraction of the most frequent terms excluded from queries
    /// (`0` queries everything; `0.01` skips the top 1% of terms). This is
    /// the "term frequency" upper-limit knob of Table III.
    pub term_freq_cap: f64,
    /// Seed for index construction.
    pub seed: u64,
}

impl SearchConfig {
    /// The paper's target workload: TailBench's 2013 English-Wikipedia
    /// index with a Zipfian query distribution — long-ish, log-normal
    /// document lengths and no term cap.
    pub fn wikipedia_target() -> Self {
        SearchConfig {
            n_docs: 40_000,
            n_terms: 24_000,
            doc_length: SizeDist::LogNormal {
                mu: 7.2,
                sigma: 0.8,
            }, // ~1.8 KB median
            query_skew: 0.9,
            term_freq_cap: 0.0,
            seed: 0x3148,
        }
    }

    /// The alternative public dataset of Fig. 1/3: an index built from a
    /// StackOverflow dump — shorter posts, flatter query mix.
    pub fn stackoverflow_public() -> Self {
        SearchConfig {
            n_docs: 60_000,
            n_terms: 24_000,
            doc_length: SizeDist::Normal {
                mean: 600.0,
                std: 250.0,
            },
            query_skew: 0.5,
            term_freq_cap: 0.0,
            seed: 0x50F,
        }
    }
}

const POSTING_BYTES: u64 = 8; // (doc id, term frequency)
/// Fraction of queries with two terms (AND semantics): the engine streams
/// both posting lists and merge-intersects them.
const MULTI_TERM_FRACTION: f64 = 0.3;
const DOC_META_BYTES: u64 = 48;
const DICT_ENTRY_BYTES: u64 = 32;
const TOP_K: usize = 10;
const MIN_DOC: u64 = 64;
const MAX_DOC: u64 = 64 * 1024;

#[derive(Debug, Clone, Copy)]
struct Doc {
    content: Addr,
    bytes: u64,
}

#[derive(Debug, Clone, Copy)]
struct Term {
    postings: Addr,
    len: u32,
}

/// The search-engine leaf (see module docs).
#[derive(Debug)]
pub struct SearchEngine {
    cfg: SearchConfig,
    docs: Vec<Doc>,
    terms: Vec<Term>,
    dict: Addr,
    doc_meta: Addr,
    query_dist: Zipf,
    /// First queryable term rank (frequency cap excludes `0..first`).
    first_rank: usize,
    footprint: u64,
    parse: CodeRegion,
    stem: CodeRegion,
    dict_probe: CodeRegion,
    score_loop: CodeRegion,
    heap_code: CodeRegion,
    snippet: CodeRegion,
    respond: CodeRegion,
    aux_paths: ServicePaths,
}

impl SearchEngine {
    /// Builds the index from a dataset configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no documents/terms,
    /// invalid skew, or a cap that excludes every term).
    pub fn new(cfg: SearchConfig) -> Self {
        assert!(cfg.n_docs > 0 && cfg.n_terms > 0, "index cannot be empty");
        assert!(
            (0.0..1.0).contains(&cfg.term_freq_cap),
            "cap must be in [0,1)"
        );
        let mut rng = Rng::with_seed(cfg.seed);
        let mut alloc = SimAlloc::new();
        let mut layout = CodeLayout::new(&mut alloc);
        let parse = layout.region(4 * 1024);
        let stem = layout.region(6 * 1024); // stemmer tables are code+data heavy
        let dict_probe = layout.region(2 * 1024);
        let score_loop = layout.region_with_ilp(1536, 2.2);
        let heap_code = layout.region(1024);
        let snippet = layout.region(5 * 1024);
        let respond = layout.region(4 * 1024);
        let aux_paths = ServicePaths::new(&mut layout, 10, 2 * 1024);

        let dict = alloc
            .alloc(Segment::Heap, cfg.n_terms as u64 * DICT_ENTRY_BYTES)
            .expect("dictionary");
        let doc_meta = alloc
            .alloc(Segment::Heap, cfg.n_docs as u64 * DOC_META_BYTES)
            .expect("doc metadata");

        let mut footprint =
            cfg.n_terms as u64 * DICT_ENTRY_BYTES + cfg.n_docs as u64 * DOC_META_BYTES;

        let mut docs = Vec::with_capacity(cfg.n_docs);
        for _ in 0..cfg.n_docs {
            let bytes = cfg.doc_length.sample_bytes(&mut rng, MIN_DOC, MAX_DOC);
            let content = alloc.alloc(Segment::Heap, bytes).expect("doc content");
            docs.push(Doc { content, bytes });
            footprint += bytes;
        }

        // Term rank r appears in ~n_docs * 0.4 / (r+1)^0.7 documents: the
        // classic head-heavy document-frequency curve of text corpora.
        let mut terms = Vec::with_capacity(cfg.n_terms);
        for r in 0..cfg.n_terms {
            let df = (cfg.n_docs as f64 * 0.4 / ((r + 1) as f64).powf(0.7)).ceil() as u32;
            let len = df.clamp(1, cfg.n_docs as u32);
            let postings = alloc
                .alloc(Segment::Heap, u64::from(len) * POSTING_BYTES)
                .expect("posting list");
            terms.push(Term { postings, len });
            footprint += u64::from(len) * POSTING_BYTES;
        }

        let first_rank = ((cfg.n_terms as f64) * cfg.term_freq_cap) as usize;
        assert!(
            first_rank < cfg.n_terms,
            "frequency cap excludes every term"
        );
        let query_dist =
            Zipf::new(cfg.n_terms - first_rank, cfg.query_skew).expect("invalid query skew");

        SearchEngine {
            cfg,
            docs,
            terms,
            dict,
            doc_meta,
            query_dist,
            first_rank,
            footprint,
            parse,
            stem,
            dict_probe,
            score_loop,
            heap_code,
            snippet,
            respond,
            aux_paths,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.cfg
    }
}

impl App for SearchEngine {
    fn name(&self) -> &str {
        "xapian"
    }

    fn serve(&mut self, machine: &mut Machine, rng: &mut Rng) {
        self.parse.call(machine, 600);
        self.stem.call(machine, 900);
        self.aux_paths.touch(machine, rng, 2, 300);

        let rank = self.first_rank + self.query_dist.sample_rank(rng);
        let term = self.terms[rank];
        machine.load(self.dict + rank as u64 * DICT_ENTRY_BYTES, DICT_ENTRY_BYTES);
        self.dict_probe.call(machine, 300);

        // Multi-term queries intersect a second posting list (AND
        // semantics): extra dictionary probe, merge branches per chunk.
        let second = if rng.bool(MULTI_TERM_FRACTION) {
            let r2 = self.first_rank + self.query_dist.sample_rank(rng);
            machine.load(self.dict + r2 as u64 * DICT_ENTRY_BYTES, DICT_ENTRY_BYTES);
            self.dict_probe.call(machine, 250);
            self.stem.call_span(machine, 2048, 1024, 400);
            Some(self.terms[r2])
        } else {
            None
        };

        // Stream the posting list, scoring each posting; every ~8 postings
        // a candidate challenges the top-k heap (data-dependent branch).
        let len = u64::from(term.len);
        let mut streamed = 0u64;
        let mut streamed2 = 0u64;
        while streamed < len {
            let chunk = (len - streamed).min(64); // 512 B of postings
            machine.load(
                term.postings + streamed * POSTING_BYTES,
                chunk * POSTING_BYTES,
            );
            self.score_loop.call(machine, 6 * chunk);
            if let Some(t2) = second {
                // Advance the second list in lockstep (galloping merge).
                let len2 = u64::from(t2.len);
                if streamed2 < len2 {
                    let chunk2 = (len2 - streamed2).min(chunk);
                    machine.load(
                        t2.postings + streamed2 * POSTING_BYTES,
                        chunk2 * POSTING_BYTES,
                    );
                    streamed2 += chunk2;
                    // Merge comparisons: doc-id order is data-dependent.
                    for c in 0..(chunk2 / 8).max(1) {
                        self.score_loop.branch(machine, 256 + c * 4, rng.bool(0.5));
                    }
                    self.score_loop.call(machine, 3 * chunk2);
                }
            }
            for c in 0..chunk / 8 {
                let candidate_wins = rng.bool(0.2);
                self.heap_code.branch(machine, 64 + c * 4, candidate_wins);
                if candidate_wins {
                    self.heap_code.call(machine, 60);
                }
            }
            streamed += chunk;
        }

        // Touch the metadata + a snippet of content for the top documents.
        let hits = (term.len as usize).min(TOP_K);
        for h in 0..hits {
            // Scatter across the postings' documents.
            let doc_id = (rank * 2654435761 + h * 40503) % self.docs.len();
            machine.load(
                self.doc_meta + doc_id as u64 * DOC_META_BYTES,
                DOC_META_BYTES,
            );
            let doc = self.docs[doc_id];
            let snippet_bytes = doc.bytes.min(1024);
            machine.load(doc.content, snippet_bytes);
            self.snippet.call(machine, 200 + snippet_bytes / 4);
        }

        self.respond.call(machine, 800);
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamime_sim::MachineConfig;

    fn run(cfg: SearchConfig, queries: usize) -> Machine {
        let mut engine = SearchEngine::new(cfg);
        let mut machine = Machine::new(MachineConfig::broadwell());
        let mut rng = Rng::with_seed(21);
        for _ in 0..queries {
            engine.serve(&mut machine, &mut rng);
        }
        machine
    }

    fn small(n_docs: usize) -> SearchConfig {
        SearchConfig {
            n_docs,
            n_terms: 4_000,
            ..SearchConfig::wikipedia_target()
        }
    }

    #[test]
    fn queries_execute() {
        let m = run(small(2_000), 300);
        assert!(m.counters().instructions > 300 * 2000);
        assert!(m.counters().branch_mispredicts > 0);
    }

    #[test]
    fn skewed_queries_cache_better() {
        let flat = run(
            SearchConfig {
                query_skew: 0.0,
                ..small(20_000)
            },
            600,
        );
        let skewed = run(
            SearchConfig {
                query_skew: 1.3,
                ..small(20_000)
            },
            600,
        );
        let f = flat.counters().mpki(flat.counters().llc_misses);
        let s = skewed.counters().mpki(skewed.counters().llc_misses);
        assert!(s < f, "skewed {s} vs flat {f}");
    }

    #[test]
    fn term_cap_skips_hot_terms_and_shortens_postings() {
        let uncapped = run(
            SearchConfig {
                term_freq_cap: 0.0,
                ..small(20_000)
            },
            400,
        );
        let capped = run(
            SearchConfig {
                term_freq_cap: 0.3,
                ..small(20_000)
            },
            400,
        );
        // Capped queries avoid the long head posting lists, so they stream
        // fewer postings and retire fewer instructions per query.
        assert!(capped.counters().instructions < uncapped.counters().instructions);
    }

    #[test]
    fn longer_documents_grow_footprint() {
        let short = SearchEngine::new(SearchConfig {
            doc_length: SizeDist::Fixed(128.0),
            ..small(5_000)
        });
        let long = SearchEngine::new(SearchConfig {
            doc_length: SizeDist::Fixed(8192.0),
            ..small(5_000)
        });
        assert!(long.footprint_bytes() > short.footprint_bytes() * 4);
    }

    #[test]
    #[should_panic(expected = "cap must be in [0,1)")]
    fn full_cap_panics() {
        SearchEngine::new(SearchConfig {
            term_freq_cap: 1.0,
            ..small(100)
        });
    }

    #[test]
    fn deterministic() {
        let a = run(small(2_000), 100);
        let b = run(small(2_000), 100);
        assert_eq!(a.counters(), b.counters());
    }
}
