//! A silo-like transactional in-memory database.
//!
//! Mirrors the structure of Silo (SOSP'13) running TPC-C-style workloads:
//! row-store tables ([`RecordArray`]) indexed by B+trees
//! ([`BTreeIndex`]), with the five TPC-C transaction types plus the
//! synthetic *bidding* transaction that the paper uses as `silo`'s target
//! workload. The dataset-generator parameters (Table III) are the number of
//! warehouses and the transaction-type mix.

use crate::btree::{BTreeIndex, RecordArray};
use crate::engine::{App, CodeLayout, CodeRegion};
use datamime_sim::{Machine, SimAlloc};
use datamime_stats::dist::Categorical;
use datamime_stats::Rng;

/// Transaction types the database serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxKind {
    /// TPC-C new-order: the read-write backbone transaction.
    NewOrder,
    /// TPC-C payment.
    Payment,
    /// TPC-C delivery (batch of deferred orders).
    Delivery,
    /// TPC-C order-status (read-only).
    OrderStatus,
    /// TPC-C stock-level (read-only scan).
    StockLevel,
    /// The paper's synthetic bidding transaction: read an item's current
    /// bid, compare, and conditionally overwrite.
    Bid,
}

/// All transaction kinds in a canonical order.
pub const TX_KINDS: [TxKind; 6] = [
    TxKind::NewOrder,
    TxKind::Payment,
    TxKind::Delivery,
    TxKind::OrderStatus,
    TxKind::StockLevel,
    TxKind::Bid,
];

/// Dataset configuration for [`SiloDb`].
#[derive(Debug, Clone, PartialEq)]
pub struct SiloConfig {
    /// TPC-C scale factor.
    pub n_warehouses: u32,
    /// Weights over [`TX_KINDS`] (normalized internally; all-zero is
    /// invalid).
    pub tx_mix: [f64; 6],
    /// Number of items in the bidding table (used by [`TxKind::Bid`]).
    pub n_bid_items: u64,
    /// Seed for request randomness derived state.
    pub seed: u64,
}

impl SiloConfig {
    /// The paper's target workload for `silo`: a synthetic bidding dataset
    /// where every transaction bids on a random item.
    pub fn bidding_target() -> Self {
        SiloConfig {
            n_warehouses: 1,
            tx_mix: [0.0, 0.0, 0.0, 0.0, 0.0, 1.0],
            n_bid_items: 6_000_000,
            seed: 0xB1D,
        }
    }

    /// TailBench's default public dataset: the standard TPC-C mix
    /// (45/43/4/4/4) at a small scale.
    pub fn tpcc_default() -> Self {
        SiloConfig {
            n_warehouses: 4,
            tx_mix: [0.45, 0.43, 0.04, 0.04, 0.04, 0.0],
            n_bid_items: 1,
            seed: 0x79CC,
        }
    }
}

// TPC-C cardinalities per warehouse and row sizes (bytes).
const DISTRICTS_PER_WH: u64 = 10;
const CUSTOMERS_PER_WH: u64 = 30_000;
const STOCK_PER_WH: u64 = 100_000;
const N_ITEMS: u64 = 100_000;
const ORDER_RING: u64 = 65_536; // recent orders kept per warehouse

const WAREHOUSE_BYTES: u64 = 89;
const DISTRICT_BYTES: u64 = 95;
const CUSTOMER_BYTES: u64 = 655;
const STOCK_BYTES: u64 = 306;
const ITEM_BYTES: u64 = 82;
const ORDER_BYTES: u64 = 24;
const ORDERLINE_BYTES: u64 = 54;
const BID_BYTES: u64 = 64;

/// The silo-like database (see module docs).
#[derive(Debug)]
pub struct SiloDb {
    cfg: SiloConfig,
    mix: Categorical,
    warehouses: RecordArray,
    districts: RecordArray,
    customers: RecordArray,
    stock: RecordArray,
    items: RecordArray,
    orders: RecordArray,
    orderlines: RecordArray,
    bids: RecordArray,
    customer_idx: BTreeIndex,
    /// TPC-C secondary index: customer last name -> candidate customers.
    customer_name_idx: BTreeIndex,
    stock_idx: BTreeIndex,
    item_idx: BTreeIndex,
    order_idx: BTreeIndex,
    bid_idx: BTreeIndex,
    order_cursor: u64,
    footprint: u64,
    // Code regions: one per transaction type (silo's per-tx logic), plus
    // shared B+tree and tuple-access code.
    tx_code: Vec<CodeRegion>,
    btree_code: CodeRegion,
    tuple_code: CodeRegion,
    commit_code: CodeRegion,
}

impl SiloDb {
    /// Builds and populates the database.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero warehouses, an
    /// all-zero transaction mix, or zero bid items).
    pub fn new(cfg: SiloConfig) -> Self {
        assert!(cfg.n_warehouses > 0, "need at least one warehouse");
        assert!(cfg.n_bid_items > 0, "need at least one bid item");
        let mix = Categorical::new(&cfg.tx_mix).expect("invalid transaction mix");
        let w = cfg.n_warehouses as u64;
        let mut alloc = SimAlloc::new();
        let mut layout = CodeLayout::new(&mut alloc);
        let tx_code = layout.regions(TX_KINDS.len(), 7 * 1024);
        let btree_code = layout.region(5 * 1024);
        let tuple_code = layout.region(3 * 1024);
        let commit_code = layout.region(4 * 1024);

        let warehouses = RecordArray::new(&mut alloc, w, WAREHOUSE_BYTES);
        let districts = RecordArray::new(&mut alloc, w * DISTRICTS_PER_WH, DISTRICT_BYTES);
        let customers = RecordArray::new(&mut alloc, w * CUSTOMERS_PER_WH, CUSTOMER_BYTES);
        let stock = RecordArray::new(&mut alloc, w * STOCK_PER_WH, STOCK_BYTES);
        let items = RecordArray::new(&mut alloc, N_ITEMS, ITEM_BYTES);
        let orders = RecordArray::new(&mut alloc, w * ORDER_RING, ORDER_BYTES);
        let orderlines = RecordArray::new(&mut alloc, w * ORDER_RING * 10, ORDERLINE_BYTES);
        let bids = RecordArray::new(&mut alloc, cfg.n_bid_items, BID_BYTES);

        let customer_idx = BTreeIndex::new(&mut alloc, w * CUSTOMERS_PER_WH, 16);
        // TPC-C generates customers from 1000 last names per district.
        let customer_name_idx =
            BTreeIndex::new(&mut alloc, (w * DISTRICTS_PER_WH * 1000).max(1), 16);
        let stock_idx = BTreeIndex::new(&mut alloc, w * STOCK_PER_WH, 16);
        let item_idx = BTreeIndex::new(&mut alloc, N_ITEMS, 16);
        let order_idx = BTreeIndex::new(&mut alloc, w * ORDER_RING, 16);
        let bid_idx = BTreeIndex::new(&mut alloc, cfg.n_bid_items, 16);

        let footprint = warehouses.footprint_bytes()
            + districts.footprint_bytes()
            + customers.footprint_bytes()
            + stock.footprint_bytes()
            + items.footprint_bytes()
            + orders.footprint_bytes()
            + orderlines.footprint_bytes()
            + bids.footprint_bytes()
            + customer_idx.footprint_bytes()
            + customer_name_idx.footprint_bytes()
            + stock_idx.footprint_bytes()
            + item_idx.footprint_bytes()
            + order_idx.footprint_bytes()
            + bid_idx.footprint_bytes();

        SiloDb {
            cfg,
            mix,
            warehouses,
            districts,
            customers,
            stock,
            items,
            orders,
            orderlines,
            bids,
            customer_idx,
            customer_name_idx,
            stock_idx,
            item_idx,
            order_idx,
            bid_idx,
            order_cursor: 0,
            footprint,
            tx_code,
            btree_code,
            tuple_code,
            commit_code,
        }
    }

    /// The database's configuration.
    pub fn config(&self) -> &SiloConfig {
        &self.cfg
    }

    fn w(&self) -> u64 {
        self.cfg.n_warehouses as u64
    }

    fn tx_new_order(&mut self, m: &mut Machine, rng: &mut Rng) {
        let code = self.tx_code[0];
        code.call(m, 2200);
        let wh = rng.below(self.w());
        self.warehouses.read(m, wh);
        let d = wh * DISTRICTS_PER_WH + rng.below(DISTRICTS_PER_WH);
        self.districts.read(m, d);
        self.districts.write(m, d, 16); // next_o_id
        let c = wh * CUSTOMERS_PER_WH + rng.below(CUSTOMERS_PER_WH);
        self.customer_idx.lookup(m, &self.btree_code, c);
        self.customers.read(m, c);
        self.tuple_code.call(m, 400);

        let n_items = 5 + rng.below(11);
        for ol in 0..n_items {
            let item = rng.below(N_ITEMS);
            self.item_idx.lookup(m, &self.btree_code, item);
            self.items.read(m, item);
            let s = wh * STOCK_PER_WH + item;
            self.stock_idx.lookup(m, &self.btree_code, s);
            self.stock.read(m, s);
            // Stock below threshold: data-dependent replenishment branch.
            code.branch(m, 512 + ol * 4, item.is_multiple_of(10));
            self.stock.write(m, s, 24);
            let line = self.order_cursor * 10 + ol;
            self.orderlines.write(m, line, ORDERLINE_BYTES);
            self.tuple_code.call(m, 350);
        }
        self.orders.write(m, self.order_cursor, ORDER_BYTES);
        self.order_idx
            .update(m, &self.btree_code, self.order_cursor);
        self.order_cursor = (self.order_cursor + 1) % self.orders.len();
        self.commit_code.call(m, 900);
    }

    fn tx_payment(&mut self, m: &mut Machine, rng: &mut Rng) {
        let code = self.tx_code[1];
        code.call(m, 1500);
        let wh = rng.below(self.w());
        self.warehouses.read(m, wh);
        self.warehouses.write(m, wh, 16);
        let d = wh * DISTRICTS_PER_WH + rng.below(DISTRICTS_PER_WH);
        self.districts.read(m, d);
        self.districts.write(m, d, 16);
        // TPC-C: 60% of payments select the customer by last name through
        // the secondary index, then scan the candidate group to pick the
        // median customer.
        let by_name = rng.bool(0.6);
        code.branch(m, 550, by_name);
        let c = wh * CUSTOMERS_PER_WH + rng.below(CUSTOMERS_PER_WH);
        if by_name {
            let name = rng.below(self.customer_name_idx.len());
            self.customer_name_idx.lookup(m, &self.btree_code, name);
            // ~3 customers share a last name in a district; read them all.
            for k in 0..3 {
                self.customers.read(m, (c + k * 997) % self.customers.len());
            }
            self.tuple_code.call(m, 250);
        } else {
            self.customer_idx.lookup(m, &self.btree_code, c);
        }
        self.customers.read(m, c);
        self.customers.write(m, c, 48);
        // 15% of payments go to a remote warehouse in TPC-C.
        code.branch(m, 600, rng.bool(0.15));
        self.commit_code.call(m, 700);
    }

    fn tx_delivery(&mut self, m: &mut Machine, rng: &mut Rng) {
        let code = self.tx_code[2];
        code.call(m, 2000);
        let wh = rng.below(self.w());
        for d in 0..DISTRICTS_PER_WH {
            let o = (self.order_cursor + d * 97) % self.orders.len();
            self.order_idx.lookup(m, &self.btree_code, o);
            self.orders.read(m, o);
            self.orders.write(m, o, 8);
            for ol in 0..6 {
                self.orderlines.read(m, o * 10 + ol);
                self.orderlines.write(m, o * 10 + ol, 8);
            }
            let c = wh * CUSTOMERS_PER_WH + (o % CUSTOMERS_PER_WH);
            self.customers.write(m, c, 24);
            self.tuple_code.call(m, 300);
        }
        self.commit_code.call(m, 900);
    }

    fn tx_order_status(&mut self, m: &mut Machine, rng: &mut Rng) {
        let code = self.tx_code[3];
        code.call(m, 1200);
        let wh = rng.below(self.w());
        let c = wh * CUSTOMERS_PER_WH + rng.below(CUSTOMERS_PER_WH);
        self.customer_idx.lookup(m, &self.btree_code, c);
        self.customers.read(m, c);
        let o = rng.below(self.orders.len());
        self.order_idx.lookup(m, &self.btree_code, o);
        self.orders.read(m, o);
        let lines = 5 + rng.below(11);
        for ol in 0..lines {
            self.orderlines.read(m, o * 10 + ol);
        }
        self.tuple_code.call(m, 300);
    }

    fn tx_stock_level(&mut self, m: &mut Machine, rng: &mut Rng) {
        let code = self.tx_code[4];
        code.call(m, 1800);
        let wh = rng.below(self.w());
        let d = wh * DISTRICTS_PER_WH + rng.below(DISTRICTS_PER_WH);
        self.districts.read(m, d);
        // Scan the order lines of the last 20 orders and probe stock.
        for k in 0..20u64 {
            let o = (self.order_cursor + self.orders.len() - 1 - k) % self.orders.len();
            for ol in 0..5 {
                self.orderlines.read(m, o * 10 + ol);
                let item = (o * 10 + ol) % N_ITEMS;
                let s = wh * STOCK_PER_WH + item;
                self.stock_idx.lookup(m, &self.btree_code, s);
                self.stock.read(m, s);
                // Below-threshold count: data-dependent.
                code.branch(m, 256 + ol, s.is_multiple_of(4));
            }
        }
        self.tuple_code.call(m, 500);
    }

    fn tx_bid(&mut self, m: &mut Machine, rng: &mut Rng) {
        let code = self.tx_code[5];
        code.call(m, 1100);
        let item = rng.below(self.cfg.n_bid_items);
        self.bid_idx.lookup(m, &self.btree_code, item);
        self.bids.read(m, item);
        // New bid larger than the current one about half the time.
        let wins = rng.bool(0.5);
        code.branch(m, 300, wins);
        if wins {
            self.bids.write(m, item, 24);
            self.commit_code.call(m, 500);
        }
        self.tuple_code.call(m, 200);
    }
}

impl App for SiloDb {
    fn name(&self) -> &str {
        "silo"
    }

    fn serve(&mut self, machine: &mut Machine, rng: &mut Rng) {
        match TX_KINDS[self.mix.sample_index(rng)] {
            TxKind::NewOrder => self.tx_new_order(machine, rng),
            TxKind::Payment => self.tx_payment(machine, rng),
            TxKind::Delivery => self.tx_delivery(machine, rng),
            TxKind::OrderStatus => self.tx_order_status(machine, rng),
            TxKind::StockLevel => self.tx_stock_level(machine, rng),
            TxKind::Bid => self.tx_bid(machine, rng),
        }
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamime_sim::MachineConfig;

    fn run(cfg: SiloConfig, requests: usize) -> Machine {
        let mut db = SiloDb::new(cfg);
        let mut machine = Machine::new(MachineConfig::broadwell());
        let mut rng = Rng::with_seed(5);
        for _ in 0..requests {
            db.serve(&mut machine, &mut rng);
        }
        machine
    }

    #[test]
    fn tpcc_mix_executes() {
        let m = run(SiloConfig::tpcc_default(), 500);
        assert!(m.counters().instructions > 500 * 1000);
        assert!(m.counters().branch_mispredicts > 0);
    }

    #[test]
    fn bidding_target_has_high_llc_mpki() {
        // 6 M items x 64 B = 384 MB of bid records: random probes miss the
        // 12 MB LLC almost every time, the paper's stated property of silo.
        let m = run(SiloConfig::bidding_target(), 2_000);
        let mpki = m.counters().mpki(m.counters().llc_misses);
        assert!(mpki > 2.0, "bidding should be memory-bound, mpki {mpki}");
    }

    #[test]
    fn more_warehouses_grow_footprint_and_misses() {
        let one = SiloDb::new(SiloConfig {
            n_warehouses: 1,
            ..SiloConfig::tpcc_default()
        });
        let eight = SiloDb::new(SiloConfig {
            n_warehouses: 8,
            ..SiloConfig::tpcc_default()
        });
        assert!(eight.footprint_bytes() > one.footprint_bytes() * 4);

        let small = run(
            SiloConfig {
                n_warehouses: 1,
                ..SiloConfig::tpcc_default()
            },
            800,
        );
        let large = run(
            SiloConfig {
                n_warehouses: 16,
                ..SiloConfig::tpcc_default()
            },
            800,
        );
        let s = small.counters().mpki(small.counters().llc_misses);
        let l = large.counters().mpki(large.counters().llc_misses);
        assert!(l > s, "large {l} vs small {s}");
    }

    #[test]
    fn read_only_mix_writes_less() {
        let ro = run(
            SiloConfig {
                tx_mix: [0.0, 0.0, 0.0, 0.5, 0.5, 0.0],
                ..SiloConfig::tpcc_default()
            },
            500,
        );
        let rw = run(
            SiloConfig {
                tx_mix: [0.5, 0.5, 0.0, 0.0, 0.0, 0.0],
                ..SiloConfig::tpcc_default()
            },
            500,
        );
        // Write-heavy mixes must produce more memory write-back traffic
        // relative to their instruction count.
        let ro_rate = ro.counters().memory_bytes as f64 / ro.counters().instructions as f64;
        let rw_rate = rw.counters().memory_bytes as f64 / rw.counters().instructions as f64;
        assert!(rw_rate > 0.0 && ro_rate >= 0.0);
    }

    #[test]
    fn mix_changes_code_footprint() {
        let single = run(
            SiloConfig {
                tx_mix: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                ..SiloConfig::tpcc_default()
            },
            800,
        );
        let spread = run(SiloConfig::tpcc_default(), 800);
        let s = single.counters().mpki(single.counters().l1i_misses);
        let m = spread.counters().mpki(spread.counters().l1i_misses);
        assert!(m >= s, "diverse mix {m} vs single {s}");
    }

    #[test]
    #[should_panic(expected = "invalid transaction mix")]
    fn all_zero_mix_panics() {
        SiloDb::new(SiloConfig {
            tx_mix: [0.0; 6],
            ..SiloConfig::tpcc_default()
        });
    }

    #[test]
    fn deterministic() {
        let a = run(SiloConfig::tpcc_default(), 300);
        let b = run(SiloConfig::tpcc_default(), 300);
        assert_eq!(a.counters(), b.counters());
    }
}
