//! A masstree-like cache-crafted key-value store.
//!
//! Used as a *target-only* workload in the paper's Sec. V-C case study:
//! Datamime clones it with a *different program* (the memcached-like
//! [`crate::KvStore`]). Masstree is a trie of wide B+tree nodes designed
//! for cache efficiency ("cache craftiness"), so compared to the hash-table
//! store it has a much smaller instruction footprint, fewer pointer chases,
//! and lower cache miss rates — the structural differences Table IV
//! documents.

use crate::btree::BTreeIndex;
use crate::engine::{App, CodeLayout, CodeRegion};
use datamime_sim::{Addr, Machine, Segment, SimAlloc};
use datamime_stats::dist::Zipf;
use datamime_stats::Rng;

/// Dataset configuration for [`Masstree`].
#[derive(Debug, Clone, PartialEq)]
pub struct MasstreeConfig {
    /// Number of resident keys.
    pub n_keys: u64,
    /// Value size in bytes (YCSB-style fixed records).
    pub value_bytes: u64,
    /// Fraction of GET requests.
    pub get_ratio: f64,
    /// Zipf skew of key popularity.
    pub popularity_skew: f64,
    /// Seed for construction.
    pub seed: u64,
}

impl MasstreeConfig {
    /// The paper's target: masstree driven with YCSB.
    pub fn ycsb_target() -> Self {
        MasstreeConfig {
            n_keys: 1_500_000,
            value_bytes: 1024,
            get_ratio: 0.5,
            popularity_skew: 0.85,
            seed: 0x3A55,
        }
    }
}

/// The masstree-like store (see module docs).
#[derive(Debug)]
pub struct Masstree {
    cfg: MasstreeConfig,
    index: BTreeIndex,
    values: Addr,
    value_stride: u64,
    popularity: Zipf,
    footprint: u64,
    // Deliberately compact code: the whole engine is a handful of small,
    // hot functions.
    request_path: CodeRegion,
    tree_code: CodeRegion,
    value_code: CodeRegion,
}

impl Masstree {
    /// Builds and populates the store.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate.
    pub fn new(cfg: MasstreeConfig) -> Self {
        assert!(cfg.n_keys > 0, "store needs keys");
        assert!(cfg.value_bytes > 0, "values must be non-empty");
        let mut alloc = SimAlloc::new();
        let mut layout = CodeLayout::new(&mut alloc);
        let request_path = layout.region(6 * 1024);
        let tree_code = layout.region(4 * 1024);
        let value_code = layout.region(1024);

        // Wide nodes (fanout 64) keep the tree shallow: cache craftiness.
        let index = BTreeIndex::new(&mut alloc, cfg.n_keys, 64);
        let value_stride = cfg.value_bytes.div_ceil(8) * 8;
        let values = alloc
            .alloc(Segment::Heap, cfg.n_keys * value_stride)
            .expect("value array");
        let footprint = index.footprint_bytes() + cfg.n_keys * value_stride;
        let popularity =
            Zipf::new(cfg.n_keys as usize, cfg.popularity_skew).expect("invalid popularity skew");

        Masstree {
            cfg,
            index,
            values,
            value_stride,
            popularity,
            footprint,
            request_path,
            tree_code,
            value_code,
        }
    }

    /// The store's configuration.
    pub fn config(&self) -> &MasstreeConfig {
        &self.cfg
    }

    /// Depth of the underlying trie/B+tree.
    pub fn depth(&self) -> usize {
        self.index.depth()
    }
}

impl App for Masstree {
    fn name(&self) -> &str {
        "masstree"
    }

    fn serve(&mut self, machine: &mut Machine, rng: &mut Rng) {
        self.request_path.call(machine, 1200);
        // Scatter popularity ranks across the key space.
        let rank = self.popularity.sample_rank(rng) as u64;
        let key = rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.cfg.n_keys;
        let is_get = rng.bool(self.cfg.get_ratio);
        self.request_path.branch(machine, 128, is_get);
        // Key-slice comparisons and node-permutation probes: data-dependent
        // on effectively random key bytes (masstree's branch-heavy descent).
        for b in 0..14u64 {
            self.tree_code
                .branch(machine, 512 + b * 4, (key >> (b + 8)) & 1 == 1);
        }
        self.index.lookup(machine, &self.tree_code, key);
        let addr = self.values + key * self.value_stride;
        if is_get {
            machine.load(addr, self.cfg.value_bytes);
            self.value_code.call(machine, 30 + self.cfg.value_bytes / 8);
        } else {
            machine.store(addr, self.cfg.value_bytes);
            self.value_code.call(machine, 40 + self.cfg.value_bytes / 8);
            self.index.update(machine, &self.tree_code, key);
        }
        self.request_path.call_span(machine, 4096, 1024, 500);
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kvstore::{KvConfig, KvStore};
    use datamime_sim::MachineConfig;

    fn run_requests<A: App>(app: &mut A, n: usize) -> Machine {
        let mut machine = Machine::new(MachineConfig::broadwell());
        let mut rng = Rng::with_seed(41);
        for _ in 0..n {
            app.serve(&mut machine, &mut rng);
        }
        machine
    }

    #[test]
    fn shallow_wide_tree() {
        let t = Masstree::new(MasstreeConfig::ycsb_target());
        assert!(t.depth() <= 4, "wide nodes should keep the tree shallow");
    }

    #[test]
    fn lower_icache_pressure_than_hash_kvstore() {
        // The Table IV contrast: masstree's compact engine misses the L1I
        // far less than memcached's sprawling code paths.
        let mut mt = Masstree::new(MasstreeConfig {
            n_keys: 100_000,
            ..MasstreeConfig::ycsb_target()
        });
        let mut kv = KvStore::new(KvConfig::facebook_like());
        let m1 = run_requests(&mut mt, 2_000);
        let m2 = run_requests(&mut kv, 2_000);
        let mt_mpki = m1.counters().mpki(m1.counters().l1i_misses);
        let kv_mpki = m2.counters().mpki(m2.counters().l1i_misses);
        assert!(
            mt_mpki < kv_mpki,
            "masstree {mt_mpki} vs memcached {kv_mpki}"
        );
    }

    #[test]
    fn large_key_space_is_memory_bound() {
        let mut t = Masstree::new(MasstreeConfig::ycsb_target());
        let m = run_requests(&mut t, 2_000);
        let mpki = m.counters().mpki(m.counters().llc_misses);
        assert!(mpki > 1.0, "1.5M x 512B values exceed the LLC: {mpki}");
    }

    #[test]
    fn writes_touch_index() {
        let mut ro = Masstree::new(MasstreeConfig {
            get_ratio: 1.0,
            n_keys: 10_000,
            ..MasstreeConfig::ycsb_target()
        });
        let mut wo = Masstree::new(MasstreeConfig {
            get_ratio: 0.0,
            n_keys: 10_000,
            ..MasstreeConfig::ycsb_target()
        });
        let m_ro = run_requests(&mut ro, 1_000);
        let m_wo = run_requests(&mut wo, 1_000);
        assert!(m_wo.counters().instructions > m_ro.counters().instructions);
    }

    #[test]
    #[should_panic(expected = "store needs keys")]
    fn zero_keys_panics() {
        Masstree::new(MasstreeConfig {
            n_keys: 0,
            ..MasstreeConfig::ycsb_target()
        });
    }
}
