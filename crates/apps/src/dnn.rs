//! A DNN-inference-as-a-service application.
//!
//! Here the *dataset is the network model* (as the paper emphasizes): each
//! request runs one inference, streaming every layer's weights and
//! activations through the cache hierarchy and retiring instructions
//! proportional to the layer's multiply-accumulate count. The
//! dataset-generator parameters (Table III) are the counts of 3×3
//! convolution, strided convolution, max-pool, and fully-connected layers,
//! plus the output channels of the first layer; target models (a scaled
//! ResNet-50) may additionally use 1×1 convolutions and residual blocks,
//! which keeps the target *outside* the generator's family.

use crate::engine::{App, CodeLayout, CodeRegion};
use datamime_sim::{Addr, Machine, Segment, SimAlloc};
use datamime_stats::Rng;

/// One layer of a [`NetSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerSpec {
    /// 3×3 convolution, stride 1, `same` padding.
    Conv3x3 {
        /// Output channels.
        out_ch: u32,
    },
    /// 3×3 convolution with stride 2 (halves spatial dims).
    Conv3x3Strided {
        /// Output channels.
        out_ch: u32,
    },
    /// 1×1 convolution (used by target models such as ResNet bottlenecks;
    /// *not* part of the generator's building blocks).
    Conv1x1 {
        /// Output channels.
        out_ch: u32,
    },
    /// 2×2 max-pooling, stride 2.
    MaxPool,
    /// Fully-connected layer (flattens its input).
    Fc {
        /// Output features.
        out: u32,
    },
}

/// A network architecture: input dimensions plus a layer stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetSpec {
    /// Input height.
    pub height: u32,
    /// Input width.
    pub width: u32,
    /// Input channels.
    pub channels: u32,
    /// The layer stack, input to output.
    pub layers: Vec<LayerSpec>,
}

impl NetSpec {
    /// A scaled-down ResNet-50-style target model: bottleneck-style stages
    /// with 1×1/3×3 convolutions and stage-wise downsampling, ending in a
    /// classifier. Channel counts are scaled to keep simulation tractable
    /// while leaving the weight footprint comparable to the LLC size.
    pub fn resnet50_scaled() -> Self {
        let mut layers = vec![LayerSpec::Conv3x3Strided { out_ch: 32 }, LayerSpec::MaxPool];
        for &(ch, blocks) in &[(64u32, 3u32), (128, 4), (256, 4)] {
            layers.push(LayerSpec::Conv3x3Strided { out_ch: ch });
            for _ in 0..blocks {
                layers.push(LayerSpec::Conv1x1 { out_ch: ch / 2 });
                layers.push(LayerSpec::Conv3x3 { out_ch: ch / 2 });
                layers.push(LayerSpec::Conv1x1 { out_ch: ch });
            }
        }
        layers.push(LayerSpec::Fc { out: 512 });
        layers.push(LayerSpec::Fc { out: 1000 });
        NetSpec {
            height: 64,
            width: 64,
            channels: 3,
            layers,
        }
    }

    /// A ShuffleNet-style compact public model (the "different dataset"
    /// red bar of Fig. 1/3): far fewer weights and MACs.
    pub fn shufflenet_like() -> Self {
        let mut layers = vec![LayerSpec::Conv3x3Strided { out_ch: 24 }, LayerSpec::MaxPool];
        for &ch in &[58u32, 116, 232] {
            layers.push(LayerSpec::Conv3x3Strided { out_ch: ch / 4 });
            layers.push(LayerSpec::Conv1x1 { out_ch: ch });
        }
        layers.push(LayerSpec::Fc { out: 1000 });
        NetSpec {
            height: 64,
            width: 64,
            channels: 3,
            layers,
        }
    }

    /// Builds a generator-family network from the Table III parameters:
    /// layer-type counts and the first layer's output channels. Strided
    /// convolutions and max-pools are interleaved through the stack to keep
    /// spatial dimensions meaningful; FC layers always sit at the end (as
    /// the paper specifies); channels double at each downsampling.
    pub fn from_generator_params(
        n_conv: u32,
        n_strided: u32,
        n_pool: u32,
        n_fc: u32,
        first_out_ch: u32,
    ) -> Self {
        let mut layers = Vec::new();
        let mut ch = first_out_ch.max(1);
        layers.push(LayerSpec::Conv3x3 { out_ch: ch });
        let n_conv = n_conv.saturating_sub(1);
        // Interleave: spread downsampling layers between conv layers.
        let down: Vec<LayerSpec> = (0..n_strided)
            .map(|_| LayerSpec::Conv3x3Strided { out_ch: 0 }) // channels set below
            .chain((0..n_pool).map(|_| LayerSpec::MaxPool))
            .collect();
        let total_body = n_conv + down.len() as u32;
        let mut di = 0usize;
        for i in 0..total_body {
            let place_down = if down.is_empty() {
                false
            } else {
                // Even spacing of downsampling layers through the body.
                (i as u64 + 1) * down.len() as u64 / (total_body as u64 + 1) > di as u64
            };
            if place_down && di < down.len() {
                match down[di] {
                    LayerSpec::Conv3x3Strided { .. } => {
                        ch = (ch * 2).min(512);
                        layers.push(LayerSpec::Conv3x3Strided { out_ch: ch });
                    }
                    other => layers.push(other),
                }
                di += 1;
            } else {
                layers.push(LayerSpec::Conv3x3 { out_ch: ch });
            }
        }
        while di < down.len() {
            match down[di] {
                LayerSpec::Conv3x3Strided { .. } => {
                    ch = (ch * 2).min(512);
                    layers.push(LayerSpec::Conv3x3Strided { out_ch: ch });
                }
                other => layers.push(other),
            }
            di += 1;
        }
        for _ in 0..n_fc {
            layers.push(LayerSpec::Fc { out: 512 });
        }
        NetSpec {
            height: 64,
            width: 64,
            channels: 3,
            layers,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct BuiltLayer {
    spec: LayerSpec,
    weights: Addr,
    weight_bytes: u64,
    in_act: Addr,
    in_bytes: u64,
    out_act: Addr,
    out_bytes: u64,
    macs: u64,
}

/// The inference server (see module docs).
#[derive(Debug)]
pub struct DnnApp {
    spec: NetSpec,
    layers: Vec<BuiltLayer>,
    input: Addr,
    input_bytes: u64,
    footprint: u64,
    frontend: CodeRegion,
    conv_kernel: CodeRegion,
    pool_kernel: CodeRegion,
    fc_kernel: CodeRegion,
    respond: CodeRegion,
}

const SIMD_MACS_PER_INSTR: u64 = 8;

impl DnnApp {
    /// Builds the network, allocating weights and activation buffers.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no layers or its spatial dimensions collapse
    /// to zero before the stack ends.
    pub fn new(spec: NetSpec) -> Self {
        assert!(!spec.layers.is_empty(), "network needs at least one layer");
        let mut alloc = SimAlloc::new();
        let mut layout = CodeLayout::new(&mut alloc);
        let frontend = layout.region(8 * 1024);
        let conv_kernel = layout.region_with_ilp(6 * 1024, 4.0); // vectorized FMA
        let pool_kernel = layout.region_with_ilp(2 * 1024, 3.0);
        let fc_kernel = layout.region_with_ilp(3 * 1024, 3.5);
        let respond = layout.region(3 * 1024);

        let mut h = spec.height as u64;
        let mut w = spec.width as u64;
        let mut c = spec.channels as u64;
        let mut flat: Option<u64> = None; // Some(features) once flattened
        let input_bytes = h * w * c * 4;
        let input = alloc
            .alloc(Segment::Heap, input_bytes)
            .expect("input buffer");
        let mut footprint = input_bytes;
        let mut in_act = input;
        let mut in_bytes = input_bytes;

        let mut layers = Vec::with_capacity(spec.layers.len());
        for &l in &spec.layers {
            let (weight_bytes, macs, out_dims): (u64, u64, (u64, u64, u64)) = match l {
                LayerSpec::Conv3x3 { out_ch } => {
                    assert!(flat.is_none(), "conv after flatten is invalid");
                    assert!(h > 0 && w > 0, "spatial dims collapsed");
                    let oc = u64::from(out_ch.max(1));
                    (9 * c * oc * 4, h * w * c * oc * 9, (h, w, oc))
                }
                LayerSpec::Conv3x3Strided { out_ch } => {
                    assert!(flat.is_none(), "conv after flatten is invalid");
                    let oc = u64::from(out_ch.max(1));
                    let (oh, ow) = ((h / 2).max(1), (w / 2).max(1));
                    (9 * c * oc * 4, oh * ow * c * oc * 9, (oh, ow, oc))
                }
                LayerSpec::Conv1x1 { out_ch } => {
                    assert!(flat.is_none(), "conv after flatten is invalid");
                    let oc = u64::from(out_ch.max(1));
                    (c * oc * 4, h * w * c * oc, (h, w, oc))
                }
                LayerSpec::MaxPool => {
                    assert!(flat.is_none(), "pool after flatten is invalid");
                    let (oh, ow) = ((h / 2).max(1), (w / 2).max(1));
                    (0, oh * ow * c * 4, (oh, ow, c))
                }
                LayerSpec::Fc { out } => {
                    // The first FC applies global average pooling over the
                    // spatial dims (standard classifier-head practice), so
                    // its input features are the channel count.
                    let in_features = flat.unwrap_or(c);
                    let o = u64::from(out.max(1));
                    flat = Some(o);
                    (in_features * o * 4, in_features * o + h * w * c, (1, 1, o))
                }
            };
            let out_bytes = out_dims.0 * out_dims.1 * out_dims.2 * 4;
            let weights = if weight_bytes > 0 {
                alloc.alloc(Segment::Heap, weight_bytes).expect("weights")
            } else {
                0
            };
            let out_act = alloc.alloc(Segment::Heap, out_bytes).expect("activations");
            footprint += weight_bytes + out_bytes;
            layers.push(BuiltLayer {
                spec: l,
                weights,
                weight_bytes,
                in_act,
                in_bytes,
                out_act,
                out_bytes,
                macs,
            });
            in_act = out_act;
            in_bytes = out_bytes;
            if flat.is_none() {
                h = out_dims.0;
                w = out_dims.1;
                c = out_dims.2;
            }
        }

        DnnApp {
            spec,
            layers,
            input,
            input_bytes,
            footprint,
            frontend,
            conv_kernel,
            pool_kernel,
            fc_kernel,
            respond,
        }
    }

    /// The network architecture.
    pub fn spec(&self) -> &NetSpec {
        &self.spec
    }

    /// Total weight bytes across layers (the model size).
    pub fn model_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_bytes).sum()
    }

    /// Total MACs for one inference.
    pub fn macs_per_inference(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    fn stream(machine: &mut Machine, base: Addr, bytes: u64, write: bool) {
        // Stream in 4 KiB chunks to bound per-call work.
        let mut off = 0;
        while off < bytes {
            let chunk = (bytes - off).min(4096);
            if write {
                machine.store(base + off, chunk);
            } else {
                machine.load(base + off, chunk);
            }
            off += chunk;
        }
    }
}

impl App for DnnApp {
    fn name(&self) -> &str {
        "dnn"
    }

    fn serve(&mut self, machine: &mut Machine, rng: &mut Rng) {
        self.frontend.call(machine, 1500);
        // Receive the input image.
        Self::stream(machine, self.input, self.input_bytes, true);
        for i in 0..self.layers.len() {
            let l = self.layers[i];
            let kernel = match l.spec {
                LayerSpec::MaxPool => self.pool_kernel,
                LayerSpec::Fc { .. } => self.fc_kernel,
                _ => self.conv_kernel,
            };
            // Blocked GEMM-style execution: weights and inputs stream once.
            Self::stream(machine, l.in_act, l.in_bytes, false);
            if l.weight_bytes > 0 {
                Self::stream(machine, l.weights, l.weight_bytes, false);
            }
            Self::stream(machine, l.out_act, l.out_bytes, true);
            // Vectorized MACs plus im2col/repacking and framework dispatch
            // overhead (the PyTorch C++ path is far from bare MACs).
            let overhead = (l.in_bytes + l.out_bytes) / 2 + 2000;
            kernel.call(machine, overhead + l.macs / SIMD_MACS_PER_INSTR);
            self.frontend.call_span(machine, 2048, 2048, 600); // dispatch
                                                               // Pooling tie-breaks and edge handling are data-dependent.
            if matches!(l.spec, LayerSpec::MaxPool) {
                for b in 0..(l.out_bytes / 1024).min(16) {
                    kernel.branch(machine, 128 + b * 4, rng.bool(0.5));
                }
            }
            // Loop-bound branches are predictable; a small data-dependent
            // tail remains (e.g. pooling tie-breaks).
            kernel.branch(machine, 64 + (i as u64 % 32) * 8, rng.bool(0.85));
        }
        self.respond.call(machine, 800);
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamime_sim::MachineConfig;

    fn run(spec: NetSpec, inferences: usize) -> Machine {
        let mut app = DnnApp::new(spec);
        let mut machine = Machine::new(MachineConfig::broadwell());
        let mut rng = Rng::with_seed(31);
        for _ in 0..inferences {
            app.serve(&mut machine, &mut rng);
        }
        machine
    }

    #[test]
    fn resnet_scaled_builds() {
        let app = DnnApp::new(NetSpec::resnet50_scaled());
        assert!(app.model_bytes() > 1 << 20, "model {} B", app.model_bytes());
        assert!(app.macs_per_inference() > 10_000_000);
    }

    #[test]
    fn shufflenet_is_much_smaller() {
        let big = DnnApp::new(NetSpec::resnet50_scaled());
        let small = DnnApp::new(NetSpec::shufflenet_like());
        assert!(small.model_bytes() * 2 < big.model_bytes());
        assert!(small.macs_per_inference() * 2 < big.macs_per_inference());
    }

    #[test]
    fn generator_params_shape_the_network() {
        let shallow = NetSpec::from_generator_params(2, 1, 1, 1, 16);
        let deep = NetSpec::from_generator_params(10, 3, 2, 2, 64);
        let a = DnnApp::new(shallow);
        let b = DnnApp::new(deep);
        assert!(b.model_bytes() > a.model_bytes() * 4);
        assert!(b.macs_per_inference() > a.macs_per_inference());
    }

    #[test]
    fn fc_layers_always_at_end() {
        let spec = NetSpec::from_generator_params(3, 1, 1, 2, 16);
        let first_fc = spec
            .layers
            .iter()
            .position(|l| matches!(l, LayerSpec::Fc { .. }));
        let last_non_fc = spec
            .layers
            .iter()
            .rposition(|l| !matches!(l, LayerSpec::Fc { .. }))
            .unwrap();
        assert!(first_fc.unwrap() > last_non_fc);
    }

    #[test]
    fn inference_is_compute_heavy_with_few_icache_misses() {
        let m = run(NetSpec::from_generator_params(2, 2, 1, 1, 8), 3);
        let c = m.counters();
        assert!(c.instructions > 1_000_000);
        let icache_mpki = c.mpki(c.l1i_misses);
        assert!(icache_mpki < 1.0, "dnn code is tiny: {icache_mpki}");
    }

    #[test]
    fn bigger_first_layer_channels_increase_work() {
        let small = run(NetSpec::from_generator_params(2, 2, 0, 1, 8), 2);
        let big = run(NetSpec::from_generator_params(2, 2, 0, 1, 32), 2);
        assert!(big.counters().instructions > small.counters().instructions * 2);
    }

    #[test]
    fn large_models_spill_to_memory() {
        // Steady state (after warm-up inferences): a model larger than the
        // LLC keeps re-streaming from memory; a small model stays resident.
        let steady_misses = |spec: NetSpec| {
            let mut app = DnnApp::new(spec);
            let mut machine = Machine::new(MachineConfig::broadwell());
            let mut rng = Rng::with_seed(31);
            for _ in 0..2 {
                app.serve(&mut machine, &mut rng); // warm-up
            }
            let before = machine.counters().llc_misses;
            app.serve(&mut machine, &mut rng);
            (machine.counters().llc_misses - before, app.model_bytes())
        };
        let (small_misses, small_model) =
            steady_misses(NetSpec::from_generator_params(2, 3, 1, 0, 8));
        let (big_misses, big_model) = steady_misses(NetSpec::from_generator_params(8, 3, 0, 2, 96));
        assert!(small_model < 4 << 20, "small model {small_model}");
        assert!(big_model > 14 << 20, "big model {big_model}");
        assert!(
            big_misses > small_misses * 20 && big_misses > (big_model / 64) / 2,
            "big {big_misses} vs small {small_misses}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_network_panics() {
        DnnApp::new(NetSpec {
            height: 8,
            width: 8,
            channels: 1,
            layers: vec![],
        });
    }
}
