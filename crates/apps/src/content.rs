//! Value-content generation with controllable compressibility.
//!
//! Supports the paper's Sec. III-D extension: a dataset generator that can
//! be asked to produce data of a given compressibility without ever seeing
//! the target's values. [`ContentModel`] mixes fresh random bytes with
//! back-references into already-emitted content; the `redundancy` knob
//! moves the output smoothly from incompressible (`0.0`) to almost fully
//! compressible (`1.0`).

use datamime_stats::Rng;

/// A generator of byte content with tunable redundancy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentModel {
    redundancy: f64,
}

impl ContentModel {
    /// Creates a model; `redundancy` in `[0, 1]` is the fraction of output
    /// produced by copying earlier output (LZ-compressible structure).
    ///
    /// # Panics
    ///
    /// Panics if `redundancy` is not in `[0, 1]`.
    pub fn new(redundancy: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&redundancy),
            "redundancy must be in [0,1]"
        );
        ContentModel { redundancy }
    }

    /// The redundancy knob.
    pub fn redundancy(&self) -> f64 {
        self.redundancy
    }

    /// Generates `len` bytes.
    pub fn generate(&self, len: usize, rng: &mut Rng) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            if !out.is_empty() && rng.bool(self.redundancy) {
                // Back-reference: copy 8..64 bytes from earlier output.
                let copy_len = 8 + rng.index(57).min(len - out.len());
                let start = rng.index(out.len());
                for k in 0..copy_len {
                    let b = out[(start + k) % out.len()];
                    out.push(b);
                    if out.len() == len {
                        break;
                    }
                }
            } else {
                out.push((rng.u64() & 0xFF) as u8);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamime_stats::compress::estimate_compression_ratio;

    #[test]
    fn redundancy_controls_compression_ratio_monotonically() {
        // The estimator has mid-range wobble (entropy and match terms
        // trade off), so check monotonicity at well-separated levels.
        let mut rng = Rng::with_seed(1);
        let ratio_at = |red: f64, rng: &mut Rng| {
            let data = ContentModel::new(red).generate(64 * 1024, rng);
            estimate_compression_ratio(&data)
        };
        let r0 = ratio_at(0.0, &mut rng);
        let r5 = ratio_at(0.5, &mut rng);
        let r9 = ratio_at(0.95, &mut rng);
        assert!(r0 > r5 + 0.1, "r0 {r0} vs r5 {r5}");
        assert!(r5 > r9 + 0.05, "r5 {r5} vs r9 {r9}");
    }

    #[test]
    fn extremes() {
        let mut rng = Rng::with_seed(2);
        let raw = ContentModel::new(0.0).generate(32 * 1024, &mut rng);
        assert!(estimate_compression_ratio(&raw) > 0.9);
        let red = ContentModel::new(1.0).generate(32 * 1024, &mut rng);
        assert!(estimate_compression_ratio(&red) < 0.35);
    }

    #[test]
    fn exact_length() {
        let mut rng = Rng::with_seed(3);
        for len in [0usize, 1, 7, 63, 64, 1000] {
            assert_eq!(ContentModel::new(0.5).generate(len, &mut rng).len(), len);
        }
    }

    #[test]
    #[should_panic(expected = "redundancy must be in [0,1]")]
    fn invalid_redundancy_panics() {
        ContentModel::new(1.5);
    }
}
