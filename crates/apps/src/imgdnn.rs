//! An img-dnn-like handwriting-recognition service.
//!
//! The second target of the paper's Sec. V-C case study: a deep
//! autoencoder over MNIST-sized images, cloned by Datamime using the
//! convolutional [`crate::DnnApp`] as the *different program*. The
//! autoencoder is fully-connected, has a small weight footprint, and is
//! strongly compute-bound — hence the high IPC and near-zero LLC MPKI that
//! Table IV reports for img-dnn.

use crate::engine::{App, CodeLayout, CodeRegion};
use datamime_sim::{Addr, Machine, Segment, SimAlloc};
use datamime_stats::Rng;

/// Configuration for [`ImgDnn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImgDnnConfig {
    /// Input dimension (28×28 MNIST = 784).
    pub input_dim: u32,
    /// Hidden layer widths of the autoencoder (encoder + decoder stack).
    pub hidden: Vec<u32>,
    /// Seed (reserved for future stochastic inputs).
    pub seed: u64,
}

impl ImgDnnConfig {
    /// The TailBench img-dnn target: an MNIST autoencoder.
    pub fn mnist_target() -> Self {
        ImgDnnConfig {
            input_dim: 784,
            hidden: vec![512, 256, 128, 256, 512, 784],
            seed: 0x117,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct FcLayer {
    weights: Addr,
    weight_bytes: u64,
    out_act: Addr,
    out_bytes: u64,
    macs: u64,
}

/// The autoencoder inference service (see module docs).
#[derive(Debug)]
pub struct ImgDnn {
    cfg: ImgDnnConfig,
    layers: Vec<FcLayer>,
    input: Addr,
    input_bytes: u64,
    footprint: u64,
    frontend: CodeRegion,
    gemm_kernel: CodeRegion,
    activation_kernel: CodeRegion,
    respond: CodeRegion,
}

impl ImgDnn {
    /// Builds the autoencoder.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim` is zero or `hidden` is empty.
    pub fn new(cfg: ImgDnnConfig) -> Self {
        assert!(cfg.input_dim > 0, "input dimension must be positive");
        assert!(!cfg.hidden.is_empty(), "autoencoder needs hidden layers");
        let mut alloc = SimAlloc::new();
        let mut layout = CodeLayout::new(&mut alloc);
        let frontend = layout.region(4 * 1024);
        // Scalar but dependence-light inner loop: independent dot products.
        let gemm_kernel = layout.region_with_ilp(4 * 1024, 2.8);
        let activation_kernel = layout.region_with_ilp(1024, 2.0);
        let respond = layout.region(2 * 1024);

        let input_bytes = u64::from(cfg.input_dim) * 4;
        let input = alloc.alloc(Segment::Heap, input_bytes).expect("input");
        let mut footprint = input_bytes;
        let mut in_features = u64::from(cfg.input_dim);
        let mut layers = Vec::with_capacity(cfg.hidden.len());
        for &h in &cfg.hidden {
            let out = u64::from(h.max(1));
            let weight_bytes = in_features * out * 4;
            let out_bytes = out * 4;
            let weights = alloc.alloc(Segment::Heap, weight_bytes).expect("weights");
            let out_act = alloc.alloc(Segment::Heap, out_bytes).expect("activations");
            footprint += weight_bytes + out_bytes;
            layers.push(FcLayer {
                weights,
                weight_bytes,
                out_act,
                out_bytes,
                macs: in_features * out,
            });
            in_features = out;
        }

        ImgDnn {
            cfg,
            layers,
            input,
            input_bytes,
            footprint,
            frontend,
            gemm_kernel,
            activation_kernel,
            respond,
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ImgDnnConfig {
        &self.cfg
    }

    /// Total model weight bytes.
    pub fn model_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_bytes).sum()
    }
}

// TailBench's img-dnn autoencoder is a scalar implementation, so each MAC
// retires roughly one instruction (unlike the vectorized `dnn` kernels).
const SCALAR_MACS_PER_INSTR: u64 = 1;

impl App for ImgDnn {
    fn name(&self) -> &str {
        "img-dnn"
    }

    fn serve(&mut self, machine: &mut Machine, rng: &mut Rng) {
        self.frontend.call(machine, 900);
        machine.store(self.input, self.input_bytes);
        for (i, l) in self.layers.iter().enumerate() {
            // GEMV: stream the weight matrix once, blocked.
            let mut off = 0;
            while off < l.weight_bytes {
                let chunk = (l.weight_bytes - off).min(4096);
                machine.load(l.weights + off, chunk);
                off += chunk;
            }
            machine.store(l.out_act, l.out_bytes);
            self.gemm_kernel
                .call(machine, 100 + l.macs / SCALAR_MACS_PER_INSTR);
            // Sigmoid activation with a table-lookup fast path.
            self.activation_kernel.call(machine, 20 + l.out_bytes / 16);
            self.activation_kernel
                .branch(machine, 32 + (i as u64) * 4, rng.bool(0.9));
        }
        self.respond.call(machine, 500);
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamime_sim::MachineConfig;

    fn run(cfg: ImgDnnConfig, n: usize) -> Machine {
        let mut app = ImgDnn::new(cfg);
        let mut machine = Machine::new(MachineConfig::broadwell());
        let mut rng = Rng::with_seed(51);
        for _ in 0..n {
            app.serve(&mut machine, &mut rng);
        }
        machine
    }

    #[test]
    fn compute_bound_high_ipc() {
        // Table IV: img-dnn runs at IPC ~2.25 with near-zero LLC MPKI.
        // Measure steady state: the model fits the LLC after warm-up.
        let mut app = ImgDnn::new(ImgDnnConfig::mnist_target());
        let mut machine = Machine::new(MachineConfig::broadwell());
        let mut rng = Rng::with_seed(51);
        for _ in 0..3 {
            app.serve(&mut machine, &mut rng); // warm-up
        }
        let before = *machine.counters();
        for _ in 0..5 {
            app.serve(&mut machine, &mut rng);
        }
        let d = machine.counters().delta_since(&before);
        assert!(d.ipc() > 1.5, "ipc {}", d.ipc());
        let llc_mpki = d.mpki(d.llc_misses);
        assert!(llc_mpki < 2.0, "llc mpki {llc_mpki}");
    }

    #[test]
    fn model_size_follows_hidden_widths() {
        let small = ImgDnn::new(ImgDnnConfig {
            input_dim: 784,
            hidden: vec![64, 784],
            seed: 0,
        });
        let big = ImgDnn::new(ImgDnnConfig::mnist_target());
        assert!(big.model_bytes() > small.model_bytes() * 4);
    }

    #[test]
    fn deterministic() {
        let a = run(ImgDnnConfig::mnist_target(), 3);
        let b = run(ImgDnnConfig::mnist_target(), 3);
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    #[should_panic(expected = "hidden layers")]
    fn empty_hidden_panics() {
        ImgDnn::new(ImgDnnConfig {
            input_dim: 784,
            hidden: vec![],
            seed: 0,
        });
    }
}
