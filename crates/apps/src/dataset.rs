//! Dataset-level distribution specifications shared by the applications.

use datamime_stats::dist::{
    Distribution, GeneralizedPareto, InvalidParamsError, LogNormal, Normal, Uniform,
};
use datamime_stats::Rng;

/// A size distribution specification, serializable into dataset-generator
/// parameters.
///
/// Datamime's generators assume Gaussian sizes (the paper, Sec. III-B);
/// *target* datasets use other families — e.g. `mem-fb` draws value sizes
/// from a generalized Pareto, following the published analysis of
/// Facebook's memcached pools. Keeping the family open is what lets this
/// reproduction recreate the paper's "generator family ≠ target family"
/// setup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDist {
    /// A constant size.
    Fixed(f64),
    /// Normal with mean and standard deviation.
    Normal {
        /// Mean size in bytes.
        mean: f64,
        /// Standard deviation in bytes.
        std: f64,
    },
    /// Log-normal via the log-space mean and standard deviation.
    LogNormal {
        /// Mean of the logarithm.
        mu: f64,
        /// Standard deviation of the logarithm.
        sigma: f64,
    },
    /// Generalized Pareto (location, scale, shape).
    GeneralizedPareto {
        /// Location.
        mu: f64,
        /// Scale.
        sigma: f64,
        /// Shape.
        xi: f64,
    },
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl SizeDist {
    /// Builds the underlying sampler.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are invalid for the family.
    pub fn build(&self) -> Result<Box<dyn Distribution>, InvalidParamsError> {
        Ok(match *self {
            SizeDist::Fixed(v) => Box::new(Uniform::new(v, v)?),
            SizeDist::Normal { mean, std } => Box::new(Normal::new(mean, std)?),
            SizeDist::LogNormal { mu, sigma } => Box::new(LogNormal::new(mu, sigma)?),
            SizeDist::GeneralizedPareto { mu, sigma, xi } => {
                Box::new(GeneralizedPareto::new(mu, sigma, xi)?)
            }
            SizeDist::Uniform { lo, hi } => Box::new(Uniform::new(lo, hi)?),
        })
    }

    /// Samples a byte size clamped to `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid; validate with [`SizeDist::build`]
    /// first when handling untrusted input.
    pub fn sample_bytes(&self, rng: &mut Rng, lo: u64, hi: u64) -> u64 {
        let d = self.build().expect("invalid size distribution");
        datamime_stats::dist::sample_size(d.as_ref(), rng, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant() {
        let mut rng = Rng::with_seed(1);
        let d = SizeDist::Fixed(100.0);
        for _ in 0..10 {
            assert_eq!(d.sample_bytes(&mut rng, 1, 1000), 100);
        }
    }

    #[test]
    fn normal_clamps() {
        let mut rng = Rng::with_seed(2);
        let d = SizeDist::Normal {
            mean: 10.0,
            std: 50.0,
        };
        for _ in 0..1000 {
            let s = d.sample_bytes(&mut rng, 1, 64);
            assert!((1..=64).contains(&s));
        }
    }

    #[test]
    fn invalid_params_surface_as_errors() {
        assert!(SizeDist::Normal {
            mean: 0.0,
            std: -1.0
        }
        .build()
        .is_err());
        assert!(SizeDist::GeneralizedPareto {
            mu: 0.0,
            sigma: 0.0,
            xi: 0.1
        }
        .build()
        .is_err());
    }

    #[test]
    fn pareto_produces_heavy_tail() {
        let mut rng = Rng::with_seed(3);
        let d = SizeDist::GeneralizedPareto {
            mu: 15.0,
            sigma: 100.0,
            xi: 0.3,
        };
        let xs: Vec<u64> = (0..5000)
            .map(|_| d.sample_bytes(&mut rng, 1, 1 << 20))
            .collect();
        let mean = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
        let max = *xs.iter().max().unwrap() as f64;
        assert!(
            max > mean * 10.0,
            "heavy tail expected: mean {mean}, max {max}"
        );
    }
}
