//! Datacenter workload applications for the Datamime reproduction.
//!
//! Each application mirrors the structure of its real counterpart from the
//! paper's evaluation (Sec. IV), performing genuine algorithmic work over
//! data structures laid out in the simulator's address space:
//!
//! - [`KvStore`] — memcached: chained hash table, slab classes, GET/SET;
//! - [`SiloDb`] — silo: TPC-C tables + B+tree indexes, six transaction
//!   types including the paper's synthetic *bidding* target;
//! - [`SearchEngine`] — xapian: inverted index, posting-list scoring,
//!   snippet generation;
//! - [`DnnApp`] — dnn: CNN inference where the *model is the dataset*;
//! - [`Masstree`] and [`ImgDnn`] — the Sec. V-C case-study targets that
//!   Datamime clones with a *different* program.
//!
//! All applications implement [`App`] and are driven by
//! `datamime-loadgen`'s queueing harness.
//!
//! # Examples
//!
//! ```
//! use datamime_apps::{App, KvStore, KvConfig};
//! use datamime_sim::{Machine, MachineConfig};
//! use datamime_stats::Rng;
//!
//! let mut store = KvStore::new(KvConfig { n_keys: 1000, ..KvConfig::ycsb_like() });
//! let mut machine = Machine::new(MachineConfig::broadwell());
//! let mut rng = Rng::with_seed(7);
//! for _ in 0..100 {
//!     store.serve(&mut machine, &mut rng);
//! }
//! assert!(machine.counters().ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btree;
mod content;
mod dataset;
mod dnn;
mod engine;
mod imgdnn;
mod kvstore;
mod masstree;
mod silo;
mod xapian;

pub use btree::{BTreeIndex, RecordArray, NODE_BYTES};
pub use content::ContentModel;
pub use dataset::SizeDist;
pub use dnn::{DnnApp, LayerSpec, NetSpec};
pub use engine::{App, CodeLayout, CodeRegion, ServicePaths};
pub use imgdnn::{ImgDnn, ImgDnnConfig};
pub use kvstore::{KvConfig, KvStore};
pub use masstree::{Masstree, MasstreeConfig};
pub use silo::{SiloConfig, SiloDb, TxKind, TX_KINDS};
pub use xapian::{SearchConfig, SearchEngine};
