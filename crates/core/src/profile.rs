//! Performance profiles: distributions of every Table-I metric plus the
//! cache-sensitivity curves.

use crate::metrics::{CurveMetric, DistMetric};
use datamime_sim::MetricSample;
use datamime_stats::Ecdf;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// One point of a cache-sensitivity curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// LLC capacity in bytes for this measurement.
    pub cache_bytes: u64,
    /// Mean LLC MPKI at this allocation.
    pub llc_mpki: f64,
    /// Mean IPC at this allocation.
    pub ipc: f64,
}

/// A complete performance profile of a workload on one machine.
///
/// Contains the empirical distribution of each [`DistMetric`] (one sample
/// per 20 M-cycle interval, as in the paper) and the two cache-sensitivity
/// curves measured by sweeping LLC way allocations.
#[derive(Debug, Clone)]
pub struct Profile {
    dists: BTreeMap<DistMetric, Ecdf>,
    curve: Vec<CurvePoint>,
}

/// Error returned when a profile cannot be assembled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmptyProfileError;

impl fmt::Display for EmptyProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot build a profile from zero samples")
    }
}

impl std::error::Error for EmptyProfileError {}

/// Error returned when a serialized profile cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProfileError {
    line: usize,
    what: String,
}

impl fmt::Display for ParseProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid profile at line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for ParseProfileError {}

impl Profile {
    /// Assembles a profile from interval samples and (optionally) curve
    /// points.
    ///
    /// # Errors
    ///
    /// Returns an error if `samples` is empty or any metric column
    /// contains a non-finite value.
    pub fn from_samples(
        samples: &[MetricSample],
        curve: Vec<CurvePoint>,
    ) -> Result<Self, EmptyProfileError> {
        if samples.is_empty() {
            return Err(EmptyProfileError);
        }
        let column = |f: fn(&MetricSample) -> f64| -> Result<Ecdf, EmptyProfileError> {
            Ecdf::new(samples.iter().map(f).collect()).map_err(|_| EmptyProfileError)
        };
        let mut dists = BTreeMap::new();
        dists.insert(DistMetric::Ipc, column(|s| s.ipc)?);
        dists.insert(DistMetric::ICacheMpki, column(|s| s.l1i_mpki)?);
        dists.insert(DistMetric::ItlbMpki, column(|s| s.itlb_mpki)?);
        dists.insert(DistMetric::L1dMpki, column(|s| s.l1d_mpki)?);
        dists.insert(DistMetric::L2Mpki, column(|s| s.l2_mpki)?);
        dists.insert(DistMetric::LlcMpki, column(|s| s.llc_mpki)?);
        dists.insert(DistMetric::DtlbMpki, column(|s| s.dtlb_mpki)?);
        dists.insert(DistMetric::BranchMpki, column(|s| s.branch_mpki)?);
        dists.insert(DistMetric::CpuUtilization, column(|s| s.cpu_utilization)?);
        dists.insert(DistMetric::MemoryBandwidth, column(|s| s.memory_bw_gbps)?);
        Ok(Profile { dists, curve })
    }

    /// The eCDF of a metric.
    pub fn dist(&self, metric: DistMetric) -> &Ecdf {
        &self.dists[&metric]
    }

    /// Mean of a metric's distribution.
    pub fn mean(&self, metric: DistMetric) -> f64 {
        self.dists[&metric].mean()
    }

    /// The cache-sensitivity curve points, smallest allocation first
    /// (empty on machines without a partitionable LLC).
    pub fn curve(&self) -> &[CurvePoint] {
        &self.curve
    }

    /// One curve's y-values, smallest allocation first.
    pub fn curve_values(&self, metric: CurveMetric) -> Vec<f64> {
        self.curve
            .iter()
            .map(|p| match metric {
                CurveMetric::LlcMpkiCurve => p.llc_mpki,
                CurveMetric::IpcCurve => p.ipc,
            })
            .collect()
    }

    /// Renders the profile means as a one-line summary.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        for m in DistMetric::ALL {
            s.push_str(&format!("{}={:.3} ", m.key(), self.mean(m)));
        }
        s.trim_end().to_owned()
    }

    /// Builds a profile from per-metric sample vectors and curve points —
    /// the deserialization constructor behind [`Profile::from_tsv`].
    ///
    /// Metrics missing from `dists` get a single zero sample (a workload
    /// that never exercised them).
    ///
    /// # Errors
    ///
    /// Returns an error if every metric is missing.
    pub fn from_parts(
        mut dists_raw: BTreeMap<DistMetric, Vec<f64>>,
        curve: Vec<CurvePoint>,
    ) -> Result<Self, EmptyProfileError> {
        if dists_raw.values().all(|v| v.is_empty()) {
            return Err(EmptyProfileError);
        }
        let mut dists = BTreeMap::new();
        for m in DistMetric::ALL {
            let samples = dists_raw
                .remove(&m)
                .filter(|v| !v.is_empty())
                .unwrap_or(vec![0.0]);
            dists.insert(m, Ecdf::new(samples).map_err(|_| EmptyProfileError)?);
        }
        Ok(Profile { dists, curve })
    }

    /// Parses the TSV produced by [`Profile::to_tsv`]. This is the sharing
    /// format of the paper's usage flow: the service operator profiles the
    /// production workload, and a third party runs the dataset search from
    /// the profile file alone.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed rows, unknown metric keys, or an
    /// empty profile.
    pub fn from_tsv(text: &str) -> Result<Self, ParseProfileError> {
        let mut dists: BTreeMap<DistMetric, Vec<f64>> = BTreeMap::new();
        let mut curve: BTreeMap<u64, CurvePoint> = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let lineno = i + 1;
            if i == 0 && line.starts_with("metric\t") {
                continue; // header
            }
            if line.trim().is_empty() {
                continue;
            }
            let (key, value) = line.split_once('\t').ok_or_else(|| ParseProfileError {
                line: lineno,
                what: "expected <key><TAB><value>".to_owned(),
            })?;
            let value = f64::from_str(value.trim()).map_err(|e| ParseProfileError {
                line: lineno,
                what: format!("bad value: {e}"),
            })?;
            if let Some((curve_key, bytes)) = key.split_once('@') {
                let bytes = u64::from_str(bytes).map_err(|e| ParseProfileError {
                    line: lineno,
                    what: format!("bad curve size: {e}"),
                })?;
                let point = curve.entry(bytes).or_insert(CurvePoint {
                    cache_bytes: bytes,
                    llc_mpki: 0.0,
                    ipc: 0.0,
                });
                match curve_key {
                    "llc_mpki_curve" => point.llc_mpki = value,
                    "ipc_curve" => point.ipc = value,
                    other => {
                        return Err(ParseProfileError {
                            line: lineno,
                            what: format!("unknown curve metric {other}"),
                        })
                    }
                }
            } else {
                let metric = DistMetric::ALL
                    .iter()
                    .find(|m| m.key() == key)
                    .copied()
                    .ok_or_else(|| ParseProfileError {
                        line: lineno,
                        what: format!("unknown metric {key}"),
                    })?;
                dists.entry(metric).or_default().push(value);
            }
        }
        Profile::from_parts(dists, curve.into_values().collect()).map_err(|_| ParseProfileError {
            line: 0,
            what: "profile contains no samples".to_owned(),
        })
    }

    /// Serializes every distribution as TSV (`metric<TAB>value` rows, one
    /// row per sample) for external plotting.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("metric\tvalue\n");
        for (m, e) in &self.dists {
            for v in e.samples() {
                out.push_str(&format!("{}\t{v}\n", m.key()));
            }
        }
        for p in &self.curve {
            out.push_str(&format!(
                "llc_mpki_curve@{}\t{}\n",
                p.cache_bytes, p.llc_mpki
            ));
            out.push_str(&format!("ipc_curve@{}\t{}\n", p.cache_bytes, p.ipc));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ipc: f64, util: f64) -> MetricSample {
        MetricSample {
            ipc,
            cpu_utilization: util,
            ..MetricSample::default()
        }
    }

    #[test]
    fn empty_samples_rejected() {
        assert!(Profile::from_samples(&[], vec![]).is_err());
    }

    #[test]
    fn means_and_dists() {
        let p = Profile::from_samples(&[sample(1.0, 0.5), sample(2.0, 0.7)], vec![]).unwrap();
        assert_eq!(p.mean(DistMetric::Ipc), 1.5);
        assert_eq!(p.mean(DistMetric::CpuUtilization), 0.6);
        assert_eq!(p.dist(DistMetric::Ipc).len(), 2);
        assert_eq!(p.mean(DistMetric::L2Mpki), 0.0);
    }

    #[test]
    fn curve_accessors() {
        let curve = vec![
            CurvePoint {
                cache_bytes: 1 << 20,
                llc_mpki: 10.0,
                ipc: 0.5,
            },
            CurvePoint {
                cache_bytes: 12 << 20,
                llc_mpki: 1.0,
                ipc: 1.2,
            },
        ];
        let p = Profile::from_samples(&[sample(1.0, 1.0)], curve).unwrap();
        assert_eq!(p.curve_values(CurveMetric::LlcMpkiCurve), vec![10.0, 1.0]);
        assert_eq!(p.curve_values(CurveMetric::IpcCurve), vec![0.5, 1.2]);
        assert_eq!(p.curve().len(), 2);
    }

    #[test]
    fn tsv_roundtrip_shape() {
        let p = Profile::from_samples(&[sample(1.0, 0.2)], vec![]).unwrap();
        let tsv = p.to_tsv();
        assert!(tsv.starts_with("metric\tvalue\n"));
        assert!(
            tsv.contains("ipc\t1\n") || tsv.contains("ipc\t1.0"),
            "{tsv}"
        );
        // 10 metrics x 1 sample + header.
        assert_eq!(tsv.lines().count(), 11);
    }

    #[test]
    fn tsv_roundtrip_preserves_profile() {
        let samples = [sample(1.0, 0.5), sample(2.25, 0.75), sample(0.5, 0.1)];
        let curve = vec![
            CurvePoint {
                cache_bytes: 1 << 20,
                llc_mpki: 9.5,
                ipc: 0.75,
            },
            CurvePoint {
                cache_bytes: 12 << 20,
                llc_mpki: 1.25,
                ipc: 1.5,
            },
        ];
        let p = Profile::from_samples(&samples, curve).unwrap();
        let q = Profile::from_tsv(&p.to_tsv()).unwrap();
        for m in DistMetric::ALL {
            assert_eq!(p.dist(m).samples(), q.dist(m).samples(), "{m}");
        }
        assert_eq!(p.curve(), q.curve());
    }

    #[test]
    fn from_tsv_rejects_garbage() {
        assert!(Profile::from_tsv("").is_err());
        assert!(Profile::from_tsv("metric\tvalue\n").is_err());
        assert!(Profile::from_tsv("metric\tvalue\nnot_a_metric\t1.0\n").is_err());
        assert!(Profile::from_tsv("metric\tvalue\nipc\tnot_a_number\n").is_err());
        assert!(Profile::from_tsv("no tabs here").is_err());
    }

    #[test]
    fn from_parts_fills_missing_metrics_with_zero() {
        let mut dists = std::collections::BTreeMap::new();
        dists.insert(DistMetric::Ipc, vec![1.0, 2.0]);
        let p = Profile::from_parts(dists, vec![]).unwrap();
        assert_eq!(p.mean(DistMetric::Ipc), 1.5);
        assert_eq!(p.mean(DistMetric::BranchMpki), 0.0);
    }

    #[test]
    fn summary_mentions_all_metrics() {
        let p = Profile::from_samples(&[sample(1.5, 0.9)], vec![]).unwrap();
        let s = p.summary();
        for m in DistMetric::ALL {
            assert!(s.contains(m.key()), "missing {m} in {s}");
        }
    }
}
