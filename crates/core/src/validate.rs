//! Cross-microarchitecture validation of synthesized benchmarks.
//!
//! The paper generates benchmarks on Broadwell and *validates* them
//! unchanged on Zen 2 and Silvermont (Figs. 1 and 3): a representative
//! dataset must keep matching when the machine changes, because the match
//! comes from the workload's structure rather than overfitting to one
//! microarchitecture. This module packages that workflow.

use crate::metrics::DistMetric;
use crate::profiler::{profile_workload, ProfilingConfig};
use crate::workload::Workload;
use datamime_sim::MachineConfig;
use std::fmt;

/// One (machine, metric) comparison between target and benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationRow {
    /// Machine name.
    pub machine: String,
    /// Metric compared.
    pub metric: DistMetric,
    /// Target's mean value.
    pub target: f64,
    /// Benchmark's mean value.
    pub benchmark: f64,
}

impl ValidationRow {
    /// Absolute error.
    pub fn abs_error(&self) -> f64 {
        (self.benchmark - self.target).abs()
    }

    /// Relative error against the target (`None` when the target is ~0).
    pub fn rel_error(&self) -> Option<f64> {
        (self.target.abs() > 1e-9).then(|| self.abs_error() / self.target.abs())
    }
}

/// The full validation result across machines and metrics.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    rows: Vec<ValidationRow>,
}

impl ValidationReport {
    /// All rows.
    pub fn rows(&self) -> &[ValidationRow] {
        &self.rows
    }

    /// Rows for one metric.
    pub fn metric_rows(&self, metric: DistMetric) -> impl Iterator<Item = &ValidationRow> {
        self.rows.iter().filter(move |r| r.metric == metric)
    }

    /// Mean absolute percentage error of a metric across machines
    /// (`None` if no row has a usable target value).
    pub fn mape(&self, metric: DistMetric) -> Option<f64> {
        let errs: Vec<f64> = self
            .metric_rows(metric)
            .filter_map(ValidationRow::rel_error)
            .collect();
        (!errs.is_empty()).then(|| errs.iter().sum::<f64>() / errs.len() as f64)
    }

    /// Mean absolute error of a metric across machines.
    pub fn mae(&self, metric: DistMetric) -> Option<f64> {
        let errs: Vec<f64> = self
            .metric_rows(metric)
            .map(ValidationRow::abs_error)
            .collect();
        (!errs.is_empty()).then(|| errs.iter().sum::<f64>() / errs.len() as f64)
    }

    /// The row with the worst relative error, if any.
    pub fn worst(&self) -> Option<&ValidationRow> {
        self.rows
            .iter()
            .filter(|r| r.rel_error().is_some())
            .max_by(|a, b| {
                a.rel_error()
                    .partial_cmp(&b.rel_error())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Serializes the report as TSV.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("machine\tmetric\ttarget\tbenchmark\tabs_error\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\n",
                r.machine,
                r.metric.key(),
                r.target,
                r.benchmark,
                r.abs_error()
            ));
        }
        out
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rows {
            writeln!(
                f,
                "{:<11} {:<14} target={:<10.4} benchmark={:<10.4} err={:.4}",
                r.machine,
                r.metric.key(),
                r.target,
                r.benchmark,
                r.abs_error()
            )?;
        }
        Ok(())
    }
}

/// Profiles `target` and `benchmark` on every machine in `machines` and
/// compares the metric means.
///
/// # Panics
///
/// Panics if `machines` or `metrics` is empty.
pub fn validate_clone(
    target: &Workload,
    benchmark: &Workload,
    machines: &[MachineConfig],
    metrics: &[DistMetric],
    cfg: &ProfilingConfig,
) -> ValidationReport {
    assert!(!machines.is_empty(), "need at least one machine");
    assert!(!metrics.is_empty(), "need at least one metric");
    let mut rows = Vec::with_capacity(machines.len() * metrics.len());
    for machine in machines {
        let t = profile_workload(target, machine, cfg);
        let b = profile_workload(benchmark, machine, cfg);
        for &m in metrics {
            rows.push(ValidationRow {
                machine: machine.name.clone(),
                metric: m,
                target: t.mean(m),
                benchmark: b.mean(m),
            });
        }
    }
    ValidationReport { rows }
}

/// The paper's validation setup: all three Table-II machines and the four
/// headline metrics of Fig. 6.
pub fn validate_paper_setup(
    target: &Workload,
    benchmark: &Workload,
    cfg: &ProfilingConfig,
) -> ValidationReport {
    validate_clone(
        target,
        benchmark,
        &[
            MachineConfig::broadwell(),
            MachineConfig::zen2(),
            MachineConfig::silvermont(),
        ],
        &[
            DistMetric::Ipc,
            DistMetric::LlcMpki,
            DistMetric::ICacheMpki,
            DistMetric::BranchMpki,
        ],
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::AppConfig;
    use datamime_apps::KvConfig;

    fn tiny(name: &str, n_keys: usize) -> Workload {
        let mut w = Workload::mem_fb();
        w.name = name.to_owned();
        w.app = AppConfig::Kv(KvConfig {
            n_keys,
            ..KvConfig::facebook_like()
        });
        w
    }

    #[test]
    fn self_validation_is_perfect() {
        let w = tiny("t", 5_000);
        let cfg = ProfilingConfig::fast().without_curves();
        let report = validate_clone(
            &w,
            &w,
            &[MachineConfig::broadwell()],
            &[DistMetric::Ipc, DistMetric::LlcMpki],
            &cfg,
        );
        assert_eq!(report.rows().len(), 2);
        assert_eq!(report.mape(DistMetric::Ipc), Some(0.0));
        assert_eq!(report.worst().unwrap().abs_error(), 0.0);
    }

    #[test]
    fn different_workloads_show_errors() {
        let cfg = ProfilingConfig::fast().without_curves();
        let report = validate_clone(
            &tiny("a", 5_000),
            &tiny("b", 200_000),
            &[MachineConfig::broadwell(), MachineConfig::silvermont()],
            &[DistMetric::Ipc, DistMetric::LlcMpki],
            &cfg,
        );
        assert_eq!(report.rows().len(), 4);
        assert!(report.mape(DistMetric::Ipc).unwrap() > 0.0);
        assert!(report.mae(DistMetric::LlcMpki).unwrap() > 0.0);
        let tsv = report.to_tsv();
        assert!(tsv.lines().count() == 5);
        assert!(tsv.contains("silvermont"));
        assert!(!report.to_string().is_empty());
    }

    #[test]
    fn mape_skips_zero_targets() {
        let report = ValidationReport {
            rows: vec![ValidationRow {
                machine: "x".into(),
                metric: DistMetric::ItlbMpki,
                target: 0.0,
                benchmark: 1.0,
            }],
        };
        assert_eq!(report.mape(DistMetric::ItlbMpki), None);
        assert_eq!(report.mae(DistMetric::ItlbMpki), Some(1.0));
        assert!(report.worst().is_none());
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn empty_machines_panics() {
        let w = tiny("t", 100);
        validate_clone(&w, &w, &[], &[DistMetric::Ipc], &ProfilingConfig::fast());
    }
}
