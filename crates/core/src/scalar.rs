//! Scalar-target search: make a generator hit an arbitrary value of a
//! single metric (paper Sec. V-E, Fig. 11).
//!
//! Instead of matching a full target profile, the objective is the
//! relative distance between one metric's mean and a requested value. The
//! achievable range of each generator is measured by sweeping the
//! requested value and recording what the search actually reaches.

use crate::generator::DatasetGenerator;
use crate::metrics::DistMetric;
use crate::profiler::{profile_workload, ProfilingConfig};
use datamime_bayesopt::{BayesOpt, BlackBoxOptimizer, BoConfig};
use datamime_sim::MachineConfig;

/// Configuration of a scalar-target search.
#[derive(Debug, Clone)]
pub struct ScalarSearchConfig {
    /// Optimizer iterations per target value.
    pub iterations: usize,
    /// Machine to profile on.
    pub machine: MachineConfig,
    /// Profiling fidelity (curves are unnecessary and skipped).
    pub profiling: ProfilingConfig,
    /// Optimizer seed.
    pub seed: u64,
}

impl ScalarSearchConfig {
    /// A reduced-cost configuration for experiments.
    pub fn fast(iterations: usize) -> Self {
        ScalarSearchConfig {
            iterations,
            machine: MachineConfig::broadwell(),
            profiling: ProfilingConfig::fast().without_curves(),
            seed: 0x5CA1A7,
        }
    }
}

/// Result of one scalar-target search.
#[derive(Debug, Clone)]
pub struct ScalarOutcome {
    /// The requested metric value.
    pub requested: f64,
    /// The metric value the best dataset actually achieves.
    pub achieved: f64,
    /// Best unit-hypercube parameters.
    pub best_unit_params: Vec<f64>,
}

/// Searches for dataset parameters that drive `metric`'s mean to `target`.
///
/// # Panics
///
/// Panics if `cfg.iterations == 0` or `target` is not finite.
pub fn scalar_search(
    generator: &dyn DatasetGenerator,
    metric: DistMetric,
    target: f64,
    cfg: &ScalarSearchConfig,
) -> ScalarOutcome {
    assert!(cfg.iterations > 0, "need at least one iteration");
    assert!(target.is_finite(), "target must be finite");
    let mut bo = BayesOpt::new(BoConfig::for_dims(generator.dims()), cfg.seed);
    let mut best: Option<(Vec<f64>, f64, f64)> = None; // (params, err, achieved)
    let scale = target.abs().max(1e-3);
    for _ in 0..cfg.iterations {
        let unit = bo.suggest();
        let workload = generator.instantiate(&unit);
        let profile = profile_workload(&workload, &cfg.machine, &cfg.profiling);
        let achieved = profile.mean(metric);
        let err = (achieved - target).abs() / scale;
        bo.observe(unit.clone(), err);
        if best.as_ref().is_none_or(|(_, be, _)| err < *be) {
            best = Some((unit, err, achieved));
        }
    }
    let (best_unit_params, _, achieved) = best.expect("at least one iteration ran");
    ScalarOutcome {
        requested: target,
        achieved,
        best_unit_params,
    }
}

/// Sweeps `n_points` evenly spaced target values in `[lo, hi]` (Fig. 11's
/// 15-point sweeps) and returns one outcome per point.
///
/// # Panics
///
/// Panics if the range is empty or `n_points < 2`.
pub fn scalar_sweep(
    generator: &dyn DatasetGenerator,
    metric: DistMetric,
    lo: f64,
    hi: f64,
    n_points: usize,
    cfg: &ScalarSearchConfig,
) -> Vec<ScalarOutcome> {
    assert!(lo < hi && n_points >= 2, "invalid sweep range");
    (0..n_points)
        .map(|i| {
            let t = lo + (hi - lo) * i as f64 / (n_points - 1) as f64;
            let mut cfg_i = cfg.clone();
            cfg_i.seed ^= (i as u64) << 32;
            scalar_search(generator, metric, t, &cfg_i)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::KvGenerator;

    #[test]
    fn scalar_search_approaches_reachable_target() {
        let cfg = ScalarSearchConfig::fast(12);
        let out = scalar_search(&KvGenerator::new(), DistMetric::Ipc, 1.0, &cfg);
        assert!(
            (out.achieved - 1.0).abs() < 0.25,
            "requested 1.0, achieved {}",
            out.achieved
        );
    }

    #[test]
    fn unreachable_target_saturates() {
        // No memcached dataset reaches IPC 50; the search should end at the
        // generator's ceiling, far below the request.
        let cfg = ScalarSearchConfig::fast(6);
        let out = scalar_search(&KvGenerator::new(), DistMetric::Ipc, 50.0, &cfg);
        assert!(out.achieved < 5.0, "achieved {}", out.achieved);
    }

    #[test]
    #[should_panic(expected = "invalid sweep range")]
    fn bad_sweep_panics() {
        let cfg = ScalarSearchConfig::fast(1);
        scalar_sweep(&KvGenerator::new(), DistMetric::Ipc, 1.0, 1.0, 2, &cfg);
    }
}
