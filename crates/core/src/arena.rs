//! Reusable per-evaluation simulator state ([`EvalArena`]).
//!
//! Every search evaluation used to build a fresh [`Machine`] (whose LLC
//! model alone is megabytes of tag/metadata arrays) and fresh [`Sampler`]
//! scratch, per attempt — including the supervisor's retry and
//! post-deadline re-evaluation paths, which pay the allocator again for
//! work that was just thrown away. The arena keeps those objects alive
//! per worker and hands them back `reinit`ed, which the
//! `crates/sim/tests/machine_equivalence.rs` property tests pin down as
//! bit-identical to fresh construction.

use datamime_sim::{Machine, MachineConfig, Sampler};
use std::cell::RefCell;

/// Upper bound on pooled objects of each kind. Profiling holds at most two
/// machines alive at once (the main-run machine plus one curve-sweep
/// machine), so a small cap bounds worst-case retained memory without ever
/// forcing a reallocation in practice.
const MAX_POOLED: usize = 4;

/// A pool of recycled simulator state for one evaluation worker.
///
/// `take_*` methods pop a pooled object and [`reinit`](Machine::reinit) it
/// to the requested configuration (or construct one when the pool is
/// empty); `recycle_*` methods return objects for the next evaluation.
/// Recycled state behaves exactly like freshly constructed state — counter
/// for counter, sample for sample — so pooling is invisible to results.
///
/// # Examples
///
/// ```
/// use datamime::arena::EvalArena;
/// use datamime_sim::MachineConfig;
///
/// let mut arena = EvalArena::new();
/// let mut machine = arena.take_machine(MachineConfig::broadwell());
/// machine.exec(0x1000, 64, 16);
/// arena.recycle_machine(machine);
///
/// // The next take reuses the same arrays; counters start from zero
/// // exactly as if the machine were new.
/// let machine = arena.take_machine(MachineConfig::silvermont());
/// assert_eq!(machine.counters().instructions, 0);
/// ```
#[derive(Default)]
pub struct EvalArena {
    machines: Vec<Machine>,
    samplers: Vec<Sampler>,
}

impl EvalArena {
    /// An empty arena; pools fill as objects are recycled.
    pub fn new() -> Self {
        EvalArena::default()
    }

    /// A machine configured per `cfg`: recycled arrays when available,
    /// freshly allocated otherwise.
    pub fn take_machine(&mut self, cfg: MachineConfig) -> Machine {
        match self.machines.pop() {
            Some(mut m) => {
                m.reinit(cfg);
                m
            }
            None => Machine::new(cfg),
        }
    }

    /// Returns a machine to the pool for the next evaluation.
    pub fn recycle_machine(&mut self, machine: Machine) {
        if self.machines.len() < MAX_POOLED {
            self.machines.push(machine);
        }
    }

    /// A sampler with the given interval: recycled scratch when available.
    pub fn take_sampler(&mut self, interval_cycles: u64) -> Sampler {
        match self.samplers.pop() {
            Some(mut s) => {
                s.reinit(interval_cycles);
                s
            }
            None => Sampler::new(interval_cycles),
        }
    }

    /// Returns a sampler to the pool for the next evaluation.
    pub fn recycle_sampler(&mut self, sampler: Sampler) {
        if self.samplers.len() < MAX_POOLED {
            self.samplers.push(sampler);
        }
    }

    /// Runs `f` with this thread's arena, creating it on first use. This is
    /// how the thread- and process-backend evaluation loops share state
    /// across attempts: each worker thread keeps one arena alive for its
    /// whole life, so retries and deadline re-evaluations stop paying
    /// allocator traffic.
    ///
    /// If `f` unwinds (the supervisor catches evaluation panics), any
    /// objects it had taken are simply dropped and the pool refills on
    /// later evaluations — the arena holds no cross-evaluation simulator
    /// state, so recovery needs no cleanup.
    ///
    /// # Panics
    ///
    /// Panics if called reentrantly from within `f` (the arena is behind a
    /// `RefCell`).
    pub fn with_thread_local<R>(f: impl FnOnce(&mut EvalArena) -> R) -> R {
        thread_local! {
            static ARENA: RefCell<EvalArena> = RefCell::new(EvalArena::new());
        }
        ARENA.with(|a| f(&mut a.borrow_mut()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_take_reuses_state() {
        let mut arena = EvalArena::new();
        let mut m = arena.take_machine(MachineConfig::broadwell());
        m.exec(0x4000, 256, 64);
        m.load(0x8000, 64);
        assert!(m.counters().instructions > 0);
        arena.recycle_machine(m);

        let recycled = arena.take_machine(MachineConfig::broadwell());
        let fresh = Machine::new(MachineConfig::broadwell());
        assert_eq!(recycled.counters(), fresh.counters());
    }

    #[test]
    fn take_across_machine_models_matches_fresh() {
        let mut arena = EvalArena::new();
        let m = arena.take_machine(MachineConfig::broadwell());
        arena.recycle_machine(m);
        // Silvermont has no partitionable LLC and different geometry:
        // reinit must reshape, not just clear.
        let mut recycled = arena.take_machine(MachineConfig::silvermont());
        let mut fresh = Machine::new(MachineConfig::silvermont());
        for pc in 0..200u64 {
            recycled.exec(pc * 64, 64, 8);
            fresh.exec(pc * 64, 64, 8);
            recycled.load(pc * 4096, 16);
            fresh.load(pc * 4096, 16);
        }
        assert_eq!(recycled.counters(), fresh.counters());
    }

    #[test]
    fn pool_is_bounded() {
        let mut arena = EvalArena::new();
        for _ in 0..10 {
            arena.recycle_sampler(Sampler::new(1000));
        }
        assert!(arena.samplers.len() <= MAX_POOLED);
    }

    #[test]
    fn thread_local_arena_persists_across_calls() {
        let first = EvalArena::with_thread_local(|a| {
            a.recycle_sampler(Sampler::new(500));
            a.samplers.len()
        });
        let second = EvalArena::with_thread_local(|a| a.samplers.len());
        assert_eq!(first, second);
    }
}
