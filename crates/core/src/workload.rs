//! Workload definitions: an application configuration plus a load
//! specification.
//!
//! The named constructors reproduce the paper's evaluation setup
//! (Sec. IV): five target workloads (`mem-fb`, `mem-twtr`, `silo`,
//! `xapian`, `dnn`), their alternative public datasets (the red bars of
//! Figs. 1 and 3), and the two cross-program case-study targets
//! (`masstree`, `img-dnn`).

use datamime_apps::{
    App, DnnApp, ImgDnn, ImgDnnConfig, KvConfig, KvStore, Masstree, MasstreeConfig, NetSpec,
    SearchConfig, SearchEngine, SiloConfig, SiloDb,
};
use datamime_loadgen::WorkloadSpec;

/// The application half of a workload: a buildable configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum AppConfig {
    /// memcached-like key-value store.
    Kv(KvConfig),
    /// silo-like in-memory database.
    Silo(SiloConfig),
    /// xapian-like search engine.
    Search(SearchConfig),
    /// CNN inference service (the network is the dataset).
    Dnn(NetSpec),
    /// masstree-like store (case-study target).
    Masstree(MasstreeConfig),
    /// img-dnn autoencoder (case-study target).
    ImgDnn(ImgDnnConfig),
}

impl AppConfig {
    /// Instantiates the application (builds its dataset).
    pub fn build(&self) -> Box<dyn App> {
        match self {
            AppConfig::Kv(c) => Box::new(KvStore::new(c.clone())),
            AppConfig::Silo(c) => Box::new(SiloDb::new(c.clone())),
            AppConfig::Search(c) => Box::new(SearchEngine::new(c.clone())),
            AppConfig::Dnn(spec) => Box::new(DnnApp::new(spec.clone())),
            AppConfig::Masstree(c) => Box::new(Masstree::new(c.clone())),
            AppConfig::ImgDnn(c) => Box::new(ImgDnn::new(c.clone())),
        }
    }

    /// The underlying program's name.
    pub fn program(&self) -> &'static str {
        match self {
            AppConfig::Kv(_) => "memcached",
            AppConfig::Silo(_) => "silo",
            AppConfig::Search(_) => "xapian",
            AppConfig::Dnn(_) => "dnn",
            AppConfig::Masstree(_) => "masstree",
            AppConfig::ImgDnn(_) => "img-dnn",
        }
    }
}

/// A complete runnable workload: program + dataset + offered load.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Short name (e.g. `"mem-fb"`).
    pub name: String,
    /// Application and dataset.
    pub app: AppConfig,
    /// Offered load.
    pub load: WorkloadSpec,
}

impl Workload {
    /// `mem-fb`: memcached with a dataset representative of Facebook's
    /// production environment, bursty arrivals at moderate utilization.
    pub fn mem_fb() -> Self {
        Workload {
            name: "mem-fb".to_owned(),
            app: AppConfig::Kv(KvConfig::facebook_like()),
            load: WorkloadSpec::bursty(120_000.0),
        }
    }

    /// `mem-twtr`: memcached with a Twitter Twemcache-trace-like dataset.
    pub fn mem_twtr() -> Self {
        Workload {
            name: "mem-twtr".to_owned(),
            app: AppConfig::Kv(KvConfig::twitter_like()),
            load: WorkloadSpec::bursty(110_000.0),
        }
    }

    /// memcached with TailBench's default (YCSB-like) public dataset — the
    /// unrepresentative baseline of Fig. 1.
    pub fn mem_public() -> Self {
        Workload {
            name: "mem-public".to_owned(),
            app: AppConfig::Kv(KvConfig::ycsb_like()),
            load: WorkloadSpec::poisson(160_000.0),
        }
    }

    /// `silo`: the synthetic bidding target workload.
    pub fn silo_bidding() -> Self {
        Workload {
            name: "silo".to_owned(),
            app: AppConfig::Silo(SiloConfig::bidding_target()),
            load: WorkloadSpec::bursty(450_000.0),
        }
    }

    /// silo with TailBench's default TPC-C dataset (the public baseline).
    pub fn silo_public() -> Self {
        Workload {
            name: "silo-public".to_owned(),
            app: AppConfig::Silo(SiloConfig::tpcc_default()),
            load: WorkloadSpec::poisson(120_000.0),
        }
    }

    /// `xapian`: the Wikipedia-index target workload.
    pub fn xapian_wiki() -> Self {
        Workload {
            name: "xapian".to_owned(),
            app: AppConfig::Search(SearchConfig::wikipedia_target()),
            load: WorkloadSpec::bursty(55_000.0),
        }
    }

    /// xapian over a StackOverflow-dump index (the public baseline).
    pub fn xapian_public() -> Self {
        Workload {
            name: "xapian-public".to_owned(),
            app: AppConfig::Search(SearchConfig::stackoverflow_public()),
            load: WorkloadSpec::poisson(45_000.0),
        }
    }

    /// `dnn`: object recognition with a scaled ResNet-50 model.
    pub fn dnn_resnet() -> Self {
        Workload {
            name: "dnn".to_owned(),
            app: AppConfig::Dnn(NetSpec::resnet50_scaled()),
            load: WorkloadSpec::bursty(450.0),
        }
    }

    /// dnn with a ShuffleNet-like compact model (the public baseline).
    pub fn dnn_public() -> Self {
        Workload {
            name: "dnn-public".to_owned(),
            app: AppConfig::Dnn(NetSpec::shufflenet_like()),
            load: WorkloadSpec::poisson(900.0),
        }
    }

    /// `masstree`: the Sec. V-C case-study target (cloned with memcached).
    pub fn masstree_ycsb() -> Self {
        Workload {
            name: "masstree".to_owned(),
            app: AppConfig::Masstree(MasstreeConfig::ycsb_target()),
            load: WorkloadSpec::bursty(300_000.0),
        }
    }

    /// `img-dnn`: the Sec. V-C case-study target (cloned with dnn).
    pub fn img_dnn_mnist() -> Self {
        Workload {
            name: "img-dnn".to_owned(),
            app: AppConfig::ImgDnn(ImgDnnConfig::mnist_target()),
            load: WorkloadSpec::bursty(500.0),
        }
    }

    /// The five primary target workloads of the evaluation (Fig. 3/6/7/8).
    pub fn primary_targets() -> Vec<Workload> {
        vec![
            Workload::mem_fb(),
            Workload::mem_twtr(),
            Workload::silo_bidding(),
            Workload::xapian_wiki(),
            Workload::dnn_resnet(),
        ]
    }

    /// Every named workload — the targets plus the public-dataset
    /// baselines — in the order the CLI lists them.
    pub fn catalog() -> Vec<Workload> {
        vec![
            Workload::mem_fb(),
            Workload::mem_twtr(),
            Workload::mem_public(),
            Workload::silo_bidding(),
            Workload::silo_public(),
            Workload::xapian_wiki(),
            Workload::xapian_public(),
            Workload::dnn_resnet(),
            Workload::dnn_public(),
            Workload::masstree_ycsb(),
            Workload::img_dnn_mnist(),
        ]
    }

    /// Looks a workload up by its short name (`"mem-fb"`, `"xapian"`, ...).
    pub fn by_name(name: &str) -> Option<Workload> {
        Workload::catalog().into_iter().find(|w| w.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamime_sim::{Machine, MachineConfig};
    use datamime_stats::Rng;

    #[test]
    fn all_named_workloads_build_and_serve() {
        let workloads = vec![
            Workload::mem_fb(),
            Workload::mem_twtr(),
            Workload::mem_public(),
            Workload::silo_bidding(),
            Workload::silo_public(),
            Workload::xapian_wiki(),
            Workload::xapian_public(),
            Workload::dnn_resnet(),
            Workload::dnn_public(),
            Workload::masstree_ycsb(),
            Workload::img_dnn_mnist(),
        ];
        for w in workloads {
            let mut app = w.app.build();
            let mut machine = Machine::new(MachineConfig::broadwell());
            let mut rng = Rng::with_seed(1);
            app.serve(&mut machine, &mut rng);
            assert!(
                machine.counters().instructions > 0,
                "{} did no work",
                w.name
            );
            assert!(w.load.qps > 0.0);
        }
    }

    #[test]
    fn primary_targets_are_the_papers_five() {
        let names: Vec<String> = Workload::primary_targets()
            .into_iter()
            .map(|w| w.name)
            .collect();
        assert_eq!(names, vec!["mem-fb", "mem-twtr", "silo", "xapian", "dnn"]);
    }

    #[test]
    fn program_names() {
        assert_eq!(Workload::mem_fb().app.program(), "memcached");
        assert_eq!(Workload::masstree_ycsb().app.program(), "masstree");
    }
}
