//! Client side of the serve daemon: the job API and the admin plane.
//!
//! `datamime-served` listens on two Unix sockets under its state root:
//!
//! - `job.sock` speaks the [`datamime_dist`] frame protocol (versioned,
//!   CRC-checked), one request/response per connection — submit, status,
//!   result, cancel, list;
//! - `admin.sock` speaks plain text, Pelikan-style — `stats`, `version`,
//!   `shutdown` — so an operator can drive it with `nc` alone.
//!
//! [`ServeClient`] wraps both; the `datamime ctl` subcommand is a thin
//! shell around it.

use crate::jobspec::JobSpec;
use datamime_dist::{read_frame, write_frame, Frame};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Name of the job-API socket under the daemon state root.
pub const JOB_SOCKET: &str = "job.sock";
/// Name of the plaintext admin socket under the daemon state root.
pub const ADMIN_SOCKET: &str = "admin.sock";

/// A job's externally visible lifecycle state, as reported by the
/// daemon. The strings on the wire are the lowercase variant names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and journaled, not yet scheduled onto the backend.
    Submitted,
    /// Actively interleaved on the shared backend.
    Running,
    /// Completed; the result is available.
    Done,
    /// Cancelled by request; the journal survives.
    Cancelled,
    /// The search failed; see the manifest for the error.
    Failed,
    /// A per-job quota (`max_evals=` / `wall_clock_s=`) stopped the
    /// search early; the best-so-far result is available.
    QuotaExceeded,
}

impl JobState {
    /// Parses the wire string.
    pub fn parse(s: &str) -> Option<JobState> {
        Some(match s {
            "submitted" => JobState::Submitted,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "cancelled" => JobState::Cancelled,
            "failed" => JobState::Failed,
            "quota_exceeded" => JobState::QuotaExceeded,
            _ => return None,
        })
    }

    /// The wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Submitted => "submitted",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
            JobState::QuotaExceeded => "quota_exceeded",
        }
    }

    /// Whether the state is final (no further transitions).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed | JobState::QuotaExceeded
        )
    }

    /// Whether a result is served in this state (`done`, or stopped by
    /// quota with a best-so-far).
    pub fn has_result(self) -> bool {
        matches!(self, JobState::Done | JobState::QuotaExceeded)
    }
}

/// A `JobStatusResp`, decoded.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Lifecycle state.
    pub state: JobState,
    /// Evaluations observed so far.
    pub evals: u64,
    /// Total iterations the job was submitted with.
    pub iterations: u64,
    /// Best error so far (`f64::INFINITY` until the first observation).
    pub best_error: f64,
}

/// A `JobResultResp`, decoded.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Best total weighted EMD error.
    pub best_error: f64,
    /// Best unit-hypercube point.
    pub best_unit: Vec<f64>,
    /// Path of the job's journal, relative to the daemon state root.
    pub journal: String,
}

/// A client for one daemon state root. Cheap to construct; every call
/// opens a fresh connection.
#[derive(Debug, Clone)]
pub struct ServeClient {
    root: PathBuf,
}

impl ServeClient {
    /// A client for the daemon rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ServeClient { root: root.into() }
    }

    /// The daemon state root this client talks to.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// One framed request/response round trip on the job socket.
    fn call(&self, req: &Frame) -> Result<Frame, String> {
        let path = self.root.join(JOB_SOCKET);
        let mut conn = UnixStream::connect(&path)
            .map_err(|e| format!("cannot reach the daemon at {path:?}: {e}"))?;
        write_frame(&mut conn, req).map_err(|e| format!("request failed: {e}"))?;
        let resp = read_frame(&mut conn).map_err(|e| format!("response failed: {e}"))?;
        if let Frame::ServeErr { detail } = resp {
            return Err(detail);
        }
        Ok(resp)
    }

    /// Submits a job; returns the daemon-assigned job id.
    ///
    /// # Errors
    ///
    /// Fails on connection errors, an unserializable spec, or a daemon
    /// rejection (unknown workload, bad machine, ...).
    pub fn submit(&self, spec: &JobSpec) -> Result<String, String> {
        self.submit_line(&spec.to_line()?)
    }

    /// Submits a raw `key=value` spec line (validated daemon-side).
    ///
    /// # Errors
    ///
    /// As [`ServeClient::submit`].
    pub fn submit_line(&self, line: &str) -> Result<String, String> {
        match self.call(&Frame::SubmitJob {
            spec: line.to_string(),
        })? {
            Frame::JobAck { job } => Ok(job),
            other => Err(format!("unexpected reply to submit: {other:?}")),
        }
    }

    /// Fetches a job's status.
    ///
    /// # Errors
    ///
    /// Fails on connection errors or an unknown job id.
    pub fn status(&self, job: &str) -> Result<JobStatus, String> {
        match self.call(&Frame::JobStatusReq {
            job: job.to_string(),
        })? {
            Frame::JobStatusResp {
                state,
                evals,
                iterations,
                best_error_bits,
                ..
            } => Ok(JobStatus {
                state: JobState::parse(&state)
                    .ok_or_else(|| format!("daemon sent unknown job state `{state}`"))?,
                evals,
                iterations,
                best_error: f64::from_bits(best_error_bits),
            }),
            other => Err(format!("unexpected reply to status: {other:?}")),
        }
    }

    /// Fetches a completed job's result.
    ///
    /// # Errors
    ///
    /// Fails on connection errors, an unknown job id, or a job that has
    /// not finished.
    pub fn result(&self, job: &str) -> Result<JobResult, String> {
        match self.call(&Frame::JobResultReq {
            job: job.to_string(),
        })? {
            Frame::JobResultResp {
                best_error_bits,
                best_unit_bits,
                journal,
                ..
            } => Ok(JobResult {
                best_error: f64::from_bits(best_error_bits),
                best_unit: best_unit_bits.into_iter().map(f64::from_bits).collect(),
                journal,
            }),
            other => Err(format!("unexpected reply to result: {other:?}")),
        }
    }

    /// Requests cancellation of a job (takes effect at its next batch
    /// boundary; the journal survives for a later resume).
    ///
    /// # Errors
    ///
    /// Fails on connection errors or an unknown job id.
    pub fn cancel(&self, job: &str) -> Result<(), String> {
        match self.call(&Frame::CancelJob {
            job: job.to_string(),
        })? {
            Frame::JobAck { .. } => Ok(()),
            other => Err(format!("unexpected reply to cancel: {other:?}")),
        }
    }

    /// Lists all jobs the daemon knows, as `(id, state)` pairs in id
    /// order.
    ///
    /// # Errors
    ///
    /// Fails on connection errors.
    pub fn list(&self) -> Result<Vec<(String, String)>, String> {
        match self.call(&Frame::ListJobsReq)? {
            Frame::JobList { jobs } => Ok(jobs),
            other => Err(format!("unexpected reply to list: {other:?}")),
        }
    }

    /// Polls a job until it reaches a terminal state, then returns that
    /// status. Polling backs off exponentially from 25ms to a 1s cap, so
    /// a long-running job costs a connection per second instead of
    /// twenty.
    ///
    /// # Errors
    ///
    /// Fails on connection errors or when `timeout` elapses first.
    pub fn wait(&self, job: &str, timeout: Duration) -> Result<JobStatus, String> {
        let deadline = Instant::now() + timeout;
        let mut pause = Duration::from_millis(25);
        loop {
            let status = self.status(job)?;
            if status.state.is_terminal() {
                return Ok(status);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(format!(
                    "job {job} still {} after {timeout:?}",
                    status.state.as_str()
                ));
            }
            std::thread::sleep(pause.min(deadline - now));
            pause = (pause * 2).min(Duration::from_secs(1));
        }
    }

    /// Sends one plaintext command on the admin socket and returns the
    /// full reply.
    ///
    /// # Errors
    ///
    /// Fails on connection errors.
    pub fn admin(&self, command: &str) -> Result<String, String> {
        let path = self.root.join(ADMIN_SOCKET);
        let mut conn = UnixStream::connect(&path)
            .map_err(|e| format!("cannot reach the admin plane at {path:?}: {e}"))?;
        conn.write_all(command.as_bytes())
            .and_then(|()| conn.write_all(b"\n"))
            .map_err(|e| format!("admin request failed: {e}"))?;
        conn.shutdown(std::net::Shutdown::Write)
            .map_err(|e| format!("admin request failed: {e}"))?;
        let mut reply = String::new();
        conn.read_to_string(&mut reply)
            .map_err(|e| format!("admin reply failed: {e}"))?;
        Ok(reply)
    }

    /// Fetches the admin `stats` snapshot as sorted `(name, value)`
    /// pairs.
    ///
    /// # Errors
    ///
    /// Fails on connection errors or a malformed reply.
    pub fn stats(&self) -> Result<Vec<(String, u64)>, String> {
        let reply = self.admin("stats")?;
        let mut out = Vec::new();
        for line in reply.lines() {
            if line == "END" {
                return Ok(out);
            }
            let mut it = line.split_whitespace();
            match (it.next(), it.next(), it.next(), it.next()) {
                (Some("STAT"), Some(name), Some(value), None) => {
                    let value = value
                        .parse()
                        .map_err(|_| format!("bad stat value in `{line}`"))?;
                    out.push((name.to_string(), value));
                }
                _ => return Err(format!("bad stats line `{line}`")),
            }
        }
        Err("stats reply missing END".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_states_round_trip() {
        for s in [
            JobState::Submitted,
            JobState::Running,
            JobState::Done,
            JobState::Cancelled,
            JobState::Failed,
            JobState::QuotaExceeded,
        ] {
            assert_eq!(JobState::parse(s.as_str()), Some(s));
        }
        assert_eq!(JobState::parse("zombie"), None);
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::QuotaExceeded.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(!JobState::Submitted.is_terminal());
        assert!(JobState::Done.has_result());
        assert!(JobState::QuotaExceeded.has_result());
        assert!(!JobState::Failed.has_result());
    }

    #[test]
    fn calls_fail_cleanly_without_a_daemon() {
        let client = ServeClient::new("/nonexistent/serve-root");
        assert!(client.list().is_err());
        assert!(client.admin("stats").is_err());
        assert!(client.status("job-0001").is_err());
    }
}
