//! The EMD-based error model (paper Sec. III-C, Eq. 1).
//!
//! The error between a candidate profile and the target profile is the sum
//! of pairwise Earth Mover's Distances over the metric distributions, with
//! both axes normalized to `[0, 1]`, plus normalized distances between the
//! cache-sensitivity curves. Metrics are weighted equally by default so no
//! single mismatched metric dominates; weights can be overridden to
//! prioritize metrics (the Sec. V-C IPC-reweighting experiment and the
//! Fig. 11 single-metric sweeps use this).

use crate::metrics::{CurveMetric, DistMetric};
use crate::profile::{CurvePoint, Profile};
use datamime_stats::emd::{curve_distance_iter, emd_normalized, ks_statistic};
use std::collections::BTreeMap;

/// Distance used to compare metric distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceKind {
    /// Earth Mover's Distance with normalized axes (the paper's choice).
    Emd,
    /// Two-sample Kolmogorov–Smirnov statistic (the alternative the paper
    /// cites; used by the distance ablation).
    KolmogorovSmirnov,
}

/// Per-metric weights for the error model.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricWeights {
    dist: BTreeMap<DistMetric, f64>,
    curve: BTreeMap<CurveMetric, f64>,
    /// Distance function between distributions.
    pub distance: DistanceKind,
}

impl MetricWeights {
    /// Equal weights on everything (the paper's default).
    pub fn equal() -> Self {
        MetricWeights {
            dist: DistMetric::ALL.iter().map(|&m| (m, 1.0)).collect(),
            curve: CurveMetric::ALL.iter().map(|&m| (m, 1.0)).collect(),
            distance: DistanceKind::Emd,
        }
    }

    /// Weight for a single distribution metric and nothing else (Fig. 11's
    /// single-metric range sweeps).
    pub fn only(metric: DistMetric) -> Self {
        let mut w = MetricWeights {
            dist: DistMetric::ALL.iter().map(|&m| (m, 0.0)).collect(),
            curve: CurveMetric::ALL.iter().map(|&m| (m, 0.0)).collect(),
            distance: DistanceKind::Emd,
        };
        w.dist.insert(metric, 1.0);
        w
    }

    /// Overrides one distribution metric's weight (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or non-finite.
    pub fn with_dist_weight(mut self, metric: DistMetric, weight: f64) -> Self {
        assert!(weight.is_finite() && weight >= 0.0, "invalid weight");
        self.dist.insert(metric, weight);
        self
    }

    /// Overrides one curve metric's weight (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or non-finite.
    pub fn with_curve_weight(mut self, metric: CurveMetric, weight: f64) -> Self {
        assert!(weight.is_finite() && weight >= 0.0, "invalid weight");
        self.curve.insert(metric, weight);
        self
    }

    /// Weight of a distribution metric.
    pub fn dist_weight(&self, metric: DistMetric) -> f64 {
        self.dist[&metric]
    }

    /// Weight of a curve metric.
    pub fn curve_weight(&self, metric: CurveMetric) -> f64 {
        self.curve[&metric]
    }
}

impl Default for MetricWeights {
    fn default() -> Self {
        MetricWeights::equal()
    }
}

/// Per-metric error breakdown of one comparison.
#[derive(Debug, Clone)]
pub struct ErrorBreakdown {
    /// Per-distribution-metric normalized distance (unweighted).
    pub dists: BTreeMap<DistMetric, f64>,
    /// Per-curve-metric normalized distance (unweighted).
    pub curves: BTreeMap<CurveMetric, f64>,
    /// The weighted total (Eq. 1).
    pub total: f64,
}

impl ErrorBreakdown {
    /// Renders the breakdown as a compact single line.
    pub fn summary(&self) -> String {
        let mut s = format!("total={:.4}", self.total);
        for (m, e) in &self.dists {
            s.push_str(&format!(" {}={:.3}", m.key(), e));
        }
        for (m, e) in &self.curves {
            s.push_str(&format!(" {}={:.3}", m.key(), e));
        }
        s
    }
}

/// Computes the weighted profile error `E(candidate; target)` with a full
/// per-metric breakdown.
///
/// Curve metrics are skipped when either profile has no curve (e.g. on
/// machines without CAT) or the grids differ in length.
pub fn profile_error(
    target: &Profile,
    candidate: &Profile,
    weights: &MetricWeights,
) -> ErrorBreakdown {
    let mut dists = BTreeMap::new();
    let mut total = 0.0;
    for m in DistMetric::ALL {
        let d = match weights.distance {
            DistanceKind::Emd => emd_normalized(target.dist(m), candidate.dist(m)),
            DistanceKind::KolmogorovSmirnov => ks_statistic(target.dist(m), candidate.dist(m)),
        };
        total += weights.dist_weight(m) * d;
        dists.insert(m, d);
    }
    let mut curves = BTreeMap::new();
    for m in CurveMetric::ALL {
        let (t, c) = (target.curve(), candidate.curve());
        if t.is_empty() || t.len() != c.len() {
            continue;
        }
        // Compare straight off the curve rows; collecting y-values into
        // temporaries here used to be the last allocation in a profile
        // comparison.
        let pick = |p: &CurvePoint| match m {
            CurveMetric::LlcMpkiCurve => p.llc_mpki,
            CurveMetric::IpcCurve => p.ipc,
        };
        let d = curve_distance_iter(t.iter().map(pick), c.iter().map(pick));
        total += weights.curve_weight(m) * d;
        curves.insert(m, d);
    }
    ErrorBreakdown {
        dists,
        curves,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{CurvePoint, Profile};
    use datamime_sim::MetricSample;

    fn profile_with_ipc(ipcs: &[f64], curve: Vec<CurvePoint>) -> Profile {
        let samples: Vec<MetricSample> = ipcs
            .iter()
            .map(|&ipc| MetricSample {
                ipc,
                ..MetricSample::default()
            })
            .collect();
        Profile::from_samples(&samples, curve).unwrap()
    }

    #[test]
    fn identical_profiles_have_zero_error() {
        let p = profile_with_ipc(&[1.0, 1.5, 2.0], vec![]);
        let e = profile_error(&p, &p, &MetricWeights::equal());
        assert_eq!(e.total, 0.0);
        assert!(e.dists.values().all(|&d| d == 0.0));
    }

    #[test]
    fn error_grows_with_ipc_mismatch() {
        let t = profile_with_ipc(&[1.0, 1.0], vec![]);
        let near = profile_with_ipc(&[1.1, 1.1], vec![]);
        let far = profile_with_ipc(&[2.0, 2.0], vec![]);
        let w = MetricWeights::equal();
        let e_near = profile_error(&t, &near, &w).total;
        let e_far = profile_error(&t, &far, &w).total;
        assert!(e_far > e_near, "far {e_far} near {e_near}");
    }

    #[test]
    fn only_weights_isolate_one_metric() {
        let t = profile_with_ipc(&[1.0], vec![]);
        let c = profile_with_ipc(&[2.0], vec![]);
        let e = profile_error(&t, &c, &MetricWeights::only(DistMetric::BranchMpki));
        // IPC differs but has zero weight; branch MPKI is 0 in both.
        assert_eq!(e.total, 0.0);
        let e2 = profile_error(&t, &c, &MetricWeights::only(DistMetric::Ipc));
        assert!(e2.total > 0.0);
    }

    #[test]
    fn curve_mismatch_contributes() {
        let curve_a = vec![CurvePoint {
            cache_bytes: 1 << 20,
            llc_mpki: 10.0,
            ipc: 0.5,
        }];
        let curve_b = vec![CurvePoint {
            cache_bytes: 1 << 20,
            llc_mpki: 2.0,
            ipc: 1.5,
        }];
        let t = profile_with_ipc(&[1.0], curve_a);
        let c = profile_with_ipc(&[1.0], curve_b);
        let e = profile_error(&t, &c, &MetricWeights::equal());
        assert!(e.curves[&CurveMetric::LlcMpkiCurve] > 0.0);
        assert!(e.curves[&CurveMetric::IpcCurve] > 0.0);
        assert!(e.total > 0.0);
    }

    #[test]
    fn missing_curves_are_skipped_not_fatal() {
        let t = profile_with_ipc(&[1.0], vec![]);
        let c = profile_with_ipc(
            &[1.0],
            vec![CurvePoint {
                cache_bytes: 1,
                llc_mpki: 1.0,
                ipc: 1.0,
            }],
        );
        let e = profile_error(&t, &c, &MetricWeights::equal());
        assert!(e.curves.is_empty());
    }

    #[test]
    fn ks_distance_option() {
        let t = profile_with_ipc(&[1.0, 1.0], vec![]);
        let c = profile_with_ipc(&[2.0, 2.0], vec![]);
        let mut w = MetricWeights::equal();
        w.distance = DistanceKind::KolmogorovSmirnov;
        let e = profile_error(&t, &c, &w);
        assert!(
            (e.dists[&DistMetric::Ipc] - 1.0).abs() < 1e-12,
            "disjoint -> KS = 1"
        );
    }

    #[test]
    fn normalized_errors_are_bounded() {
        let t = profile_with_ipc(&[0.5, 1.0, 1.5], vec![]);
        let c = profile_with_ipc(&[3.0, 3.5, 4.0], vec![]);
        let e = profile_error(&t, &c, &MetricWeights::equal());
        for (&m, &d) in &e.dists {
            assert!((0.0..=1.0).contains(&d), "{m}: {d}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn negative_weight_panics() {
        MetricWeights::equal().with_dist_weight(DistMetric::Ipc, -1.0);
    }
}
