//! The Datamime search loop (paper Sec. III-C and Fig. 5).
//!
//! Each iteration: the optimizer proposes dataset-generator parameters,
//! the generator synthesizes a dataset, the benchmark runs and is profiled
//! exactly like the target, the EMD error against the target profile is
//! computed, and the error is fed back to the optimizer.
//!
//! The loop itself is executed by [`datamime_runtime`]'s [`Executor`]: this
//! module supplies the evaluation closure (instantiate → profile → error)
//! and translates between the search-level and runtime-level vocabularies.
//! [`search`] runs the executor with `batch_k = 1`, which is bit-for-bit
//! the paper's sequential loop; [`search_with_runtime`] exposes batching,
//! worker pools, journaling and resume.

use crate::arena::EvalArena;
use crate::error_model::{profile_error, MetricWeights};
use crate::generator::{DatasetGenerator, ParamSpec};
use crate::profile::Profile;
use crate::profiler::{profile_workload, profile_workload_cancellable_in, ProfilingConfig};
use crate::workload::Workload;
use datamime_bayesopt::{BayesOpt, BlackBoxOptimizer, BoConfig, RandomSearch};
use datamime_runtime::{
    canonical_bits, fingerprint, replay, CancelToken, DiskFaultInjector, ExecError, Executor,
    FailPolicy, FanoutSink, FaultPlan, GateHandle, JournalWriter, MemoKeyFn, MetricsRegistry,
    MetricsSink, QuotaCause, RunMeta, RunOutcome, SharedSink, StageTimes, StderrSink,
    SupervisorConfig,
};
use datamime_sim::MachineConfig;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Which optimizer drives the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// GP-EI Bayesian optimization (the paper's choice).
    Bayesian,
    /// Uniform random search (ablation baseline).
    Random,
}

impl OptimizerKind {
    /// The tag written into journal headers (and matched on resume).
    pub fn tag(self) -> &'static str {
        match self {
            OptimizerKind::Bayesian => "bayesian",
            OptimizerKind::Random => "random",
        }
    }
}

/// Configuration of one Datamime search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Number of optimizer iterations (the paper runs 200).
    pub iterations: usize,
    /// Machine the benchmark is generated on (the paper uses Broadwell).
    pub machine: MachineConfig,
    /// Profiling fidelity per iteration.
    pub profiling: ProfilingConfig,
    /// Metric weights of the error model.
    pub weights: MetricWeights,
    /// Optimizer selection.
    pub optimizer: OptimizerKind,
    /// Seed for the optimizer.
    pub seed: u64,
}

impl SearchConfig {
    /// A configuration mirroring the paper's methodology (Sec. IV): 200
    /// iterations on Broadwell with full-fidelity profiling.
    pub fn paper_default() -> Self {
        SearchConfig {
            iterations: 200,
            machine: MachineConfig::broadwell(),
            profiling: ProfilingConfig::paper_default(),
            weights: MetricWeights::equal(),
            optimizer: OptimizerKind::Bayesian,
            seed: 0xDA7A_417E,
        }
    }

    /// A reduced-cost configuration for quick experiments and tests.
    pub fn fast(iterations: usize) -> Self {
        SearchConfig {
            iterations,
            machine: MachineConfig::broadwell(),
            profiling: ProfilingConfig::fast(),
            weights: MetricWeights::equal(),
            optimizer: OptimizerKind::Bayesian,
            seed: 0xDA7A_417E,
        }
    }
}

/// How the runtime executes a search: batching, workers, journaling, and
/// fault tolerance.
///
/// # Examples
///
/// ```
/// use datamime::search::RuntimeOptions;
/// use std::time::Duration;
///
/// // Four-wide parallel search with a five-minute evaluation deadline,
/// // two retries per failing point, and a crash-safe journal.
/// let opts = RuntimeOptions {
///     journal: Some("run.jsonl".into()),
///     eval_timeout: Some(Duration::from_secs(300)),
///     max_retries: 2,
///     ..RuntimeOptions::parallel(4)
/// };
/// assert_eq!((opts.batch_k, opts.workers), (4, 4));
/// assert!(!opts.no_memo); // the evaluation memo cache is on by default
/// ```
#[derive(Debug, Clone, Default)]
pub struct RuntimeOptions {
    /// Suggestions drawn per optimizer batch (0 or 1 = sequential).
    pub batch_k: usize,
    /// Worker threads evaluating a batch (0 or 1 = no pool). Ignored by
    /// the process backend, which sizes its own worker pool.
    pub workers: usize,
    /// Where evaluations run: in-process threads (the default) or a pool
    /// of `datamime-worker` OS processes. Results are bit-identical
    /// either way for the same `(seed, batch_k)`.
    pub backend: BackendChoice,
    /// Journal every event to this file (crash-safe, resumable).
    pub journal: Option<PathBuf>,
    /// Resume from this journal, re-observing its points instead of
    /// re-profiling them.
    pub resume: Option<PathBuf>,
    /// Stream progress lines to stderr.
    pub progress: bool,
    /// Wall-clock budget per evaluation attempt (`None` = unlimited);
    /// exceeding it cancels the profiler cooperatively and penalizes (or
    /// aborts, per `fail_policy`) the evaluation.
    pub eval_timeout: Option<Duration>,
    /// Retries (with deterministic exponential backoff) after a failed
    /// evaluation attempt before the fail policy applies.
    pub max_retries: u32,
    /// Whether an evaluation that still fails after retries aborts the
    /// run or is penalized so the search continues (the default).
    pub fail_policy: FailPolicy,
    /// Deterministic fault-injection plan (tests and CI only).
    pub fault_plan: Option<FaultPlan>,
    /// Disable the evaluation memo cache, forcing every suggestion to pay
    /// a fresh simulator run even when its quantized dataset parameters
    /// were already evaluated. Memoization never changes results (hits
    /// observe the exact error the original evaluation produced), so this
    /// exists for A/B accounting and debugging, not correctness.
    pub no_memo: bool,
    /// Emit a stderr progress line every N evaluations when `progress` is
    /// set (`None` = the [`StderrSink`] default of 10).
    pub progress_every: Option<usize>,
    /// An additional progress sink attached alongside (or instead of) the
    /// stderr sink — how the serve daemon taps per-job progress without
    /// touching the evaluation path.
    pub extra_sink: Option<SharedSink>,
    /// A gate consulted at every batch boundary before fresh evaluations
    /// are dispatched. Gates can only *delay* or *stop* a run (leaving a
    /// resumable journal), never reorder it, so fixed-seed results are
    /// unaffected — this is how the serve scheduler interleaves jobs and
    /// how graceful shutdown drains in-flight work.
    pub batch_gate: Option<GateHandle>,
    /// A metrics registry fed by the run: evaluation/cache-hit/fault
    /// counters and per-stage timings, plus `worker_restarts` from the
    /// process backend's broker.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Evaluation quota: stop with the best-so-far once this many
    /// observations exist. Checked at batch boundaries over the
    /// deterministic observation order, so a resumed run stops at the
    /// identical point with the identical result.
    pub max_evals: Option<usize>,
    /// Wall-clock quota for the whole run, checked at batch boundaries.
    /// The clock restarts on resume: it bounds one process's effort and
    /// is deliberately not part of the deterministic state.
    pub wall_clock: Option<Duration>,
    /// Deterministic disk-fault injection threaded into the journal
    /// writer (crash-matrix tests only).
    pub disk_faults: Option<DiskFaultInjector>,
}

/// Where a search's evaluations execute.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum BackendChoice {
    /// The in-process worker-thread pool (the default).
    #[default]
    Thread,
    /// A broker-managed pool of `datamime-worker` OS processes speaking
    /// the [`datamime_dist`] wire protocol: deadlines are enforced by
    /// SIGKILL and a crashing evaluation cannot take the search down.
    Process(ProcOptions),
}

/// Options of the process backend.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcOptions {
    /// Worker processes (0 = one).
    pub workers: usize,
    /// Worker binary; defaults to the `DATAMIME_WORKER` environment
    /// variable, then a `datamime-worker` next to the current
    /// executable.
    pub worker_bin: Option<PathBuf>,
}

impl RuntimeOptions {
    /// Sequential, no journal, no progress — the legacy behavior.
    pub fn sequential() -> Self {
        RuntimeOptions::default()
    }

    /// Evaluate `batch` candidates at a time on `batch` worker threads.
    pub fn parallel(batch: usize) -> Self {
        RuntimeOptions {
            batch_k: batch,
            workers: batch,
            ..RuntimeOptions::default()
        }
    }
}

/// One evaluated point of the search.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// Unit-hypercube parameters proposed by the optimizer.
    pub unit_params: Vec<f64>,
    /// Total weighted EMD error against the target.
    pub error: f64,
}

/// Evaluation accounting for one search run: how many points actually
/// paid for a simulator profile versus being served for free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Points profiled through the simulator.
    pub evaluated: usize,
    /// Points observed from the evaluation memo cache (the optimizer
    /// re-suggested a point whose quantized dataset parameters were
    /// already evaluated).
    pub cache_hits: usize,
    /// Points re-observed from a resumed journal.
    pub replayed: usize,
}

/// The outcome of a Datamime search.
#[derive(Debug)]
pub struct SearchOutcome {
    /// Best (lowest-error) unit parameters found.
    pub best_unit_params: Vec<f64>,
    /// The corresponding synthesized workload.
    pub best_workload: Workload,
    /// The best workload's profile.
    pub best_profile: Profile,
    /// The best total error.
    pub best_error: f64,
    /// Every evaluated iteration, in order.
    pub history: Vec<IterationRecord>,
    /// Evaluation accounting (memo-cache savings included).
    pub stats: SearchStats,
    /// Set when a per-run quota (`max_evals` / `wall_clock`) stopped the
    /// search before `iterations` observations; the result above is the
    /// best-so-far at that boundary.
    pub quota: Option<QuotaCause>,
}

impl SearchOutcome {
    /// The running minimum error per iteration (the y-axis of Fig. 10).
    pub fn running_min(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.history.len());
        let mut best = f64::INFINITY;
        for r in &self.history {
            best = best.min(r.error);
            out.push(best);
        }
        out
    }
}

fn make_optimizer(cfg: &SearchConfig, dims: usize) -> Box<dyn BlackBoxOptimizer> {
    match cfg.optimizer {
        OptimizerKind::Bayesian => Box::new(BayesOpt::new(BoConfig::for_dims(dims), cfg.seed)),
        OptimizerKind::Random => Box::new(RandomSearch::new(dims, cfg.seed)),
    }
}

fn run_meta(
    generator: &dyn DatasetGenerator,
    cfg: &SearchConfig,
    opts: &RuntimeOptions,
) -> RunMeta {
    RunMeta {
        label: generator.name().to_string(),
        seed: cfg.seed,
        dims: generator.dims(),
        iterations: cfg.iterations,
        batch_k: opts.batch_k.max(1),
        workers: opts.workers.max(1),
        optimizer: cfg.optimizer.tag().to_string(),
    }
}

/// Denormalizes a unit point through the generator's parameter specs —
/// the *quantized* parameter values that actually shape the dataset.
/// Integer rounding and log scales map many unit points onto one
/// parameter point, which is exactly what the evaluation memo cache keys
/// on.
fn denormalized_params(specs: &[ParamSpec], unit: &[f64]) -> Vec<f64> {
    specs
        .iter()
        .zip(unit)
        .map(|(spec, &u)| spec.denormalize(u))
        .collect()
}

/// The memo key projection handed to the executor: unit point →
/// quantized parameter point, owned so it outlives the borrowed
/// generator.
fn memo_key(generator: &dyn DatasetGenerator) -> MemoKeyFn {
    let specs: Vec<ParamSpec> = generator.param_specs().to_vec();
    Box::new(move |unit| denormalized_params(&specs, unit))
}

/// FNV-1a over a string, for folding `Debug` representations of
/// configuration into the memo context fingerprint.
pub(crate) fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The memo context: everything beyond the parameter point that fixes an
/// evaluation's outcome — machine configuration, profiling fidelity,
/// error-model weights, and the seed. The process backend extends this
/// with protocol/worker identity (see [`crate::distproc::dist_context`]).
pub(crate) fn memo_context(cfg: &SearchConfig) -> u64 {
    fingerprint(&[
        cfg.seed,
        hash_str(&format!("{:?}", cfg.machine)),
        hash_str(&format!("{:?}", cfg.profiling)),
        hash_str(&format!("{:?}", cfg.weights)),
    ])
}

/// The winning evaluation's artifacts, remembered so [`finish`] can
/// package the outcome without re-instantiating and re-profiling the
/// best point (which used to cost one full extra simulator run).
struct BestEval {
    error: f64,
    key_bits: Vec<u64>,
    workload: Workload,
    profile: Profile,
}

/// Tracks the lowest-error evaluation seen so far. Shared across worker
/// threads behind a mutex; [`finish`] validates the remembered artifacts
/// against the executor's (deterministic) winner before reusing them, so
/// completion-order races can only cost a recomputation, never change
/// the result.
#[derive(Default)]
struct BestTracker(Mutex<Option<BestEval>>);

impl BestTracker {
    /// Offers one finished evaluation; keeps it if it beats the
    /// incumbent.
    fn offer(&self, error: f64, key_bits: Vec<u64>, workload: &Workload, profile: &Profile) {
        if !error.is_finite() {
            return;
        }
        // A poisoned lock means another evaluation panicked mid-offer;
        // the slot still holds a complete incumbent (the Option is only
        // ever replaced whole), and `finish` re-validates whatever we
        // keep, so recovering is always safe — and panicking here would
        // burn a supervisor retry on bookkeeping.
        let mut slot = self
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if slot.as_ref().is_none_or(|b| error < b.error) {
            *slot = Some(BestEval {
                error,
                key_bits,
                workload: workload.clone(),
                profile: profile.clone(),
            });
        }
    }

    fn take(self) -> Option<BestEval> {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// One evaluation: instantiate → profile → error, with each stage timed.
/// The cancel token reaches the profiler's sampling loops so a deadline
/// can stop a runaway evaluation cooperatively.
fn evaluate(
    generator: &dyn DatasetGenerator,
    target_profile: &Profile,
    cfg: &SearchConfig,
    tracker: &BestTracker,
    unit: &[f64],
    stages: &mut StageTimes,
    cancel: &CancelToken,
) -> f64 {
    let workload = stages.time("instantiate", || generator.instantiate(unit));
    let profile = stages.time("profile", || {
        // Each worker thread recycles its simulator state across
        // evaluations (and across supervisor retries) through its
        // thread-local arena; results are bit-identical to fresh state.
        EvalArena::with_thread_local(|arena| {
            profile_workload_cancellable_in(&workload, &cfg.machine, &cfg.profiling, cancel, arena)
        })
    });
    let error = stages.time("error", || {
        profile_error(target_profile, &profile, &cfg.weights).total
    });
    // A cancelled evaluation produced a truncated profile and will be
    // penalized by the supervisor — its artifacts must not be remembered.
    if !cancel.is_cancelled() {
        let key_bits = canonical_bits(&denormalized_params(generator.param_specs(), unit));
        tracker.offer(error, key_bits, &workload, &profile);
    }
    error
}

/// The supervisor configuration implied by `opts` (penalty, backoff, and
/// quarantine knobs keep their defaults).
fn supervision(opts: &RuntimeOptions) -> SupervisorConfig {
    SupervisorConfig {
        deadline: opts.eval_timeout,
        max_retries: opts.max_retries,
        fail_policy: opts.fail_policy,
        fault_plan: opts.fault_plan.clone(),
        ..SupervisorConfig::default()
    }
}

/// Packages the outcome, reusing the tracked best evaluation's workload
/// and profile when they provably belong to the executor's winner (same
/// error bits, same quantized parameter point); otherwise re-profiles the
/// best point as before — the only case left is a resumed run whose best
/// point was replayed from the journal rather than evaluated here.
fn finish(
    generator: &dyn DatasetGenerator,
    cfg: &SearchConfig,
    run: RunOutcome,
    tracker: BestTracker,
) -> SearchOutcome {
    let stats = SearchStats {
        evaluated: run.telemetry.evaluated(),
        cache_hits: run.telemetry.cache_hits(),
        replayed: run.replayed,
    };
    let quota = run.quota;
    let best_key = canonical_bits(&denormalized_params(
        generator.param_specs(),
        &run.best_unit,
    ));
    let reuse = tracker
        .take()
        .filter(|b| b.error.to_bits() == run.best_error.to_bits() && b.key_bits == best_key);
    let (best_workload, best_profile) = match reuse {
        Some(b) => (b.workload, b.profile),
        None => {
            let w = generator.instantiate(&run.best_unit);
            let p = profile_workload(&w, &cfg.machine, &cfg.profiling);
            (w, p)
        }
    };
    SearchOutcome {
        best_unit_params: run.best_unit,
        best_workload,
        best_profile,
        best_error: run.best_error,
        history: run
            .history
            .into_iter()
            .map(|r| IterationRecord {
                unit_params: r.unit,
                error: r.error,
            })
            .collect(),
        stats,
        quota,
    }
}

/// Builds the executor from `opts`: supervision, memoization, journal,
/// resume, progress sink. Memoization is keyed on the generator's
/// quantized parameter point (not the raw unit point) so re-suggestions
/// that round to an already-evaluated dataset are served from cache.
fn build_executor(
    generator: &dyn DatasetGenerator,
    memo_ctx: u64,
    meta: RunMeta,
    opts: &RuntimeOptions,
) -> Result<Executor, ExecError> {
    let mut exec = Executor::new(meta)
        .supervise(supervision(opts))
        .quota(opts.max_evals, opts.wall_clock);
    if !opts.no_memo {
        exec = exec.memoize_keyed(memo_ctx, memo_key(generator));
    }
    let mut fanout = FanoutSink::new();
    if opts.progress {
        let every = opts.progress_every.unwrap_or(10);
        fanout.push(Box::new(StderrSink::new(every)));
    }
    if let Some(extra) = &opts.extra_sink {
        fanout.push(Box::new(extra.clone()));
    }
    if let Some(metrics) = &opts.metrics {
        fanout.push(Box::new(MetricsSink::new(Arc::clone(metrics))));
    }
    if !fanout.is_empty() {
        exec = exec.sink(Box::new(fanout));
    }
    if let Some(gate) = &opts.batch_gate {
        exec = exec.gate(gate.arc());
    }
    let arm = |w: JournalWriter| match &opts.disk_faults {
        Some(inj) => w.with_faults(inj.clone()),
        None => w,
    };
    if let Some(resume_path) = &opts.resume {
        let replayed = replay(resume_path)?;
        exec = exec.resume(replayed)?;
        // Appending to the very journal being resumed keeps its replayed
        // prefix; any other journal path gets a fresh self-contained file.
        if let Some(journal_path) = &opts.journal {
            exec = if journal_path == resume_path {
                exec.journal(arm(JournalWriter::append(journal_path)?), true)
            } else {
                let writer = arm(JournalWriter::create(journal_path, exec.meta())?);
                exec.journal(writer, false)
            };
        }
    } else if let Some(journal_path) = &opts.journal {
        let writer = arm(JournalWriter::create(journal_path, exec.meta())?);
        exec = exec.journal(writer, false);
    }
    Ok(exec)
}

/// Runs a Datamime search under full runtime control: batched suggestions,
/// a worker pool, an optional crash-safe journal, and optional resume.
///
/// Results are a deterministic function of `(cfg.seed, opts.batch_k)`:
/// observations are applied in batch order regardless of worker scheduling,
/// and `batch_k <= 1` is bit-for-bit the sequential [`search`].
///
/// # Errors
///
/// Fails on journal I/O errors or when `opts.resume` names a journal
/// recorded under a different search configuration.
///
/// # Panics
///
/// Panics if `cfg.iterations == 0`.
pub fn search_with_runtime(
    generator: &(dyn DatasetGenerator + Sync),
    target_profile: &Profile,
    cfg: &SearchConfig,
    opts: &RuntimeOptions,
) -> Result<SearchOutcome, ExecError> {
    if let BackendChoice::Process(proc) = &opts.backend {
        return search_with_process_backend(generator, target_profile, cfg, opts, proc);
    }
    let mut optimizer = make_optimizer(cfg, generator.dims());
    let exec = build_executor(
        generator,
        memo_context(cfg),
        run_meta(generator, cfg, opts),
        opts,
    )?;
    let tracker = BestTracker::default();
    let run = exec.run(optimizer.as_mut(), &|unit, stages, cancel| {
        evaluate(
            generator,
            target_profile,
            cfg,
            &tracker,
            unit,
            stages,
            cancel,
        )
    })?;
    Ok(finish(generator, cfg, run, tracker))
}

/// Locates the `datamime-worker` binary: explicit option, then the
/// `DATAMIME_WORKER` environment variable, then a sibling of the current
/// executable.
fn resolve_worker_bin(proc: &ProcOptions) -> Result<PathBuf, String> {
    if let Some(bin) = &proc.worker_bin {
        return Ok(bin.clone());
    }
    if let Ok(bin) = std::env::var("DATAMIME_WORKER") {
        return Ok(PathBuf::from(bin));
    }
    let exe = std::env::current_exe()
        .map_err(|e| format!("cannot locate the current executable: {e}"))?;
    let sibling = exe.with_file_name("datamime-worker");
    if sibling.exists() {
        return Ok(sibling);
    }
    Err(format!(
        "no datamime-worker binary found (looked for {sibling:?}); build one with \
         `cargo build -p datamime --bin datamime-worker`, set DATAMIME_WORKER, or pass \
         ProcOptions::worker_bin"
    ))
}

/// Monotonic suffix for the per-run staging directories holding the
/// target-profile TSV handed to worker processes.
static PROC_RUN_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The process-backend variant of [`search_with_runtime`]: stages the
/// target profile on disk, starts a [`datamime_dist::Broker`] pool of
/// `datamime-worker` processes, and drives it through the same executor
/// engine — so journaling, resume, memoization, and observation order
/// are shared with the thread backend and results stay bit-identical.
fn search_with_process_backend(
    generator: &(dyn DatasetGenerator + Sync),
    target_profile: &Profile,
    cfg: &SearchConfig,
    opts: &RuntimeOptions,
    proc: &ProcOptions,
) -> Result<SearchOutcome, ExecError> {
    use crate::distproc::{dist_context, EvalSpec};
    use datamime_dist::{Broker, BrokerConfig};

    let dir = std::env::temp_dir().join(format!(
        "datamime-proc-{}-{}",
        std::process::id(),
        PROC_RUN_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir)
        .map_err(|e| ExecError::Backend(format!("cannot create {dir:?}: {e}")))?;
    let result = (|| {
        let target_path = dir.join("target.tsv");
        std::fs::write(&target_path, target_profile.to_tsv())
            .map_err(|e| ExecError::Backend(format!("cannot stage target profile: {e}")))?;
        let spec =
            EvalSpec::from_search(generator, cfg, target_path).map_err(ExecError::Backend)?;
        let ctx = dist_context(generator, cfg, target_profile);
        let mut bcfg = BrokerConfig::new(
            resolve_worker_bin(proc).map_err(ExecError::Backend)?,
            proc.workers.max(1),
        );
        bcfg.worker_args = spec.to_argv();
        if let Some(plan) = &opts.fault_plan {
            bcfg.worker_args.push("--fault".to_string());
            bcfg.worker_args.push(plan.to_spec());
        }
        bcfg.ctx_fingerprint = ctx;
        bcfg.seed = cfg.seed;
        bcfg.deadline = opts.eval_timeout;
        bcfg.max_retries = opts.max_retries;
        bcfg.fail_policy = opts.fail_policy;
        bcfg.penalty = datamime_bayesopt::PENALTY_OBJECTIVE;
        bcfg.metrics = opts.metrics.clone();
        let mut broker = Broker::start(bcfg).map_err(ExecError::Backend)?;
        let mut optimizer = make_optimizer(cfg, generator.dims());
        let exec = build_executor(generator, ctx, run_meta(generator, cfg, opts), opts)?;
        let run = exec.run_backend(optimizer.as_mut(), &mut broker)?;
        // No in-process evaluation ran, so there is no tracked winner to
        // reuse; `finish` re-profiles the best point locally (one extra
        // deterministic simulator run).
        Ok(finish(generator, cfg, run, BestTracker::default()))
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Runs a Datamime search for a dataset that makes `generator`'s program
/// mimic `target_profile`.
///
/// This is the paper's sequential loop, executed on the runtime with
/// `batch_k = 1`, no journal, and no supervision (so it cannot fail,
/// keeps the legacy fail-fast behavior, and needs no `Sync` bound on the
/// generator).
///
/// # Panics
///
/// Panics if `cfg.iterations == 0`.
pub fn search(
    generator: &dyn DatasetGenerator,
    target_profile: &Profile,
    cfg: &SearchConfig,
) -> SearchOutcome {
    let opts = RuntimeOptions::sequential();
    let mut optimizer = make_optimizer(cfg, generator.dims());
    let exec = Executor::new(run_meta(generator, cfg, &opts))
        .memoize_keyed(memo_context(cfg), memo_key(generator));
    let tracker = BestTracker::default();
    let run = exec
        .run_seq(optimizer.as_mut(), &mut |unit, stages, cancel| {
            evaluate(
                generator,
                target_profile,
                cfg,
                &tracker,
                unit,
                stages,
                cancel,
            )
        })
        // audit:allow(panic-safety): run_seq only fails on journal I/O, and this run has no journal
        .expect("journal-less sequential run cannot fail");
    finish(generator, cfg, run, tracker)
}

/// Runs a Datamime search with *parallel* candidate evaluation: the
/// optimizer proposes batches via the constant-liar strategy and a worker
/// pool of `batch` threads profiles them concurrently.
///
/// This is the parallelization the paper defers to future work (Sec. IV).
/// Results are deterministic for a given seed: observations are applied in
/// batch order regardless of thread completion order. With `batch == 1`
/// this reduces to the serial loop.
///
/// # Panics
///
/// Panics if `cfg.iterations == 0` or `batch == 0`.
pub fn search_parallel(
    generator: &(dyn DatasetGenerator + Sync),
    target_profile: &Profile,
    cfg: &SearchConfig,
    batch: usize,
) -> SearchOutcome {
    assert!(batch > 0, "batch must be positive");
    search_with_runtime(
        generator,
        target_profile,
        cfg,
        &RuntimeOptions::parallel(batch),
    )
    // audit:allow(panic-safety): search_with_runtime only fails on journal I/O, and these options set no journal
    .expect("journal-less parallel run cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::KvGenerator;
    use crate::metrics::DistMetric;
    use crate::workload::Workload;
    use datamime_apps::KvConfig;

    fn small_target() -> Workload {
        let mut w = Workload::mem_fb();
        if let crate::workload::AppConfig::Kv(c) = &mut w.app {
            *c = KvConfig {
                n_keys: 20_000,
                ..c.clone()
            };
        }
        w
    }

    #[test]
    fn search_reduces_error_over_iterations() {
        let cfg = SearchConfig {
            iterations: 14,
            ..SearchConfig::fast(14)
        };
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let outcome = search(&KvGenerator::new(), &target, &cfg);

        assert_eq!(outcome.history.len(), 14);
        let mins = outcome.running_min();
        assert!(mins.last().unwrap() <= mins.first().unwrap());
        assert_eq!(*mins.last().unwrap(), outcome.best_error);
        // The best profile should at least be in the same IPC ballpark.
        let t_ipc = target.mean(DistMetric::Ipc);
        let b_ipc = outcome.best_profile.mean(DistMetric::Ipc);
        assert!(
            (t_ipc - b_ipc).abs() / t_ipc < 0.5,
            "target ipc {t_ipc}, best {b_ipc}, err {}",
            outcome.best_error
        );
    }

    #[test]
    fn random_search_also_runs() {
        let mut cfg = SearchConfig::fast(5);
        cfg.optimizer = OptimizerKind::Random;
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let outcome = search(&KvGenerator::new(), &target, &cfg);
        assert_eq!(outcome.history.len(), 5);
        assert!(outcome.best_error.is_finite());
    }

    #[test]
    fn parallel_search_matches_serial_quality() {
        let mut cfg = SearchConfig::fast(12);
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let par = search_parallel(&KvGenerator::new(), &target, &cfg, 4);
        assert_eq!(par.history.len(), 12);
        let ser = search(&KvGenerator::new(), &target, &cfg);
        // Parallel batches explore slightly differently but must land in
        // the same quality regime.
        assert!(
            par.best_error < ser.best_error * 2.0 + 0.2,
            "parallel {} vs serial {}",
            par.best_error,
            ser.best_error
        );
    }

    #[test]
    fn parallel_search_is_deterministic() {
        let mut cfg = SearchConfig::fast(6);
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let a = search_parallel(&KvGenerator::new(), &target, &cfg, 3);
        let b = search_parallel(&KvGenerator::new(), &target, &cfg, 3);
        assert_eq!(a.best_error, b.best_error);
        assert_eq!(a.best_unit_params, b.best_unit_params);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let cfg = SearchConfig::fast(0);
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        search(&KvGenerator::new(), &target, &cfg);
    }

    #[test]
    fn faulty_evaluations_do_not_abort_the_search() {
        use datamime_runtime::InjectedFault;
        let mut cfg = SearchConfig::fast(8);
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let opts = RuntimeOptions {
            batch_k: 2,
            workers: 2,
            fault_plan: Some(
                FaultPlan::new()
                    .fail(1, InjectedFault::Panic)
                    .fail(4, InjectedFault::Nan),
            ),
            ..RuntimeOptions::default()
        };
        let outcome = search_with_runtime(&KvGenerator::new(), &target, &cfg, &opts)
            .expect("penalized faults must not abort the run");
        assert_eq!(outcome.history.len(), 8);
        assert!(outcome.best_error.is_finite());
        assert_eq!(
            outcome.history[1].error,
            datamime_bayesopt::PENALTY_OBJECTIVE
        );
        assert_eq!(
            outcome.history[4].error,
            datamime_bayesopt::PENALTY_OBJECTIVE
        );
    }

    #[test]
    fn abort_fail_policy_keeps_fail_fast_behavior() {
        use datamime_runtime::InjectedFault;
        let mut cfg = SearchConfig::fast(4);
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let opts = RuntimeOptions {
            fail_policy: FailPolicy::Abort,
            fault_plan: Some(FaultPlan::new().fail(2, InjectedFault::Panic)),
            ..RuntimeOptions::default()
        };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            search_with_runtime(&KvGenerator::new(), &target, &cfg, &opts)
        }))
        .expect_err("abort policy must re-raise the injected panic");
        let msg = datamime_runtime::supervisor::panic_message(err.as_ref());
        assert!(msg.contains("injected panic"), "unexpected payload: {msg}");
    }

    #[test]
    fn eval_timeout_penalizes_instead_of_hanging() {
        // A deadline of zero cancels every evaluation immediately; the
        // profiler returns a truncated profile, the supervisor classifies
        // the attempt as a timeout, and the search still completes.
        let mut cfg = SearchConfig::fast(3);
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let opts = RuntimeOptions {
            eval_timeout: Some(Duration::from_nanos(1)),
            ..RuntimeOptions::default()
        };
        let outcome = search_with_runtime(&KvGenerator::new(), &target, &cfg, &opts)
            .expect("timeouts must be penalized, not fatal");
        assert_eq!(outcome.history.len(), 3);
        for rec in &outcome.history {
            assert_eq!(rec.error, datamime_bayesopt::PENALTY_OBJECTIVE);
        }
    }

    #[test]
    fn resuggested_points_hit_the_memo_cache() {
        // On a bounded-resolution search space, GP-EI's proposals cluster
        // into a few grid cells as it converges, so it re-suggests points
        // whose quantized dataset parameters were already evaluated; those
        // must be served from the memo cache, not re-profiled.
        use crate::generator::QuantizedGenerator;
        let mut cfg = SearchConfig::fast(48);
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let outcome = search(
            &QuantizedGenerator::new(KvGenerator::new(), 4),
            &target,
            &cfg,
        );
        assert_eq!(outcome.history.len(), 48);
        assert_eq!(
            outcome.stats.evaluated + outcome.stats.cache_hits,
            48,
            "every iteration is either profiled or served from cache"
        );
        assert!(
            outcome.stats.cache_hits > 0,
            "expected at least one re-suggested point to hit the memo cache; stats: {:?}",
            outcome.stats
        );
    }

    #[test]
    fn best_profile_matches_fresh_profiling_of_best_workload() {
        // `finish` reuses the tracked winner's profile instead of
        // re-profiling; that cached profile must be byte-identical to a
        // fresh simulation of the same workload.
        let mut cfg = SearchConfig::fast(10);
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let outcome = search(&KvGenerator::new(), &target, &cfg);
        let fresh = profile_workload(&outcome.best_workload, &cfg.machine, &cfg.profiling);
        assert_eq!(
            outcome.best_profile.to_tsv(),
            fresh.to_tsv(),
            "cached best profile diverges from a fresh evaluation"
        );
    }

    #[test]
    fn outcome_is_bit_identical_across_worker_counts() {
        // Memoization and best-profile caching must not perturb the
        // executor's determinism guarantee: same seed + batch_k, different
        // worker counts, byte-identical best profile and identical stats.
        let mut cfg = SearchConfig::fast(12);
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let run = |workers: usize| {
            search_with_runtime(
                &KvGenerator::new(),
                &target,
                &cfg,
                &RuntimeOptions {
                    batch_k: 4,
                    workers,
                    ..RuntimeOptions::default()
                },
            )
            .unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.best_unit_params, b.best_unit_params);
        assert_eq!(a.best_error.to_bits(), b.best_error.to_bits());
        assert_eq!(a.best_profile.to_tsv(), b.best_profile.to_tsv());
        assert_eq!(a.stats, b.stats);
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.unit_params, y.unit_params);
            assert_eq!(x.error.to_bits(), y.error.to_bits());
        }
    }

    #[test]
    fn batch_one_runtime_matches_plain_search() {
        let mut cfg = SearchConfig::fast(8);
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let plain = search(&KvGenerator::new(), &target, &cfg);
        let runtime = search_with_runtime(
            &KvGenerator::new(),
            &target,
            &cfg,
            &RuntimeOptions::sequential(),
        )
        .unwrap();
        assert_eq!(plain.best_unit_params, runtime.best_unit_params);
        assert_eq!(plain.best_error.to_bits(), runtime.best_error.to_bits());
        for (a, b) in plain.history.iter().zip(&runtime.history) {
            assert_eq!(a.unit_params, b.unit_params);
            assert_eq!(a.error.to_bits(), b.error.to_bits());
        }
    }
}
