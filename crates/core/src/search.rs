//! The Datamime search loop (paper Sec. III-C and Fig. 5).
//!
//! Each iteration: the optimizer proposes dataset-generator parameters,
//! the generator synthesizes a dataset, the benchmark runs and is profiled
//! exactly like the target, the EMD error against the target profile is
//! computed, and the error is fed back to the optimizer.
//!
//! The loop itself is executed by [`datamime_runtime`]'s [`Executor`]: this
//! module supplies the evaluation closure (instantiate → profile → error)
//! and translates between the search-level and runtime-level vocabularies.
//! [`search`] runs the executor with `batch_k = 1`, which is bit-for-bit
//! the paper's sequential loop; [`search_with_runtime`] exposes batching,
//! worker pools, journaling and resume.

use crate::error_model::{profile_error, MetricWeights};
use crate::generator::DatasetGenerator;
use crate::profile::Profile;
use crate::profiler::{profile_workload, profile_workload_cancellable, ProfilingConfig};
use crate::workload::Workload;
use datamime_bayesopt::{BayesOpt, BlackBoxOptimizer, BoConfig, RandomSearch};
use datamime_runtime::{
    replay, CancelToken, ExecError, Executor, FailPolicy, FaultPlan, JournalWriter, RunMeta,
    RunOutcome, StageTimes, StderrSink, SupervisorConfig,
};
use datamime_sim::MachineConfig;
use std::path::PathBuf;
use std::time::Duration;

/// Which optimizer drives the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// GP-EI Bayesian optimization (the paper's choice).
    Bayesian,
    /// Uniform random search (ablation baseline).
    Random,
}

impl OptimizerKind {
    /// The tag written into journal headers (and matched on resume).
    pub fn tag(self) -> &'static str {
        match self {
            OptimizerKind::Bayesian => "bayesian",
            OptimizerKind::Random => "random",
        }
    }
}

/// Configuration of one Datamime search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Number of optimizer iterations (the paper runs 200).
    pub iterations: usize,
    /// Machine the benchmark is generated on (the paper uses Broadwell).
    pub machine: MachineConfig,
    /// Profiling fidelity per iteration.
    pub profiling: ProfilingConfig,
    /// Metric weights of the error model.
    pub weights: MetricWeights,
    /// Optimizer selection.
    pub optimizer: OptimizerKind,
    /// Seed for the optimizer.
    pub seed: u64,
}

impl SearchConfig {
    /// A configuration mirroring the paper's methodology (Sec. IV): 200
    /// iterations on Broadwell with full-fidelity profiling.
    pub fn paper_default() -> Self {
        SearchConfig {
            iterations: 200,
            machine: MachineConfig::broadwell(),
            profiling: ProfilingConfig::paper_default(),
            weights: MetricWeights::equal(),
            optimizer: OptimizerKind::Bayesian,
            seed: 0xDA7A_417E,
        }
    }

    /// A reduced-cost configuration for quick experiments and tests.
    pub fn fast(iterations: usize) -> Self {
        SearchConfig {
            iterations,
            machine: MachineConfig::broadwell(),
            profiling: ProfilingConfig::fast(),
            weights: MetricWeights::equal(),
            optimizer: OptimizerKind::Bayesian,
            seed: 0xDA7A_417E,
        }
    }
}

/// How the runtime executes a search: batching, workers, journaling, and
/// fault tolerance.
#[derive(Debug, Clone, Default)]
pub struct RuntimeOptions {
    /// Suggestions drawn per optimizer batch (0 or 1 = sequential).
    pub batch_k: usize,
    /// Worker threads evaluating a batch (0 or 1 = no pool).
    pub workers: usize,
    /// Journal every event to this file (crash-safe, resumable).
    pub journal: Option<PathBuf>,
    /// Resume from this journal, re-observing its points instead of
    /// re-profiling them.
    pub resume: Option<PathBuf>,
    /// Stream progress lines to stderr.
    pub progress: bool,
    /// Wall-clock budget per evaluation attempt (`None` = unlimited);
    /// exceeding it cancels the profiler cooperatively and penalizes (or
    /// aborts, per `fail_policy`) the evaluation.
    pub eval_timeout: Option<Duration>,
    /// Retries (with deterministic exponential backoff) after a failed
    /// evaluation attempt before the fail policy applies.
    pub max_retries: u32,
    /// Whether an evaluation that still fails after retries aborts the
    /// run or is penalized so the search continues (the default).
    pub fail_policy: FailPolicy,
    /// Deterministic fault-injection plan (tests and CI only).
    pub fault_plan: Option<FaultPlan>,
}

impl RuntimeOptions {
    /// Sequential, no journal, no progress — the legacy behavior.
    pub fn sequential() -> Self {
        RuntimeOptions::default()
    }

    /// Evaluate `batch` candidates at a time on `batch` worker threads.
    pub fn parallel(batch: usize) -> Self {
        RuntimeOptions {
            batch_k: batch,
            workers: batch,
            ..RuntimeOptions::default()
        }
    }
}

/// One evaluated point of the search.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// Unit-hypercube parameters proposed by the optimizer.
    pub unit_params: Vec<f64>,
    /// Total weighted EMD error against the target.
    pub error: f64,
}

/// The outcome of a Datamime search.
#[derive(Debug)]
pub struct SearchOutcome {
    /// Best (lowest-error) unit parameters found.
    pub best_unit_params: Vec<f64>,
    /// The corresponding synthesized workload.
    pub best_workload: Workload,
    /// The best workload's profile.
    pub best_profile: Profile,
    /// The best total error.
    pub best_error: f64,
    /// Every evaluated iteration, in order.
    pub history: Vec<IterationRecord>,
}

impl SearchOutcome {
    /// The running minimum error per iteration (the y-axis of Fig. 10).
    pub fn running_min(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.history.len());
        let mut best = f64::INFINITY;
        for r in &self.history {
            best = best.min(r.error);
            out.push(best);
        }
        out
    }
}

fn make_optimizer(cfg: &SearchConfig, dims: usize) -> Box<dyn BlackBoxOptimizer> {
    match cfg.optimizer {
        OptimizerKind::Bayesian => Box::new(BayesOpt::new(BoConfig::for_dims(dims), cfg.seed)),
        OptimizerKind::Random => Box::new(RandomSearch::new(dims, cfg.seed)),
    }
}

fn run_meta(
    generator: &dyn DatasetGenerator,
    cfg: &SearchConfig,
    opts: &RuntimeOptions,
) -> RunMeta {
    RunMeta {
        label: generator.name().to_string(),
        seed: cfg.seed,
        dims: generator.dims(),
        iterations: cfg.iterations,
        batch_k: opts.batch_k.max(1),
        workers: opts.workers.max(1),
        optimizer: cfg.optimizer.tag().to_string(),
    }
}

/// One evaluation: instantiate → profile → error, with each stage timed.
/// The cancel token reaches the profiler's sampling loops so a deadline
/// can stop a runaway evaluation cooperatively.
fn evaluate(
    generator: &dyn DatasetGenerator,
    target_profile: &Profile,
    cfg: &SearchConfig,
    unit: &[f64],
    stages: &mut StageTimes,
    cancel: &CancelToken,
) -> f64 {
    let workload = stages.time("instantiate", || generator.instantiate(unit));
    let profile = stages.time("profile", || {
        profile_workload_cancellable(&workload, &cfg.machine, &cfg.profiling, cancel)
    });
    stages.time("error", || {
        profile_error(target_profile, &profile, &cfg.weights).total
    })
}

/// The supervisor configuration implied by `opts` (penalty, backoff, and
/// quarantine knobs keep their defaults).
fn supervision(opts: &RuntimeOptions) -> SupervisorConfig {
    SupervisorConfig {
        deadline: opts.eval_timeout,
        max_retries: opts.max_retries,
        fail_policy: opts.fail_policy,
        fault_plan: opts.fault_plan.clone(),
        ..SupervisorConfig::default()
    }
}

/// Re-profiles the best point and packages the outcome.
fn finish(generator: &dyn DatasetGenerator, cfg: &SearchConfig, run: RunOutcome) -> SearchOutcome {
    let best_workload = generator.instantiate(&run.best_unit);
    let best_profile = profile_workload(&best_workload, &cfg.machine, &cfg.profiling);
    SearchOutcome {
        best_unit_params: run.best_unit,
        best_workload,
        best_profile,
        best_error: run.best_error,
        history: run
            .history
            .into_iter()
            .map(|r| IterationRecord {
                unit_params: r.unit,
                error: r.error,
            })
            .collect(),
    }
}

/// Builds the executor from `opts`: supervision, journal, resume,
/// progress sink.
fn build_executor(meta: RunMeta, opts: &RuntimeOptions) -> Result<Executor, ExecError> {
    let mut exec = Executor::new(meta).supervise(supervision(opts));
    if opts.progress {
        exec = exec.sink(Box::new(StderrSink::default()));
    }
    if let Some(resume_path) = &opts.resume {
        let replayed = replay(resume_path)?;
        exec = exec.resume(replayed)?;
        // Appending to the very journal being resumed keeps its replayed
        // prefix; any other journal path gets a fresh self-contained file.
        if let Some(journal_path) = &opts.journal {
            exec = if journal_path == resume_path {
                exec.journal(JournalWriter::append(journal_path)?, true)
            } else {
                let writer = JournalWriter::create(journal_path, exec.meta())?;
                exec.journal(writer, false)
            };
        }
    } else if let Some(journal_path) = &opts.journal {
        let writer = JournalWriter::create(journal_path, exec.meta())?;
        exec = exec.journal(writer, false);
    }
    Ok(exec)
}

/// Runs a Datamime search under full runtime control: batched suggestions,
/// a worker pool, an optional crash-safe journal, and optional resume.
///
/// Results are a deterministic function of `(cfg.seed, opts.batch_k)`:
/// observations are applied in batch order regardless of worker scheduling,
/// and `batch_k <= 1` is bit-for-bit the sequential [`search`].
///
/// # Errors
///
/// Fails on journal I/O errors or when `opts.resume` names a journal
/// recorded under a different search configuration.
///
/// # Panics
///
/// Panics if `cfg.iterations == 0`.
pub fn search_with_runtime(
    generator: &(dyn DatasetGenerator + Sync),
    target_profile: &Profile,
    cfg: &SearchConfig,
    opts: &RuntimeOptions,
) -> Result<SearchOutcome, ExecError> {
    let mut optimizer = make_optimizer(cfg, generator.dims());
    let exec = build_executor(run_meta(generator, cfg, opts), opts)?;
    let run = exec.run(optimizer.as_mut(), &|unit, stages, cancel| {
        evaluate(generator, target_profile, cfg, unit, stages, cancel)
    })?;
    Ok(finish(generator, cfg, run))
}

/// Runs a Datamime search for a dataset that makes `generator`'s program
/// mimic `target_profile`.
///
/// This is the paper's sequential loop, executed on the runtime with
/// `batch_k = 1`, no journal, and no supervision (so it cannot fail,
/// keeps the legacy fail-fast behavior, and needs no `Sync` bound on the
/// generator).
///
/// # Panics
///
/// Panics if `cfg.iterations == 0`.
pub fn search(
    generator: &dyn DatasetGenerator,
    target_profile: &Profile,
    cfg: &SearchConfig,
) -> SearchOutcome {
    let opts = RuntimeOptions::sequential();
    let mut optimizer = make_optimizer(cfg, generator.dims());
    let exec = Executor::new(run_meta(generator, cfg, &opts));
    let run = exec
        .run_seq(optimizer.as_mut(), &mut |unit, stages, cancel| {
            evaluate(generator, target_profile, cfg, unit, stages, cancel)
        })
        // audit:allow(panic-safety): run_seq only fails on journal I/O, and this run has no journal
        .expect("journal-less sequential run cannot fail");
    finish(generator, cfg, run)
}

/// Runs a Datamime search with *parallel* candidate evaluation: the
/// optimizer proposes batches via the constant-liar strategy and a worker
/// pool of `batch` threads profiles them concurrently.
///
/// This is the parallelization the paper defers to future work (Sec. IV).
/// Results are deterministic for a given seed: observations are applied in
/// batch order regardless of thread completion order. With `batch == 1`
/// this reduces to the serial loop.
///
/// # Panics
///
/// Panics if `cfg.iterations == 0` or `batch == 0`.
pub fn search_parallel(
    generator: &(dyn DatasetGenerator + Sync),
    target_profile: &Profile,
    cfg: &SearchConfig,
    batch: usize,
) -> SearchOutcome {
    assert!(batch > 0, "batch must be positive");
    search_with_runtime(
        generator,
        target_profile,
        cfg,
        &RuntimeOptions::parallel(batch),
    )
    // audit:allow(panic-safety): search_with_runtime only fails on journal I/O, and these options set no journal
    .expect("journal-less parallel run cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::KvGenerator;
    use crate::metrics::DistMetric;
    use crate::workload::Workload;
    use datamime_apps::KvConfig;

    fn small_target() -> Workload {
        let mut w = Workload::mem_fb();
        if let crate::workload::AppConfig::Kv(c) = &mut w.app {
            *c = KvConfig {
                n_keys: 20_000,
                ..c.clone()
            };
        }
        w
    }

    #[test]
    fn search_reduces_error_over_iterations() {
        let cfg = SearchConfig {
            iterations: 14,
            ..SearchConfig::fast(14)
        };
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let outcome = search(&KvGenerator::new(), &target, &cfg);

        assert_eq!(outcome.history.len(), 14);
        let mins = outcome.running_min();
        assert!(mins.last().unwrap() <= mins.first().unwrap());
        assert_eq!(*mins.last().unwrap(), outcome.best_error);
        // The best profile should at least be in the same IPC ballpark.
        let t_ipc = target.mean(DistMetric::Ipc);
        let b_ipc = outcome.best_profile.mean(DistMetric::Ipc);
        assert!(
            (t_ipc - b_ipc).abs() / t_ipc < 0.5,
            "target ipc {t_ipc}, best {b_ipc}, err {}",
            outcome.best_error
        );
    }

    #[test]
    fn random_search_also_runs() {
        let mut cfg = SearchConfig::fast(5);
        cfg.optimizer = OptimizerKind::Random;
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let outcome = search(&KvGenerator::new(), &target, &cfg);
        assert_eq!(outcome.history.len(), 5);
        assert!(outcome.best_error.is_finite());
    }

    #[test]
    fn parallel_search_matches_serial_quality() {
        let mut cfg = SearchConfig::fast(12);
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let par = search_parallel(&KvGenerator::new(), &target, &cfg, 4);
        assert_eq!(par.history.len(), 12);
        let ser = search(&KvGenerator::new(), &target, &cfg);
        // Parallel batches explore slightly differently but must land in
        // the same quality regime.
        assert!(
            par.best_error < ser.best_error * 2.0 + 0.2,
            "parallel {} vs serial {}",
            par.best_error,
            ser.best_error
        );
    }

    #[test]
    fn parallel_search_is_deterministic() {
        let mut cfg = SearchConfig::fast(6);
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let a = search_parallel(&KvGenerator::new(), &target, &cfg, 3);
        let b = search_parallel(&KvGenerator::new(), &target, &cfg, 3);
        assert_eq!(a.best_error, b.best_error);
        assert_eq!(a.best_unit_params, b.best_unit_params);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let cfg = SearchConfig::fast(0);
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        search(&KvGenerator::new(), &target, &cfg);
    }

    #[test]
    fn faulty_evaluations_do_not_abort_the_search() {
        use datamime_runtime::InjectedFault;
        let mut cfg = SearchConfig::fast(8);
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let opts = RuntimeOptions {
            batch_k: 2,
            workers: 2,
            fault_plan: Some(
                FaultPlan::new()
                    .fail(1, InjectedFault::Panic)
                    .fail(4, InjectedFault::Nan),
            ),
            ..RuntimeOptions::default()
        };
        let outcome = search_with_runtime(&KvGenerator::new(), &target, &cfg, &opts)
            .expect("penalized faults must not abort the run");
        assert_eq!(outcome.history.len(), 8);
        assert!(outcome.best_error.is_finite());
        assert_eq!(
            outcome.history[1].error,
            datamime_bayesopt::PENALTY_OBJECTIVE
        );
        assert_eq!(
            outcome.history[4].error,
            datamime_bayesopt::PENALTY_OBJECTIVE
        );
    }

    #[test]
    fn abort_fail_policy_keeps_fail_fast_behavior() {
        use datamime_runtime::InjectedFault;
        let mut cfg = SearchConfig::fast(4);
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let opts = RuntimeOptions {
            fail_policy: FailPolicy::Abort,
            fault_plan: Some(FaultPlan::new().fail(2, InjectedFault::Panic)),
            ..RuntimeOptions::default()
        };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            search_with_runtime(&KvGenerator::new(), &target, &cfg, &opts)
        }))
        .expect_err("abort policy must re-raise the injected panic");
        let msg = datamime_runtime::supervisor::panic_message(err.as_ref());
        assert!(msg.contains("injected panic"), "unexpected payload: {msg}");
    }

    #[test]
    fn eval_timeout_penalizes_instead_of_hanging() {
        // A deadline of zero cancels every evaluation immediately; the
        // profiler returns a truncated profile, the supervisor classifies
        // the attempt as a timeout, and the search still completes.
        let mut cfg = SearchConfig::fast(3);
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let opts = RuntimeOptions {
            eval_timeout: Some(Duration::from_nanos(1)),
            ..RuntimeOptions::default()
        };
        let outcome = search_with_runtime(&KvGenerator::new(), &target, &cfg, &opts)
            .expect("timeouts must be penalized, not fatal");
        assert_eq!(outcome.history.len(), 3);
        for rec in &outcome.history {
            assert_eq!(rec.error, datamime_bayesopt::PENALTY_OBJECTIVE);
        }
    }

    #[test]
    fn batch_one_runtime_matches_plain_search() {
        let mut cfg = SearchConfig::fast(8);
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let plain = search(&KvGenerator::new(), &target, &cfg);
        let runtime = search_with_runtime(
            &KvGenerator::new(),
            &target,
            &cfg,
            &RuntimeOptions::sequential(),
        )
        .unwrap();
        assert_eq!(plain.best_unit_params, runtime.best_unit_params);
        assert_eq!(plain.best_error.to_bits(), runtime.best_error.to_bits());
        for (a, b) in plain.history.iter().zip(&runtime.history) {
            assert_eq!(a.unit_params, b.unit_params);
            assert_eq!(a.error.to_bits(), b.error.to_bits());
        }
    }
}
