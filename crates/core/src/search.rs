//! The Datamime search loop (paper Sec. III-C and Fig. 5).
//!
//! Each iteration: the optimizer proposes dataset-generator parameters,
//! the generator synthesizes a dataset, the benchmark runs and is profiled
//! exactly like the target, the EMD error against the target profile is
//! computed, and the error is fed back to the optimizer.

use crate::error_model::{profile_error, MetricWeights};
use crate::generator::DatasetGenerator;
use crate::profile::Profile;
use crate::profiler::{profile_workload, ProfilingConfig};
use crate::workload::Workload;
use datamime_bayesopt::{BayesOpt, BlackBoxOptimizer, BoConfig, RandomSearch};
use datamime_sim::MachineConfig;

/// Which optimizer drives the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// GP-EI Bayesian optimization (the paper's choice).
    Bayesian,
    /// Uniform random search (ablation baseline).
    Random,
}

/// Configuration of one Datamime search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Number of optimizer iterations (the paper runs 200).
    pub iterations: usize,
    /// Machine the benchmark is generated on (the paper uses Broadwell).
    pub machine: MachineConfig,
    /// Profiling fidelity per iteration.
    pub profiling: ProfilingConfig,
    /// Metric weights of the error model.
    pub weights: MetricWeights,
    /// Optimizer selection.
    pub optimizer: OptimizerKind,
    /// Seed for the optimizer.
    pub seed: u64,
}

impl SearchConfig {
    /// A configuration mirroring the paper's methodology (Sec. IV): 200
    /// iterations on Broadwell with full-fidelity profiling.
    pub fn paper_default() -> Self {
        SearchConfig {
            iterations: 200,
            machine: MachineConfig::broadwell(),
            profiling: ProfilingConfig::paper_default(),
            weights: MetricWeights::equal(),
            optimizer: OptimizerKind::Bayesian,
            seed: 0xDA7A_417E,
        }
    }

    /// A reduced-cost configuration for quick experiments and tests.
    pub fn fast(iterations: usize) -> Self {
        SearchConfig {
            iterations,
            machine: MachineConfig::broadwell(),
            profiling: ProfilingConfig::fast(),
            weights: MetricWeights::equal(),
            optimizer: OptimizerKind::Bayesian,
            seed: 0xDA7A_417E,
        }
    }
}

/// One evaluated point of the search.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// Unit-hypercube parameters proposed by the optimizer.
    pub unit_params: Vec<f64>,
    /// Total weighted EMD error against the target.
    pub error: f64,
}

/// The outcome of a Datamime search.
#[derive(Debug)]
pub struct SearchOutcome {
    /// Best (lowest-error) unit parameters found.
    pub best_unit_params: Vec<f64>,
    /// The corresponding synthesized workload.
    pub best_workload: Workload,
    /// The best workload's profile.
    pub best_profile: Profile,
    /// The best total error.
    pub best_error: f64,
    /// Every evaluated iteration, in order.
    pub history: Vec<IterationRecord>,
}

impl SearchOutcome {
    /// The running minimum error per iteration (the y-axis of Fig. 10).
    pub fn running_min(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.history.len());
        let mut best = f64::INFINITY;
        for r in &self.history {
            best = best.min(r.error);
            out.push(best);
        }
        out
    }
}

/// Runs a Datamime search for a dataset that makes `generator`'s program
/// mimic `target_profile`.
///
/// # Panics
///
/// Panics if `cfg.iterations == 0`.
pub fn search(
    generator: &dyn DatasetGenerator,
    target_profile: &Profile,
    cfg: &SearchConfig,
) -> SearchOutcome {
    assert!(cfg.iterations > 0, "need at least one iteration");
    let dims = generator.dims();
    let mut optimizer: Box<dyn BlackBoxOptimizer> = match cfg.optimizer {
        OptimizerKind::Bayesian => Box::new(BayesOpt::new(BoConfig::for_dims(dims), cfg.seed)),
        OptimizerKind::Random => Box::new(RandomSearch::new(dims, cfg.seed)),
    };

    let mut history = Vec::with_capacity(cfg.iterations);
    let mut best: Option<(Vec<f64>, f64)> = None;
    for _ in 0..cfg.iterations {
        let unit = optimizer.suggest();
        let workload = generator.instantiate(&unit);
        let profile = profile_workload(&workload, &cfg.machine, &cfg.profiling);
        let err = profile_error(target_profile, &profile, &cfg.weights).total;
        optimizer.observe(unit.clone(), err);
        if best.as_ref().is_none_or(|(_, be)| err < *be) {
            best = Some((unit.clone(), err));
        }
        history.push(IterationRecord {
            unit_params: unit,
            error: err,
        });
    }

    let (best_unit_params, best_error) = best.expect("at least one iteration ran");
    let best_workload = generator.instantiate(&best_unit_params);
    let best_profile = profile_workload(&best_workload, &cfg.machine, &cfg.profiling);
    SearchOutcome {
        best_unit_params,
        best_workload,
        best_profile,
        best_error,
        history,
    }
}

/// Runs a Datamime search with *parallel* candidate evaluation: the
/// optimizer proposes batches via the constant-liar strategy and each
/// batch's profiling runs on its own OS thread.
///
/// This is the parallelization the paper defers to future work (Sec. IV).
/// Results are deterministic for a given seed: observations are applied in
/// batch order regardless of thread completion order. With `batch == 1`
/// this reduces to the serial loop.
///
/// # Panics
///
/// Panics if `cfg.iterations == 0` or `batch == 0`.
pub fn search_parallel(
    generator: &(dyn DatasetGenerator + Sync),
    target_profile: &Profile,
    cfg: &SearchConfig,
    batch: usize,
) -> SearchOutcome {
    assert!(cfg.iterations > 0, "need at least one iteration");
    assert!(batch > 0, "batch must be positive");
    let dims = generator.dims();
    let mut bo =
        datamime_bayesopt::BayesOpt::new(datamime_bayesopt::BoConfig::for_dims(dims), cfg.seed);
    let mut history = Vec::with_capacity(cfg.iterations);
    let mut best: Option<(Vec<f64>, f64)> = None;
    let mut remaining = cfg.iterations;
    while remaining > 0 {
        let k = batch.min(remaining);
        let units = bo.suggest_batch(k);
        let errors: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = units
                .iter()
                .map(|unit| {
                    let machine = cfg.machine.clone();
                    let profiling = cfg.profiling.clone();
                    let weights = cfg.weights.clone();
                    scope.spawn(move || {
                        let workload = generator.instantiate(unit);
                        let profile = profile_workload(&workload, &machine, &profiling);
                        profile_error(target_profile, &profile, &weights).total
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        for (unit, err) in units.into_iter().zip(errors) {
            bo.observe(unit.clone(), err);
            if best.as_ref().is_none_or(|(_, be)| err < *be) {
                best = Some((unit.clone(), err));
            }
            history.push(IterationRecord {
                unit_params: unit,
                error: err,
            });
        }
        remaining -= k;
    }
    let (best_unit_params, best_error) = best.expect("at least one iteration ran");
    let best_workload = generator.instantiate(&best_unit_params);
    let best_profile = profile_workload(&best_workload, &cfg.machine, &cfg.profiling);
    SearchOutcome {
        best_unit_params,
        best_workload,
        best_profile,
        best_error,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::KvGenerator;
    use crate::metrics::DistMetric;
    use crate::workload::Workload;
    use datamime_apps::KvConfig;

    fn small_target() -> Workload {
        let mut w = Workload::mem_fb();
        if let crate::workload::AppConfig::Kv(c) = &mut w.app {
            *c = KvConfig {
                n_keys: 20_000,
                ..c.clone()
            };
        }
        w
    }

    #[test]
    fn search_reduces_error_over_iterations() {
        let cfg = SearchConfig {
            iterations: 14,
            ..SearchConfig::fast(14)
        };
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let outcome = search(&KvGenerator::new(), &target, &cfg);

        assert_eq!(outcome.history.len(), 14);
        let mins = outcome.running_min();
        assert!(mins.last().unwrap() <= mins.first().unwrap());
        assert_eq!(*mins.last().unwrap(), outcome.best_error);
        // The best profile should at least be in the same IPC ballpark.
        let t_ipc = target.mean(DistMetric::Ipc);
        let b_ipc = outcome.best_profile.mean(DistMetric::Ipc);
        assert!(
            (t_ipc - b_ipc).abs() / t_ipc < 0.5,
            "target ipc {t_ipc}, best {b_ipc}, err {}",
            outcome.best_error
        );
    }

    #[test]
    fn random_search_also_runs() {
        let mut cfg = SearchConfig::fast(5);
        cfg.optimizer = OptimizerKind::Random;
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let outcome = search(&KvGenerator::new(), &target, &cfg);
        assert_eq!(outcome.history.len(), 5);
        assert!(outcome.best_error.is_finite());
    }

    #[test]
    fn parallel_search_matches_serial_quality() {
        let mut cfg = SearchConfig::fast(12);
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let par = search_parallel(&KvGenerator::new(), &target, &cfg, 4);
        assert_eq!(par.history.len(), 12);
        let ser = search(&KvGenerator::new(), &target, &cfg);
        // Parallel batches explore slightly differently but must land in
        // the same quality regime.
        assert!(
            par.best_error < ser.best_error * 2.0 + 0.2,
            "parallel {} vs serial {}",
            par.best_error,
            ser.best_error
        );
    }

    #[test]
    fn parallel_search_is_deterministic() {
        let mut cfg = SearchConfig::fast(6);
        cfg.profiling = cfg.profiling.without_curves();
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        let a = search_parallel(&KvGenerator::new(), &target, &cfg, 3);
        let b = search_parallel(&KvGenerator::new(), &target, &cfg, 3);
        assert_eq!(a.best_error, b.best_error);
        assert_eq!(a.best_unit_params, b.best_unit_params);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let cfg = SearchConfig::fast(0);
        let machine = cfg.machine.clone();
        let target = profile_workload(&small_target(), &machine, &cfg.profiling);
        search(&KvGenerator::new(), &target, &cfg);
    }
}
