//! Datamime: generating representative benchmarks by automatically
//! synthesizing datasets.
//!
//! A production-quality Rust reproduction of the MICRO 2022 paper by Lee
//! and Sanchez. The key idea (*data-centric benchmark generation*): for
//! many production workloads the program is public — so instead of cloning
//! code, synthesize a *dataset* that makes the public program's
//! performance profile match the production workload's.
//!
//! The pipeline (paper Fig. 5):
//!
//! 1. [`profiler::profile_workload`] profiles the target workload: full
//!    distributions of the ten Table-I metrics at 20 M-cycle intervals
//!    plus LLC-MPKI/IPC cache-sensitivity curves via CAT partitioning;
//! 2. a [`DatasetGenerator`] (one per program, parameterized per
//!    Table III) maps optimizer points to concrete datasets;
//! 3. [`search()`](search::search) runs GP-EI Bayesian optimization minimizing the
//!    normalized-EMD profile error ([`error_model`], Eq. 1);
//! 4. the lowest-error dataset is the synthesized benchmark.
//!
//! # Examples
//!
//! Generate a benchmark that mimics a production-like memcached workload
//! (scaled down so it runs in seconds; see `examples/` for full runs):
//!
//! ```
//! use datamime::{
//!     generator::KvGenerator, profiler::{profile_workload, ProfilingConfig},
//!     search::{search, SearchConfig}, workload::Workload, metrics::DistMetric,
//! };
//!
//! // 1. Profile the "production" workload.
//! let target = Workload::mem_fb();
//! let cfg = SearchConfig::fast(8);
//! let target_profile = profile_workload(&target, &cfg.machine, &cfg.profiling);
//!
//! // 2-4. Search the memcached dataset space for a matching dataset.
//! let outcome = search(&KvGenerator::new(), &target_profile, &cfg);
//! let ipc_err = (outcome.best_profile.mean(DistMetric::Ipc)
//!     - target_profile.mean(DistMetric::Ipc)).abs();
//! assert!(ipc_err.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod compress;
pub mod constrained;
pub mod distproc;
pub mod error_model;
pub mod generator;
pub mod jobspec;
pub mod metrics;
pub mod profile;
pub mod profiler;
pub mod scalar;
pub mod search;
pub mod servectl;
pub mod validate;
pub mod workload;

pub use arena::EvalArena;
pub use compress::{search_compress_aware, workload_compression_ratio, KvGeneratorCompressible};
pub use constrained::{ConstrainedGenerator, ConstraintError, ParamConstraint};
pub use error_model::{profile_error, DistanceKind, ErrorBreakdown, MetricWeights};
pub use generator::{
    generator_for_program, DatasetGenerator, DnnGenerator, KvGenerator, ParamSpec,
    QuantizedGenerator, SiloGenerator, XapianGenerator,
};
pub use jobspec::{JobBackend, JobSpec};
pub use metrics::{CurveMetric, DistMetric};
pub use profile::{CurvePoint, EmptyProfileError, Profile};
pub use profiler::{profile_app, profile_workload, ProfilingConfig};
pub use scalar::{scalar_search, scalar_sweep, ScalarOutcome, ScalarSearchConfig};
pub use search::{
    search, search_parallel, search_with_runtime, BackendChoice, IterationRecord, OptimizerKind,
    ProcOptions, RuntimeOptions, SearchConfig, SearchOutcome, SearchStats,
};
pub use servectl::{JobResult, JobState, JobStatus, ServeClient, ADMIN_SOCKET, JOB_SOCKET};
pub use validate::{validate_clone, validate_paper_setup, ValidationReport, ValidationRow};
pub use workload::{AppConfig, Workload};
