//! Compressibility-aware dataset generation — the extension the paper
//! sketches in Sec. III-D.
//!
//! Value-dependent techniques (cache/memory compression) need datasets
//! whose *contents* are as compressible as the target's, but mimicking
//! values directly would leak proprietary data. The paper's proposed
//! technique-specific fix: profile only the *compression ratio* of the
//! target's memory snapshots, and give the dataset generator a knob that
//! reproduces it. This module implements that loop:
//!
//! - [`workload_compression_ratio`] measures a workload's snapshot
//!   compression ratio (via the application's sampled value contents);
//! - [`KvGeneratorCompressible`] extends the Table-III memcached generator
//!   with a `value_redundancy` parameter;
//! - [`search_compress_aware`] runs the Datamime search with the ratio
//!   mismatch added to the EMD objective.

use crate::error_model::profile_error;
use crate::generator::{DatasetGenerator, KvGenerator, ParamSpec};
use crate::profile::Profile;
use crate::profiler::profile_workload;
use crate::search::{IterationRecord, SearchConfig, SearchOutcome, SearchStats};
use crate::workload::{AppConfig, Workload};
use datamime_bayesopt::{BayesOpt, BlackBoxOptimizer, BoConfig};
use datamime_stats::compress::estimate_compression_ratio;

/// Measures the compression ratio of a workload's memory snapshot, or
/// `None` if its application does not model value contents.
///
/// Only the scalar ratio leaves this function — never the snapshot itself —
/// matching the paper's privacy argument.
pub fn workload_compression_ratio(workload: &Workload) -> Option<f64> {
    let app = workload.app.build();
    app.memory_snapshot()
        .map(|s| estimate_compression_ratio(&s))
}

/// The Table-III memcached generator extended with a `value_redundancy`
/// parameter controlling content compressibility.
#[derive(Debug, Clone)]
pub struct KvGeneratorCompressible {
    inner: KvGenerator,
    specs: Vec<ParamSpec>,
}

impl KvGeneratorCompressible {
    /// Creates the extended generator.
    pub fn new() -> Self {
        let inner = KvGenerator::new();
        let mut specs = inner.param_specs().to_vec();
        specs.push(ParamSpec::linear("value_redundancy", 0.0, 1.0));
        KvGeneratorCompressible { inner, specs }
    }
}

impl Default for KvGeneratorCompressible {
    fn default() -> Self {
        KvGeneratorCompressible::new()
    }
}

impl DatasetGenerator for KvGeneratorCompressible {
    fn name(&self) -> &str {
        "memcached-compressible"
    }

    fn param_specs(&self) -> &[ParamSpec] {
        &self.specs
    }

    fn instantiate(&self, unit: &[f64]) -> Workload {
        assert_eq!(
            unit.len(),
            self.specs.len(),
            "parameter vector dimension mismatch"
        );
        let mut w = self.inner.instantiate(&unit[..unit.len() - 1]);
        let redundancy = self
            .specs
            .last()
            .expect("has specs")
            .denormalize(unit[unit.len() - 1]);
        if let AppConfig::Kv(cfg) = &mut w.app {
            cfg.value_redundancy = Some(redundancy);
        }
        w
    }
}

/// Runs a Datamime search whose objective adds the compression-ratio
/// mismatch, weighted by `ratio_weight`, to the usual EMD error:
/// `E = E_emd + ratio_weight * |ratio(candidate) − target_ratio|`.
///
/// Candidates whose application does not expose snapshots incur the full
/// mismatch penalty (they cannot satisfy the compressibility requirement).
///
/// # Panics
///
/// Panics if `cfg.iterations == 0`, `target_ratio` is outside `(0, 1]`, or
/// `ratio_weight` is negative.
pub fn search_compress_aware(
    generator: &dyn DatasetGenerator,
    target_profile: &Profile,
    target_ratio: f64,
    ratio_weight: f64,
    cfg: &SearchConfig,
) -> SearchOutcome {
    assert!(cfg.iterations > 0, "need at least one iteration");
    assert!(
        target_ratio > 0.0 && target_ratio <= 1.0,
        "ratio must be in (0, 1]"
    );
    assert!(ratio_weight >= 0.0, "weight must be non-negative");

    let mut bo = BayesOpt::new(BoConfig::for_dims(generator.dims()), cfg.seed);
    let mut history = Vec::with_capacity(cfg.iterations);
    let mut best: Option<(Vec<f64>, f64)> = None;
    for _ in 0..cfg.iterations {
        let unit = bo.suggest();
        let workload = generator.instantiate(&unit);
        let profile = profile_workload(&workload, &cfg.machine, &cfg.profiling);
        let emd = profile_error(target_profile, &profile, &cfg.weights).total;
        let ratio_err = match workload_compression_ratio(&workload) {
            Some(r) => (r - target_ratio).abs(),
            None => 1.0,
        };
        let err = emd + ratio_weight * ratio_err;
        bo.observe(unit.clone(), err);
        if best.as_ref().is_none_or(|(_, be)| err < *be) {
            best = Some((unit.clone(), err));
        }
        history.push(IterationRecord {
            unit_params: unit,
            error: err,
        });
    }
    let (best_unit_params, best_error) = best.expect("at least one iteration ran");
    let best_workload = generator.instantiate(&best_unit_params);
    let best_profile = profile_workload(&best_workload, &cfg.machine, &cfg.profiling);
    SearchOutcome {
        best_unit_params,
        best_workload,
        best_profile,
        best_error,
        history,
        stats: SearchStats {
            evaluated: cfg.iterations + 1, // every iteration plus the final re-profile
            ..SearchStats::default()
        },
        quota: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamime_apps::KvConfig;

    fn compressible_target(redundancy: f64) -> Workload {
        let mut w = Workload::mem_fb();
        w.app = AppConfig::Kv(KvConfig {
            n_keys: 10_000,
            value_redundancy: Some(redundancy),
            ..KvConfig::facebook_like()
        });
        w
    }

    #[test]
    fn ratio_measurement_tracks_redundancy() {
        let lo = workload_compression_ratio(&compressible_target(0.1)).unwrap();
        let hi = workload_compression_ratio(&compressible_target(0.9)).unwrap();
        assert!(
            hi < lo,
            "more redundancy must compress better: {hi} vs {lo}"
        );
    }

    #[test]
    fn workloads_without_content_report_none() {
        assert!(workload_compression_ratio(&Workload::mem_fb()).is_none());
        assert!(workload_compression_ratio(&Workload::silo_bidding()).is_none());
    }

    #[test]
    fn extended_generator_has_extra_dimension() {
        let g = KvGeneratorCompressible::new();
        assert_eq!(g.dims(), 7);
        let w = g.instantiate(&[0.5; 7]);
        assert!(workload_compression_ratio(&w).is_some());
    }

    #[test]
    fn search_matches_target_compressibility() {
        let target = compressible_target(0.85);
        let target_ratio = workload_compression_ratio(&target).unwrap();
        let mut cfg = SearchConfig::fast(12);
        cfg.profiling = cfg.profiling.without_curves();
        // Focus entirely on compressibility to keep the test cheap.
        cfg.weights = crate::error_model::MetricWeights::only(crate::metrics::DistMetric::Ipc)
            .with_dist_weight(crate::metrics::DistMetric::Ipc, 0.1);
        let target_profile = profile_workload(&target, &cfg.machine, &cfg.profiling);
        let outcome = search_compress_aware(
            &KvGeneratorCompressible::new(),
            &target_profile,
            target_ratio,
            4.0,
            &cfg,
        );
        let got = workload_compression_ratio(&outcome.best_workload).unwrap();
        assert!(
            (got - target_ratio).abs() < 0.15,
            "target ratio {target_ratio:.3}, achieved {got:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "ratio must be in (0, 1]")]
    fn invalid_ratio_panics() {
        let cfg = SearchConfig::fast(1);
        let target = compressible_target(0.5);
        let p = profile_workload(&target, &cfg.machine, &cfg.profiling);
        search_compress_aware(&KvGeneratorCompressible::new(), &p, 0.0, 1.0, &cfg);
    }
}
