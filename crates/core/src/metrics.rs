//! The profiled metrics of the paper's Table I.

use std::fmt;

/// A distribution-valued metric sampled at every profiling interval.
///
/// Together with the two cache-sensitivity curves ([`CurveMetric`]), these
/// make up the profile Datamime matches. The paper's Table I groups them
/// as instruction footprint (ICache/ITLB MPKI), data footprint
/// (L1D/L2/DTLB MPKI), and miscellaneous (branch MPKI, CPU utilization,
/// memory bandwidth); IPC and LLC MPKI distributions are also profiled and
/// reported (Figs. 6 and 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DistMetric {
    /// Instructions per cycle.
    Ipc,
    /// L1 instruction-cache misses per kilo-instruction.
    ICacheMpki,
    /// Instruction-TLB misses per kilo-instruction.
    ItlbMpki,
    /// L1 data-cache misses per kilo-instruction.
    L1dMpki,
    /// L2 misses per kilo-instruction.
    L2Mpki,
    /// Last-level-cache misses per kilo-instruction.
    LlcMpki,
    /// Data-TLB misses per kilo-instruction.
    DtlbMpki,
    /// Branch mispredictions per kilo-instruction.
    BranchMpki,
    /// Core busy fraction per wall-clock interval.
    CpuUtilization,
    /// Memory traffic in GB/s.
    MemoryBandwidth,
}

impl DistMetric {
    /// All distribution metrics, in canonical order.
    pub const ALL: [DistMetric; 10] = [
        DistMetric::Ipc,
        DistMetric::ICacheMpki,
        DistMetric::ItlbMpki,
        DistMetric::L1dMpki,
        DistMetric::L2Mpki,
        DistMetric::LlcMpki,
        DistMetric::DtlbMpki,
        DistMetric::BranchMpki,
        DistMetric::CpuUtilization,
        DistMetric::MemoryBandwidth,
    ];

    /// Short, stable identifier (used in reports and TSV output).
    pub fn key(&self) -> &'static str {
        match self {
            DistMetric::Ipc => "ipc",
            DistMetric::ICacheMpki => "icache_mpki",
            DistMetric::ItlbMpki => "itlb_mpki",
            DistMetric::L1dMpki => "l1d_mpki",
            DistMetric::L2Mpki => "l2_mpki",
            DistMetric::LlcMpki => "llc_mpki",
            DistMetric::DtlbMpki => "dtlb_mpki",
            DistMetric::BranchMpki => "branch_mpki",
            DistMetric::CpuUtilization => "cpu_util",
            DistMetric::MemoryBandwidth => "mem_bw_gbps",
        }
    }
}

impl fmt::Display for DistMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// A cache-sensitivity curve measured by sweeping LLC way allocations
/// (Table I, "Cache Sensitivity"; measured with CAT partitioning as in
/// Sec. IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CurveMetric {
    /// LLC MPKI versus allocated cache size.
    LlcMpkiCurve,
    /// IPC versus allocated cache size.
    IpcCurve,
}

impl CurveMetric {
    /// Both curve metrics.
    pub const ALL: [CurveMetric; 2] = [CurveMetric::LlcMpkiCurve, CurveMetric::IpcCurve];

    /// Short, stable identifier.
    pub fn key(&self) -> &'static str {
        match self {
            CurveMetric::LlcMpkiCurve => "llc_mpki_curve",
            CurveMetric::IpcCurve => "ipc_curve",
        }
    }
}

impl fmt::Display for CurveMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_distribution_metrics() {
        assert_eq!(DistMetric::ALL.len(), 10);
        let keys: std::collections::BTreeSet<_> = DistMetric::ALL.iter().map(|m| m.key()).collect();
        assert_eq!(keys.len(), 10, "keys must be unique");
    }

    #[test]
    fn display_matches_key() {
        assert_eq!(DistMetric::Ipc.to_string(), "ipc");
        assert_eq!(CurveMetric::IpcCurve.to_string(), "ipc_curve");
    }
}
