//! Process-backend glue: carrying a search's evaluation context across
//! the process boundary.
//!
//! The broker spawns `datamime-worker` processes that must rebuild the
//! *exact* evaluation context — generator, machine, profiling fidelity,
//! error-model weights, seed, and target profile — from their command
//! line, because an evaluation is a pure function of `(unit, context)`
//! and bit-identical results across backends depend on it. [`EvalSpec`]
//! is that context in argv-serializable form: [`EvalSpec::from_search`]
//! captures it (rejecting generators or machines a fresh process cannot
//! reconstruct), [`EvalSpec::to_argv`] / [`parse_worker_argv`] round-trip
//! it, and [`EvalSpec::build`] reconstitutes the live objects.
//!
//! [`dist_context`] condenses the context into the fingerprint both sides
//! exchange during the `Hello` handshake; it folds in the wire-protocol
//! version and the worker-binary identity so a stale or skewed worker is
//! rejected with a clear error instead of silently producing different
//! bits (and so memo entries from one protocol generation are never
//! served to another).

use crate::arena::EvalArena;
use crate::error_model::{profile_error, DistanceKind, MetricWeights};
use crate::generator::{generator_for_program, DatasetGenerator, QuantizedGenerator};
use crate::metrics::{CurveMetric, DistMetric};
use crate::profile::Profile;
use crate::profiler::{profile_workload_cancellable_in, CurveMethod, ProfilingConfig};
use crate::search::SearchConfig;
use datamime_dist::{serve, worker_identity, WorkerConfig, PROTOCOL_VERSION};
use datamime_runtime::{fingerprint, CancelToken, FaultPlan, StageTimes};
use datamime_sim::MachineConfig;
use std::path::PathBuf;

/// The boxed generator shape [`EvalSpec::build`] returns.
pub type BoxedGenerator = Box<dyn DatasetGenerator + Send + Sync>;

/// An evaluation context in argv-serializable form.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalSpec {
    /// Program whose built-in generator drives the search
    /// (`memcached` | `silo` | `xapian` | `dnn` | ...).
    pub program: String,
    /// Uniform grid quantization applied to every axis, if any.
    pub grid_steps: Option<u32>,
    /// Machine preset name (`broadwell` | `zen2` | `silvermont`).
    pub machine: String,
    /// Profiling fidelity, field by field.
    pub profiling: ProfilingConfig,
    /// Error-model weights.
    pub weights: MetricWeights,
    /// Optimizer seed (part of the memo context).
    pub seed: u64,
    /// File holding the target profile as TSV.
    pub target_tsv: PathBuf,
}

fn machine_by_name(name: &str) -> Option<MachineConfig> {
    match name {
        "broadwell" => Some(MachineConfig::broadwell()),
        "zen2" => Some(MachineConfig::zen2()),
        "silvermont" => Some(MachineConfig::silvermont()),
        _ => None,
    }
}

/// Uniform step count shared by every axis: `Ok(None)` for a fully
/// continuous space, `Ok(Some(s))` when all axes snap to the same grid.
fn uniform_steps(generator: &dyn DatasetGenerator) -> Result<Option<u32>, String> {
    let mut steps = None;
    for (i, spec) in generator.param_specs().iter().enumerate() {
        if i == 0 {
            steps = spec.steps;
        } else if spec.steps != steps {
            return Err(
                "the process backend supports uniform grid quantization only \
                 (every axis must share one step count)"
                    .to_string(),
            );
        }
    }
    Ok(steps)
}

impl EvalSpec {
    /// Captures a search's evaluation context, verifying that a fresh
    /// process can rebuild it from this description alone.
    ///
    /// # Errors
    ///
    /// Fails when the generator is not a (possibly uniformly quantized)
    /// built-in, or the machine is not a named preset — contexts a
    /// `datamime-worker` command line cannot express.
    pub fn from_search(
        generator: &dyn DatasetGenerator,
        cfg: &SearchConfig,
        target_tsv: PathBuf,
    ) -> Result<Self, String> {
        let rebuilt_machine = machine_by_name(&cfg.machine.name)
            .filter(|m| format!("{m:?}") == format!("{:?}", cfg.machine))
            .ok_or_else(|| {
                format!(
                    "the process backend needs a named machine preset; `{}` is not one \
                     (or was modified after construction)",
                    cfg.machine.name
                )
            })?;
        drop(rebuilt_machine);
        let spec = EvalSpec {
            program: generator.name().to_string(),
            grid_steps: uniform_steps(generator)?,
            machine: cfg.machine.name.clone(),
            profiling: cfg.profiling.clone(),
            weights: cfg.weights.clone(),
            seed: cfg.seed,
            target_tsv,
        };
        let rebuilt = spec.build_generator()?;
        if format!("{:?}", rebuilt.param_specs()) != format!("{:?}", generator.param_specs()) {
            return Err(format!(
                "the process backend cannot reproduce generator `{}`: its parameter \
                 space differs from the built-in one",
                generator.name()
            ));
        }
        Ok(spec)
    }

    /// Serializes the spec as `datamime-worker` command-line arguments
    /// (everything except the broker-appended `--socket`/`--worker-id`).
    pub fn to_argv(&self) -> Vec<String> {
        let mut argv = vec![
            "--target-profile".to_string(),
            self.target_tsv.display().to_string(),
            "--program".to_string(),
            self.program.clone(),
            "--machine".to_string(),
            self.machine.clone(),
            "--opt-seed".to_string(),
            self.seed.to_string(),
            "--prof-interval".to_string(),
            self.profiling.interval_cycles.to_string(),
            "--prof-samples".to_string(),
            self.profiling.n_samples.to_string(),
            "--prof-curve-ways".to_string(),
            encode_curve_ways(&self.profiling.curve_ways),
            "--prof-curve-samples".to_string(),
            self.profiling.curve_samples.to_string(),
            "--prof-curve-method".to_string(),
            match self.profiling.curve_method {
                CurveMethod::Restart => "restart".to_string(),
                CurveMethod::Dynaway => "dynaway".to_string(),
            },
            "--prof-seed".to_string(),
            self.profiling.seed.to_string(),
            "--weights".to_string(),
            encode_weights(&self.weights),
        ];
        if let Some(steps) = self.grid_steps {
            argv.push("--grid-steps".to_string());
            argv.push(steps.to_string());
        }
        argv
    }

    fn build_generator(&self) -> Result<BoxedGenerator, String> {
        let inner = generator_for_program(&self.program)
            .ok_or_else(|| format!("no dataset generator for program `{}`", self.program))?;
        Ok(match self.grid_steps {
            Some(steps) => Box::new(QuantizedGenerator::new(inner, steps)),
            None => inner,
        })
    }

    /// Reconstitutes the live evaluation context: the generator, the
    /// search configuration (machine, profiling, weights, seed), and the
    /// target profile parsed from [`EvalSpec::target_tsv`].
    ///
    /// # Errors
    ///
    /// Fails on unknown program/machine names or an unreadable/garbled
    /// target-profile file.
    pub fn build(&self) -> Result<(BoxedGenerator, SearchConfig, Profile), String> {
        let generator = self.build_generator()?;
        let machine = machine_by_name(&self.machine)
            .ok_or_else(|| format!("unknown machine `{}`", self.machine))?;
        let text = std::fs::read_to_string(&self.target_tsv)
            .map_err(|e| format!("cannot read target profile {:?}: {e}", self.target_tsv))?;
        let target = Profile::from_tsv(&text)
            .map_err(|e| format!("bad target profile {:?}: {e}", self.target_tsv))?;
        let cfg = SearchConfig {
            // The worker never drives the optimizer; iterations and the
            // optimizer kind are broker-side concerns.
            iterations: 1,
            machine,
            profiling: self.profiling.clone(),
            weights: self.weights.clone(),
            optimizer: crate::search::OptimizerKind::Random,
            seed: self.seed,
        };
        Ok((generator, cfg, target))
    }
}

fn encode_curve_ways(ways: &[u32]) -> String {
    if ways.is_empty() {
        "none".to_string()
    } else {
        ways.iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn decode_curve_ways(s: &str) -> Result<Vec<u32>, String> {
    if s == "none" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|w| w.parse().map_err(|e| format!("bad curve way `{w}`: {e}")))
        .collect()
}

/// Compact weight serialization: `<distance>;k=v,...;k=v,...` with the
/// distribution metrics in the second field and the curve metrics in the
/// third. `{}`-formatted floats round-trip f64 bits exactly.
fn encode_weights(w: &MetricWeights) -> String {
    let distance = match w.distance {
        DistanceKind::Emd => "emd",
        DistanceKind::KolmogorovSmirnov => "ks",
    };
    let dists = DistMetric::ALL
        .iter()
        .map(|&m| format!("{}={}", m.key(), w.dist_weight(m)))
        .collect::<Vec<_>>()
        .join(",");
    let curves = CurveMetric::ALL
        .iter()
        .map(|&m| format!("{}={}", m.key(), w.curve_weight(m)))
        .collect::<Vec<_>>()
        .join(",");
    format!("{distance};{dists};{curves}")
}

fn decode_weights(s: &str) -> Result<MetricWeights, String> {
    let mut parts = s.splitn(3, ';');
    let mut next = || parts.next().ok_or(format!("bad weight spec `{s}`"));
    let distance = match next()? {
        "emd" => DistanceKind::Emd,
        "ks" => DistanceKind::KolmogorovSmirnov,
        other => return Err(format!("unknown distance kind `{other}`")),
    };
    let mut w = MetricWeights::equal();
    w.distance = distance;
    for pair in next()?.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("bad weight `{pair}`"))?;
        let metric = DistMetric::ALL
            .iter()
            .find(|m| m.key() == key)
            .ok_or_else(|| format!("unknown distribution metric `{key}`"))?;
        let value: f64 = value
            .parse()
            .map_err(|e| format!("bad weight `{pair}`: {e}"))?;
        w = w.with_dist_weight(*metric, value);
    }
    for pair in next()?.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("bad weight `{pair}`"))?;
        let metric = CurveMetric::ALL
            .iter()
            .find(|m| m.key() == key)
            .ok_or_else(|| format!("unknown curve metric `{key}`"))?;
        let value: f64 = value
            .parse()
            .map_err(|e| format!("bad weight `{pair}`: {e}"))?;
        w = w.with_curve_weight(*metric, value);
    }
    Ok(w)
}

/// The fingerprint both sides must agree on during the `Hello`
/// handshake: the in-process memo context (machine, profiling, weights,
/// seed) extended with the wire-protocol version, the worker-binary
/// identity, the generator's parameter space, and the target profile —
/// everything that fixes the bits an evaluation produces across the
/// process boundary. Proc-backend memo caches are keyed on this, so an
/// entry recorded under one protocol generation or worker build can
/// never satisfy another.
pub fn dist_context(generator: &dyn DatasetGenerator, cfg: &SearchConfig, target: &Profile) -> u64 {
    fingerprint(&[
        crate::search::memo_context(cfg),
        u64::from(PROTOCOL_VERSION),
        worker_identity(),
        crate::search::hash_str(&format!("{:?}", generator.param_specs())),
        crate::search::hash_str(generator.name()),
        crate::search::hash_str(&target.to_tsv()),
    ])
}

/// One parsed `datamime-worker` invocation.
#[derive(Debug)]
pub struct WorkerInvocation {
    /// The evaluation context to rebuild.
    pub spec: EvalSpec,
    /// Broker socket path.
    pub socket: PathBuf,
    /// Broker-assigned worker id.
    pub worker_id: u64,
    /// Deterministic fault plan (tests and CI only).
    pub fault: FaultPlan,
}

/// Parses a full `datamime-worker` command line (the [`EvalSpec`] flags
/// plus `--socket`, `--worker-id`, and an optional `--fault` plan).
///
/// # Errors
///
/// Fails on unknown flags, missing values, or missing required flags,
/// with the offending flag named.
pub fn parse_worker_argv(args: &[String]) -> Result<WorkerInvocation, String> {
    let mut target = None;
    let mut program = None;
    let mut grid_steps = None;
    let mut machine = None;
    let mut seed = None;
    let mut interval = None;
    let mut samples = None;
    let mut curve_ways = None;
    let mut curve_samples = None;
    let mut curve_method = None;
    let mut prof_seed = None;
    let mut weights = None;
    let mut socket = None;
    let mut worker_id = None;
    let mut fault = FaultPlan::new();

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        let parse_err = |e: &dyn std::fmt::Display| format!("bad {flag} `{value}`: {e}");
        match flag {
            "--target-profile" => target = Some(PathBuf::from(value)),
            "--program" => program = Some(value.clone()),
            "--grid-steps" => grid_steps = Some(value.parse().map_err(|e| parse_err(&e))?),
            "--machine" => machine = Some(value.clone()),
            "--opt-seed" => seed = Some(value.parse().map_err(|e| parse_err(&e))?),
            "--prof-interval" => interval = Some(value.parse().map_err(|e| parse_err(&e))?),
            "--prof-samples" => samples = Some(value.parse().map_err(|e| parse_err(&e))?),
            "--prof-curve-ways" => curve_ways = Some(decode_curve_ways(value)?),
            "--prof-curve-samples" => {
                curve_samples = Some(value.parse().map_err(|e| parse_err(&e))?)
            }
            "--prof-curve-method" => {
                curve_method = Some(match value.as_str() {
                    "restart" => CurveMethod::Restart,
                    "dynaway" => CurveMethod::Dynaway,
                    other => return Err(format!("unknown curve method `{other}`")),
                })
            }
            "--prof-seed" => prof_seed = Some(value.parse().map_err(|e| parse_err(&e))?),
            "--weights" => weights = Some(decode_weights(value)?),
            "--socket" => socket = Some(PathBuf::from(value)),
            "--worker-id" => worker_id = Some(value.parse().map_err(|e| parse_err(&e))?),
            "--fault" => fault = FaultPlan::from_spec(value)?,
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 2;
    }

    let require = |name: &str| format!("{name} is required");
    Ok(WorkerInvocation {
        spec: EvalSpec {
            program: program.ok_or_else(|| require("--program"))?,
            grid_steps,
            machine: machine.ok_or_else(|| require("--machine"))?,
            profiling: ProfilingConfig {
                interval_cycles: interval.ok_or_else(|| require("--prof-interval"))?,
                n_samples: samples.ok_or_else(|| require("--prof-samples"))?,
                curve_ways: curve_ways.ok_or_else(|| require("--prof-curve-ways"))?,
                curve_samples: curve_samples.ok_or_else(|| require("--prof-curve-samples"))?,
                curve_method: curve_method.ok_or_else(|| require("--prof-curve-method"))?,
                seed: prof_seed.ok_or_else(|| require("--prof-seed"))?,
            },
            weights: weights.ok_or_else(|| require("--weights"))?,
            seed: seed.ok_or_else(|| require("--opt-seed"))?,
            target_tsv: target.ok_or_else(|| require("--target-profile"))?,
        },
        socket: socket.ok_or_else(|| require("--socket"))?,
        worker_id: worker_id.ok_or_else(|| require("--worker-id"))?,
        fault,
    })
}

/// The `datamime-worker` main: parses the command line, rebuilds the
/// evaluation context, derives the context fingerprint, and serves
/// evaluations until the broker shuts the connection down.
///
/// The evaluation body is the same instantiate → profile → error
/// pipeline (with the same stage names) the in-process backend runs, on
/// a never-cancelled token — the broker enforces deadlines by SIGKILL,
/// not cooperative cancellation.
///
/// # Errors
///
/// Returns a message on argv, context-rebuild, socket, or handshake
/// failures (including a broker reject for version/identity/context
/// skew).
pub fn run_worker(args: &[String]) -> Result<(), String> {
    run_worker_with_signal(args, None)
}

/// [`run_worker`] with graceful-termination support: when `term` reports
/// a request (SIGTERM/SIGINT observed via the
/// [`datamime_runtime::termsig`] sentinel) the worker finishes the
/// evaluation it is serving, then exits 0 instead of picking up another —
/// the broker sees a clean connection close and re-dispatches
/// transparently. A worker killed mid-evaluation (`SIGKILL`, the
/// crash-resume test path) still dies instantly.
///
/// # Errors
///
/// As [`run_worker`].
pub fn run_worker_with_signal(
    args: &[String],
    term: Option<datamime_runtime::TermSignal>,
) -> Result<(), String> {
    let inv = parse_worker_argv(args)?;
    let (generator, cfg, target) = inv.spec.build()?;
    let ctx = dist_context(&generator, &cfg, &target);
    let token = CancelToken::new();
    // Drain protocol: between evaluations the closure checks the signal
    // directly; while the worker sits idle in `read_frame` a watcher
    // thread polls it and exits for us. `busy` keeps the watcher from
    // abandoning an answer the broker is already waiting for.
    let busy = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let drained = {
        let term = term.clone();
        move || term.as_ref().is_some_and(|t| t.requested())
    };
    if let Some(t) = term {
        let busy = std::sync::Arc::clone(&busy);
        std::thread::spawn(move || loop {
            std::thread::sleep(std::time::Duration::from_millis(100));
            if t.requested() && !busy.load(std::sync::atomic::Ordering::SeqCst) {
                std::process::exit(0);
            }
        });
    }
    serve(
        &WorkerConfig::new(inv.socket.clone(), inv.worker_id, ctx),
        |req, stages: &mut StageTimes| {
            busy.store(true, std::sync::atomic::Ordering::SeqCst);
            let _guard = BusyGuard(&busy);
            if drained() {
                std::process::exit(0);
            }
            let index = req.index as usize;
            if inv.fault.kills(index, req.dispatch) {
                // Simulates a worker crash: SIGABRT, no unwinding, no
                // reply frame — the broker sees the connection drop.
                std::process::abort();
            }
            if let Some(injected) = inv.fault.apply(index, req.attempt, &token) {
                return injected;
            }
            let workload = stages.time("instantiate", || generator.instantiate(&req.unit));
            let profile = stages.time("profile", || {
                // The worker process serves evaluations on one thread; its
                // arena persists across requests, so every candidate after
                // the first reuses the same simulator arrays.
                EvalArena::with_thread_local(|arena| {
                    profile_workload_cancellable_in(
                        &workload,
                        &cfg.machine,
                        &cfg.profiling,
                        &token,
                        arena,
                    )
                })
            });
            stages.time("error", || {
                profile_error(&target, &profile, &cfg.weights).total
            })
        },
    )
}

/// Clears the worker's busy flag when an evaluation closure unwinds or
/// returns, so the drain watcher never misreads a finished evaluation as
/// in-flight.
struct BusyGuard<'a>(&'a std::sync::atomic::AtomicBool);

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, std::sync::atomic::Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::KvGenerator;

    fn spec() -> EvalSpec {
        EvalSpec {
            program: "memcached".to_string(),
            grid_steps: Some(6),
            machine: "zen2".to_string(),
            profiling: ProfilingConfig::fast().without_curves(),
            weights: MetricWeights::equal().with_dist_weight(DistMetric::Ipc, 2.5),
            seed: 0xDA7A,
            target_tsv: PathBuf::from("/tmp/target.tsv"),
        }
    }

    #[test]
    fn argv_round_trips_the_full_spec() {
        let spec = spec();
        let mut argv = spec.to_argv();
        argv.extend(
            ["--socket", "/tmp/b.sock", "--worker-id", "3"]
                .iter()
                .map(|s| s.to_string()),
        );
        let inv = parse_worker_argv(&argv).expect("parses");
        assert_eq!(inv.spec, spec);
        assert_eq!(inv.worker_id, 3);
        assert!(inv.fault.is_empty());
    }

    #[test]
    fn weight_encoding_round_trips_exact_bits() {
        let w = MetricWeights::equal()
            .with_dist_weight(DistMetric::Ipc, 0.1 + 0.2) // not exactly 0.3
            .with_curve_weight(CurveMetric::IpcCurve, 1.0 / 3.0);
        let decoded = decode_weights(&encode_weights(&w)).expect("decodes");
        for m in DistMetric::ALL {
            assert_eq!(decoded.dist_weight(m).to_bits(), w.dist_weight(m).to_bits());
        }
        for m in CurveMetric::ALL {
            assert_eq!(
                decoded.curve_weight(m).to_bits(),
                w.curve_weight(m).to_bits()
            );
        }
    }

    #[test]
    fn from_search_rejects_unnamed_machines() {
        let mut cfg = SearchConfig::fast(1);
        cfg.machine.name = "frankenmachine".to_string();
        let err = EvalSpec::from_search(&KvGenerator::new(), &cfg, PathBuf::from("t.tsv"))
            .expect_err("unknown machine must be rejected");
        assert!(err.contains("named machine preset"), "{err}");
    }

    #[test]
    fn from_search_rejects_mixed_quantization() {
        use crate::generator::ParamSpec;
        struct Mixed(Vec<ParamSpec>);
        impl DatasetGenerator for Mixed {
            fn name(&self) -> &str {
                "memcached"
            }
            fn param_specs(&self) -> &[ParamSpec] {
                &self.0
            }
            fn instantiate(&self, _unit: &[f64]) -> crate::workload::Workload {
                unreachable!("never instantiated in this test")
            }
        }
        let specs = vec![
            ParamSpec::linear("a", 0.0, 1.0).with_steps(4),
            ParamSpec::linear("b", 0.0, 1.0),
        ];
        let err = EvalSpec::from_search(&Mixed(specs), &SearchConfig::fast(1), "t.tsv".into())
            .expect_err("mixed steps must be rejected");
        assert!(err.contains("uniform grid quantization"), "{err}");
    }

    #[test]
    fn dist_context_distinguishes_generators_and_targets() {
        use crate::profiler::profile_workload;
        use crate::workload::Workload;
        let cfg = SearchConfig::fast(1);
        let t1 = profile_workload(&Workload::mem_fb(), &cfg.machine, &cfg.profiling);
        let t2 = profile_workload(&Workload::mem_twtr(), &cfg.machine, &cfg.profiling);
        let plain = KvGenerator::new();
        let quantized = QuantizedGenerator::new(KvGenerator::new(), 6);
        let base = dist_context(&plain, &cfg, &t1);
        assert_ne!(base, dist_context(&quantized, &cfg, &t1));
        assert_ne!(base, dist_context(&plain, &cfg, &t2));
        let mut reseeded = cfg.clone();
        reseeded.seed ^= 1;
        assert_ne!(base, dist_context(&plain, &reseeded, &t1));
    }
}
